"""A simulated processing element (PE).

A node is the *hardware* view of one processor: an inbox fed by the
network, a virtual-time ``charge`` primitive that models CPU cost, a small
private memory region used by the EMI global-pointer calls, and counters.
The *software* view — the Converse runtime with its handler table,
scheduler queue and thread pools — is attached as ``node.runtime`` by the
machine (see :mod:`repro.core.runtime`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from repro.core.errors import SimulationError

__all__ = ["NodeStats", "Node"]


@dataclass
class NodeStats:
    """Per-PE counters (virtual time / message accounting)."""

    msgs_sent: int = 0
    bytes_sent: int = 0
    msgs_received: int = 0
    bytes_received: int = 0
    busy_time: float = 0.0
    handlers_run: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


class Node:
    """One simulated PE.

    The inbox holds payloads delivered by the network in arrival order.
    Tasklets belonging to this node block on the inbox via
    :meth:`wait_for_message`; the network wakes them through
    :meth:`deliver`.
    """

    def __init__(self, machine: Any, pe: int) -> None:
        self.machine = machine
        self.pe = pe
        self.engine = machine.engine
        self.inbox: Deque[Any] = deque()
        self._waiters: Deque[Any] = deque()
        #: private memory region addressed by EMI global pointers.
        self.memory: Dict[int, bytearray] = {}
        self._next_mem_key = 1
        self.stats = NodeStats()
        #: the Converse runtime living on this PE (set by the machine).
        self.runtime: Any = None
        #: hardware power state: ``False`` while crashed (fault injection).
        #: Deliveries to a down PE are dropped on the floor, like packets
        #: arriving at a dead NIC.
        self.up = True
        #: incarnation number, bumped by every :meth:`restart`.
        self.epoch = 0
        #: virtual time of the most recent crash (recovery latency base).
        self.crashed_at: Optional[float] = None
        #: deliveries dropped because the PE was down.
        self.dropped_while_down = 0
        #: observers called on every delivery, e.g. tracing.
        self._delivery_hooks: list[Callable[[Any], None]] = []
        #: arrival interceptors (reliable delivery, fault tolerance): run
        #: *before* the inbox, at "interrupt level", and may consume
        #: protocol packets entirely.  ``None`` until the first install so
        #: the common case stays a single attribute test.
        self._interceptors: Optional[tuple] = None
        #: receive-side metric handles; ``None`` until the machine calls
        #: :meth:`attach_metrics`, so the guard on the delivery path is a
        #: single attribute test when metrics are off.
        self._mx_recvs: Any = None
        self._mx_recv_bytes: Any = None

    def attach_metrics(self, metrics: Any) -> None:
        """Cache receive-side metric handles from the machine's registry
        (called once at machine construction when metrics are enabled)."""
        self._mx_recvs = metrics.counter(
            "cmi.receives", help="messages delivered to this PE's inbox"
        )
        self._mx_recv_bytes = metrics.counter(
            "cmi.recv_bytes", help="modelled payload bytes received"
        )

    # ------------------------------------------------------------------
    # CPU time
    # ------------------------------------------------------------------
    def charge(self, dt: float) -> None:
        """Advance virtual time by ``dt`` to model CPU work on this PE.

        Must be called from a tasklet that belongs to this node; the
        tasklet sleeps, so other PEs (and the network) progress meanwhile.
        Zero-cost charges return immediately without a context switch, and
        when nothing else can interleave (no ready tasklet, no earlier
        event) the clock advances in place without parking at all.
        """
        if dt < 0:
            raise SimulationError(f"cannot charge negative time ({dt})")
        self.stats.busy_time += dt
        if dt > 0.0:
            engine = self.engine
            cur = engine._current
            if cur is None:
                if engine._inline_node is self:
                    # Inline (delegated) dispatch: the handler runs in an
                    # engine event callback, so there is no tasklet to
                    # park — CPU cost advances the clock in place, and
                    # the drain settles any events owed in the skipped
                    # span at the next handler boundary
                    # (:meth:`SimEngine.inline_resolve`).
                    engine.now += dt
                    return
                raise SimulationError(
                    f"charge() on PE {self.pe} from a tasklet not on this PE"
                )
            if cur.node is not self:
                raise SimulationError(
                    f"charge() on PE {self.pe} from a tasklet not on this PE"
                )
            engine.sleep_current(cur, dt)

    @property
    def now(self) -> float:
        """The PE's clock (``CmiTimer``); all PEs share the virtual clock."""
        return self.engine.now

    # ------------------------------------------------------------------
    # inbox
    # ------------------------------------------------------------------
    def set_interceptor(self, fn: Callable[[Any], bool],
                        front: bool = False) -> None:
        """Install an arrival interceptor.  ``fn(payload)`` runs on every
        network delivery before any inbox/stats processing; returning True
        consumes the payload (it never reaches the inbox).  Interceptors
        are machine-layer drivers, not observers (observers use
        :meth:`add_delivery_hook`); they run in install order, or ahead of
        the existing chain with ``front=True`` (how the fault-tolerance
        layer sees every arrival — for liveness evidence — before the
        reliable-delivery layer consumes its protocol packets)."""
        chain = self._interceptors or ()
        self._interceptors = (fn,) + chain if front else chain + (fn,)

    def deliver(self, payload: Any) -> None:
        """Network-facing: append an arrival and wake blocked tasklets.

        Runs inside an engine event callback (never in a tasklet).
        """
        if not self.up:
            # A dead PE's NIC: in-flight packets addressed to it vanish.
            self.dropped_while_down += 1
            return
        interceptors = self._interceptors
        if interceptors is not None:
            for fn in interceptors:
                if fn(payload):
                    return
        self.inbox.append(payload)
        stats = self.stats
        stats.msgs_received += 1
        stats.bytes_received += getattr(payload, "size", 0) or 0
        if self._mx_recvs is not None:
            self._mx_recvs.inc(self.pe)
            self._mx_recv_bytes.inc(self.pe, getattr(payload, "size", 0) or 0)
        if self._delivery_hooks:
            for hook in self._delivery_hooks:
                hook(payload)
        waiters = self._waiters
        if waiters:
            # An idle scheduler loop may have delegated its drain to the
            # delivery path (inline dispatch): run its handlers right
            # here in engine context — zero context switches — instead
            # of waking the parked tasklet.
            rt = self.runtime
            if rt is not None and rt._delegate is not None:
                rt._delegate._dg_deliver()
                return
            make_ready = self.engine.make_ready
            while waiters:
                make_ready(waiters.popleft())

    def add_delivery_hook(self, hook: Callable[[Any], None]) -> None:
        """Register an observer invoked on every arrival (tracing)."""
        self._delivery_hooks.append(hook)

    def deliver_immediate(self, payload: Any) -> None:
        """Interrupt-style delivery (the paper's section-6 "preemptive
        messages" future work): instead of queueing into the inbox, the
        message's handler runs *at arrival time* in its own context —
        even while the PE's regular code is mid-computation.  (Modelling
        note: the interrupted computation's remaining time is not
        extended by the service routine's — the two overlap in virtual
        time, a simplification over a real interrupt.)"""
        if not self.up:
            self.dropped_while_down += 1
            return
        self.stats.msgs_received += 1
        self.stats.bytes_received += getattr(payload, "size", 0) or 0
        if self._mx_recvs is not None:
            self._mx_recvs.inc(self.pe)
            self._mx_recv_bytes.inc(self.pe, getattr(payload, "size", 0) or 0)
        for hook in self._delivery_hooks:
            hook(payload)

        def service() -> None:
            rt = self.runtime
            if rt is None:
                raise SimulationError(
                    f"immediate message on PE {self.pe} with no runtime"
                )
            rt.deliver_from_network(payload)

        self.spawn(service, name="isr")

    def poll(self) -> Optional[Any]:
        """Non-blocking inbox pop (the guts of ``CmiGetMsg``)."""
        if self.inbox:
            return self.inbox.popleft()
        return None

    def inbox_snapshot(self) -> Any:
        """The inbox contents as an iterable safe to walk while deliveries
        may be happening.  On the single-threaded simulator that is the
        inbox itself; machine layers with a concurrent receive path (mp)
        override this to copy under their delivery lock.  Checkpointing
        iterates this instead of touching :attr:`inbox` directly."""
        return self.inbox

    def wait_for_message(self) -> Any:
        """Block the calling tasklet until a message is available, then
        pop and return it."""
        cur = self.engine.require_tasklet()
        if cur.node is not self:
            raise SimulationError(
                f"wait_for_message() on PE {self.pe} from a tasklet on "
                f"PE {getattr(cur.node, 'pe', None)}"
            )
        while not self.inbox:
            self._waiters.append(cur)
            self.engine.suspend()
        return self.inbox.popleft()

    def wait_until(self, predicate: Callable[[], bool]) -> None:
        """Block the calling tasklet until ``predicate()`` is true.

        The predicate is re-evaluated after every delivery to this node
        and after every explicit :meth:`kick`.
        """
        cur = self.engine.require_tasklet()
        while not predicate():
            self._waiters.append(cur)
            self.engine.suspend()

    def kick(self) -> None:
        """Wake every tasklet blocked on this node so it rechecks its wait
        condition.  Used by same-PE state changes (e.g. ``CsdEnqueue`` from
        another tasklet, Cth awakenings)."""
        while self._waiters:
            self.engine.make_ready(self._waiters.popleft())

    # ------------------------------------------------------------------
    # crash injection (whole-PE failure model)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash this PE: kill every tasklet bound to it, discard its
        inbox, memory and software wiring.  Runs from an engine event
        callback (the machine's crash injector), never from a tasklet.
        Cumulative counters survive — a crash does not rewrite history."""
        if not self.up:
            raise SimulationError(f"PE {self.pe} is already down")
        self.up = False
        self.crashed_at = self.engine.now
        # Waiters are about to be killed; drop them first so nothing can
        # make_ready a finished tasklet afterwards.
        self._waiters.clear()
        self.engine.kill_node_tasklets(self)
        self.inbox.clear()
        self.memory.clear()
        self._next_mem_key = 1
        self._interceptors = None
        self.runtime = None

    def restart(self) -> None:
        """Power the PE back on with amnesia: a fresh incarnation with an
        empty inbox and memory.  The machine re-attaches a fresh runtime
        (and protocol layers) afterwards."""
        if self.up:
            raise SimulationError(f"PE {self.pe} is not down")
        self.up = True
        self.epoch += 1

    # ------------------------------------------------------------------
    # memory (EMI global pointers)
    # ------------------------------------------------------------------
    def alloc(self, size: int) -> int:
        """Reserve ``size`` bytes of node memory; returns the local key."""
        if size < 0:
            raise SimulationError(f"cannot allocate negative size {size}")
        key = self._next_mem_key
        self._next_mem_key += 1
        self.memory[key] = bytearray(size)
        return key

    def mem_read(self, key: int, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset`` from a memory region."""
        region = self.memory[key]
        if offset < 0 or offset + size > len(region):
            raise SimulationError(
                f"out-of-range read [{offset}, {offset + size}) of region "
                f"{key} (len {len(region)}) on PE {self.pe}"
            )
        return bytes(region[offset:offset + size])

    def mem_write(self, key: int, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset`` into a memory region."""
        region = self.memory[key]
        if offset < 0 or offset + len(data) > len(region):
            raise SimulationError(
                f"out-of-range write [{offset}, {offset + len(data)}) of "
                f"region {key} (len {len(region)}) on PE {self.pe}"
            )
        region[offset:offset + len(data)] = data

    # ------------------------------------------------------------------
    # tasklets
    # ------------------------------------------------------------------
    def spawn(self, fn: Callable[[], Any], name: str = "task", start: bool = True):
        """Create a tasklet bound to this PE."""
        return self.engine.spawn(fn, name=f"pe{self.pe}-{name}", node=self, start=start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node pe={self.pe} inbox={len(self.inbox)}>"
