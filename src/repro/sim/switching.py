"""Pluggable tasklet switch backends — need-based cost for context switches.

The paper's central design rule is that modules pay only for the features
they use; the simulator applies the same rule to its own machinery.  A
tasklet park/resume is the hottest operation in the whole system (every
delivered message crosses it at least once), and the portable
implementation — an OS-thread baton — costs two scheduler round-trips,
roughly 10 µs.  Where the optional `greenlet <https://pypi.org/project/
greenlet/>`_ package is installed, the same discipline can run as an
in-process stack switch costing ~100 ns, with byte-identical traces.

This module is the seam between the two:

* :class:`ThreadSwitchBackend` — the default, dependency-free backend;
  always available.
* :class:`GreenletSwitchBackend` — the fast backend; available when
  ``greenlet`` is importable (install the ``repro[fast]`` extra).

Selection (first match wins):

1. ``Machine(backend=...)`` / ``SimEngine(backend=...)`` with a backend
   name, ``"fast"``/``"auto"``, or a :class:`SwitchBackend` instance;
2. the ``REPRO_SIM_BACKEND`` environment variable (same values);
3. the portable default, ``"thread"`` — no environment without greenlet
   ever breaks, it is merely slower.

``"fast"`` and ``"auto"`` pick the quickest *available* backend and never
fail; naming ``"greenlet"`` explicitly raises when it is not installed.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Type, Union

from repro.core.errors import SimulationError

__all__ = [
    "ENV_VAR",
    "SwitchBackend",
    "ThreadSwitchBackend",
    "GreenletSwitchBackend",
    "BACKENDS",
    "available_backends",
    "best_backend_name",
    "resolve_backend",
]

#: environment variable consulted when no explicit backend is requested.
ENV_VAR = "REPRO_SIM_BACKEND"


class SwitchBackend:
    """Factory for tasklets of one switching flavour.

    A backend is stateless; engines share instances freely.  Subclasses
    set :attr:`name` and implement :meth:`create`.
    """

    #: the name the backend is selected by.
    name: str = "?"

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current interpreter."""
        return True

    def create(self, engine: Any, fn: Callable[[], Any], name: str = "tasklet",
               node: Any = None) -> Any:
        """Build one tasklet managed by this backend."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SwitchBackend {self.name!r}>"


class ThreadSwitchBackend(SwitchBackend):
    """OS-thread baton switching: portable, dependency-free, ~10 µs per
    switch.  The default."""

    name = "thread"

    def create(self, engine: Any, fn: Callable[[], Any], name: str = "tasklet",
               node: Any = None) -> Any:
        from repro.sim.tasklet import Tasklet

        return Tasklet(engine, fn, name=name, node=node)


class GreenletSwitchBackend(SwitchBackend):
    """Greenlet stack switching: ~100 ns per switch, no OS threads.

    Requires the ``greenlet`` package (the ``repro[fast]`` extra).
    Semantics are identical to the thread backend — same park/resume/
    transfer/kill behaviour, byte-identical traces — because both sides
    of the baton run the same engine code; only the hand-off mechanism
    differs.
    """

    name = "greenlet"

    @classmethod
    def available(cls) -> bool:
        try:
            import greenlet  # noqa: F401
        except ImportError:
            return False
        return True

    def create(self, engine: Any, fn: Callable[[], Any], name: str = "tasklet",
               node: Any = None) -> Any:
        from repro.sim._greenlet_backend import GreenletTasklet

        return GreenletTasklet(engine, fn, name=name, node=node)


#: registry of selectable backends, in preference order for ``"fast"``.
BACKENDS: Dict[str, Type[SwitchBackend]] = {
    "greenlet": GreenletSwitchBackend,
    "thread": ThreadSwitchBackend,
}

#: aliases that mean "the quickest available backend".
_FAST_ALIASES = ("fast", "auto", "best")


def available_backends() -> List[str]:
    """Names of the backends usable in this interpreter (always includes
    ``"thread"``)."""
    return [name for name, cls in BACKENDS.items() if cls.available()]


def best_backend_name() -> str:
    """The quickest available backend's name (what ``"fast"`` resolves
    to)."""
    for name, cls in BACKENDS.items():
        if cls.available():
            return name
    raise SimulationError("no switch backend available")  # pragma: no cover


def resolve_backend(spec: Union[None, str, SwitchBackend] = None) -> SwitchBackend:
    """Turn a backend specification into a :class:`SwitchBackend`.

    ``spec`` may be ``None`` (consult :data:`ENV_VAR`, default
    ``"thread"``), a backend name, one of the fast aliases, or an already
    constructed backend (returned as-is, for tests that stub switching).
    """
    if isinstance(spec, SwitchBackend):
        return spec
    if spec is None:
        spec = os.environ.get(ENV_VAR) or "thread"
    key = spec.strip().lower()
    if key in _FAST_ALIASES:
        key = best_backend_name()
    cls = BACKENDS.get(key)
    if cls is None:
        raise SimulationError(
            f"unknown switch backend {spec!r}; choose from "
            f"{', '.join(sorted(BACKENDS))} or fast/auto"
        )
    if not cls.available():
        raise SimulationError(
            f"switch backend {key!r} is not available in this environment "
            "(install the repro[fast] extra for greenlet support, or use "
            "backend='fast' to fall back automatically)"
        )
    return cls()
