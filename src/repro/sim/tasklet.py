"""Tasklets: suspendable user-code contexts.

The original Converse implements thread objects with ``setjmp``/``longjmp``
over per-thread stacks.  Python offers no portable stack switching, so the
*portable* backend backs each tasklet with an OS thread — but enforces that
**exactly one** tasklet (or the engine) runs at any moment by passing a
baton built from a pair of ``threading.Lock`` objects (a lock hand-off is
roughly half the cost of the ``threading.Event`` pair it replaced).  The
GIL therefore never introduces nondeterminism: execution is fully
serialized and scheduled by the engine.

Where the optional ``greenlet`` package is installed, the engine can use
:class:`~repro.sim._greenlet_backend.GreenletTasklet` instead, which
performs the same baton discipline as an in-thread stack switch (~100 ns
instead of ~10 µs).  Both implementations share :class:`BaseTasklet` and
are selected by a :class:`~repro.sim.switching.SwitchBackend`; they are
observationally identical — same park/resume/kill semantics, same trace
bytes.

A tasklet runs until it *parks* (via the engine's sleep/suspend/transfer
primitives) or finishes.  Parking hands the baton back to the engine's
driver.

Shutdown injects :class:`~repro.core.errors.TaskletKilled` (a
``BaseException``) at the park point so that ``finally`` blocks in user
code still run but ordinary ``except Exception`` clauses do not swallow
the unwind.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.core.errors import SimulationError, TaskletKilled

__all__ = ["BaseTasklet", "Tasklet"]

#: Join timeout used during shutdown.  A healthy tasklet unwinds in
#: microseconds; the timeout only guards against pathological user code.
_JOIN_TIMEOUT = 5.0


class BaseTasklet:
    """State and bookkeeping shared by every switch backend.

    Attributes of interest to the rest of the library:

    * ``node`` — the simulated PE this tasklet belongs to (or ``None``);
      used to answer "which processor am I on?" from C-style API calls.
    * ``finished`` — the function returned, raised, or was killed.
    * ``result`` / ``error`` — outcome of the function, for joiners.
    * ``data`` — a free slot for higher layers (Cth stores its thread
      object here).

    Subclasses implement the four switch operations:
    :meth:`resume_from_engine`, :meth:`park`, :meth:`kill`, :meth:`join`.
    """

    #: global id counter, shared across backends so tasklet ids (and any
    #: trace field derived from them) do not depend on the backend choice.
    _ids = 0

    def __init__(self, engine: Any, fn: Callable[[], Any], name: str = "tasklet",
                 node: Any = None) -> None:
        BaseTasklet._ids += 1
        self.tid = BaseTasklet._ids
        self.engine = engine
        self.fn = fn
        self.name = name
        self.node = node
        self.finished = False
        self.started = False
        self.ready = False
        self.killed = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.data: Any = None
        #: the ScheduledEvent that will wake this tasklet from a sleep
        #: (``None`` while not sleeping).  Tracked so crash injection can
        #: cancel the wake-up before killing the tasklet — a make_ready
        #: firing on a finished tasklet is an engine error.
        self.wake_event: Any = None

    # -- switch operations (backend-specific) ---------------------------
    def resume_from_engine(self) -> None:
        """Run this tasklet until it parks or finishes (driver side)."""
        raise NotImplementedError

    def park(self) -> None:
        """Give the baton back to the engine and block until resumed
        (tasklet side)."""
        raise NotImplementedError

    def kill(self) -> None:
        """Ask this tasklet to unwind at its current park point (driver
        side)."""
        raise NotImplementedError

    def join(self) -> None:
        """Reclaim backend resources after :meth:`kill` (driver side)."""
        raise NotImplementedError

    def _run_user_fn(self) -> None:
        """The shared tasklet body: run user code, capture the outcome,
        report failures, and mark the tasklet finished."""
        try:
            if not self.killed:
                self.result = self.fn()
        except TaskletKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 - report and unwind
            self.error = exc
            self.engine.report_failure(exc)
        finally:
            self.finished = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "finished" if self.finished
            else "ready" if self.ready
            else "running/parked" if self.started
            else "new"
        )
        return f"<{type(self).__name__} {self.name!r} #{self.tid} {state}>"


class Tasklet(BaseTasklet):
    """The portable OS-thread tasklet (the ``"thread"`` backend).

    The baton is a pair of ``threading.Lock`` objects, both created held:
    releasing the peer's lock wakes it, acquiring one's own lock blocks
    until woken.  Exactly one side ever runs, so each lock is released at
    most once before its next acquire — strict alternation, no lost or
    duplicated wake-ups.
    """

    def __init__(self, engine: Any, fn: Callable[[], Any], name: str = "tasklet",
                 node: Any = None) -> None:
        super().__init__(engine, fn, name=name, node=node)
        self._go = threading.Lock()
        self._back = threading.Lock()
        self._go.acquire()
        self._back.acquire()
        self._thread = threading.Thread(
            target=self._bootstrap, name=f"sim-{name}-{self.tid}", daemon=True
        )

    # ------------------------------------------------------------------
    # thread body
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        # Wait for the first baton hand-off before touching user code.
        self._go.acquire()
        try:
            self._run_user_fn()
        finally:
            # Hand the baton back for the last time.
            self._back.release()

    # ------------------------------------------------------------------
    # baton passing (engine side)
    # ------------------------------------------------------------------
    def resume_from_engine(self) -> None:
        """Run this tasklet until it parks or finishes.

        Called only by the engine's driver thread.
        """
        if self.finished:
            raise SimulationError(f"resuming finished tasklet {self.name!r}")
        if not self.started:
            self.started = True
            self._thread.start()
        self._go.release()
        self._back.acquire()

    # ------------------------------------------------------------------
    # baton passing (tasklet side)
    # ------------------------------------------------------------------
    def park(self) -> None:
        """Give the baton back to the engine and block until resumed.

        Must be called from this tasklet's own thread (the engine's parking
        primitives guarantee that).  Raises :class:`TaskletKilled` if the
        machine is shutting down.
        """
        if threading.current_thread() is not self._thread:
            raise SimulationError(
                f"park() called from foreign thread for tasklet {self.name!r}"
            )
        self._back.release()
        self._go.acquire()
        if self.killed:
            raise TaskletKilled()

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Ask this tasklet to unwind; it dies at its current park point.

        Called only from the driver thread.  A tasklet that never started
        is finished immediately without running user code.
        """
        if self.finished:
            return
        self.killed = True
        if not self.started:
            # Never ran: mark it done without spinning up the thread.
            self.finished = True
            return
        # Wake it so the park point raises TaskletKilled.
        self._go.release()
        self._back.acquire(timeout=_JOIN_TIMEOUT)

    def join(self) -> None:
        """Wait for the backing OS thread to exit (after :meth:`kill`)."""
        if self.started:
            self._thread.join(_JOIN_TIMEOUT)
