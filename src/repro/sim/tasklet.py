"""Tasklets: suspendable user-code contexts backed by real threads.

The original Converse implements thread objects with ``setjmp``/``longjmp``
over per-thread stacks.  Python offers no portable stack switching, so we
back each tasklet with an OS thread — but enforce that **exactly one**
tasklet (or the engine) runs at any moment by passing a baton built from a
pair of ``threading.Event`` objects.  The GIL therefore never introduces
nondeterminism: execution is fully serialized and scheduled by the engine.

A tasklet runs until it *parks* (via the engine's sleep/suspend/transfer
primitives) or finishes.  Parking hands the baton back to the engine's
driver thread.

Shutdown injects :class:`~repro.core.errors.TaskletKilled` (a
``BaseException``) at the park point so that ``finally`` blocks in user
code still run but ordinary ``except Exception`` clauses do not swallow
the unwind.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.core.errors import SimulationError, TaskletKilled

__all__ = ["Tasklet"]

#: Join timeout used during shutdown.  A healthy tasklet unwinds in
#: microseconds; the timeout only guards against pathological user code.
_JOIN_TIMEOUT = 5.0


class Tasklet:
    """A single suspendable execution context.

    Attributes of interest to the rest of the library:

    * ``node`` — the simulated PE this tasklet belongs to (or ``None``);
      used to answer "which processor am I on?" from C-style API calls.
    * ``finished`` — the function returned, raised, or was killed.
    * ``result`` / ``error`` — outcome of the function, for joiners.
    * ``data`` — a free slot for higher layers (Cth stores its thread
      object here).
    """

    _ids = 0

    def __init__(self, engine: Any, fn: Callable[[], Any], name: str = "tasklet",
                 node: Any = None) -> None:
        Tasklet._ids += 1
        self.tid = Tasklet._ids
        self.engine = engine
        self.fn = fn
        self.name = name
        self.node = node
        self.finished = False
        self.started = False
        self.ready = False
        self.killed = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.data: Any = None
        self._go = threading.Event()
        self._back = threading.Event()
        self._thread = threading.Thread(
            target=self._bootstrap, name=f"sim-{name}-{self.tid}", daemon=True
        )

    # ------------------------------------------------------------------
    # thread body
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        # Wait for the first baton hand-off before touching user code.
        self._go.wait()
        self._go.clear()
        try:
            if not self.killed:
                self.result = self.fn()
        except TaskletKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 - report and unwind
            self.error = exc
            self.engine.report_failure(exc)
        finally:
            self.finished = True
            # Hand the baton back for the last time.
            self._back.set()

    # ------------------------------------------------------------------
    # baton passing (engine side)
    # ------------------------------------------------------------------
    def resume_from_engine(self) -> None:
        """Run this tasklet until it parks or finishes.

        Called only by the engine's driver thread.
        """
        if self.finished:
            raise SimulationError(f"resuming finished tasklet {self.name!r}")
        if not self.started:
            self.started = True
            self._thread.start()
        self._go.set()
        self._back.wait()
        self._back.clear()

    # ------------------------------------------------------------------
    # baton passing (tasklet side)
    # ------------------------------------------------------------------
    def park(self) -> None:
        """Give the baton back to the engine and block until resumed.

        Must be called from this tasklet's own thread (the engine's parking
        primitives guarantee that).  Raises :class:`TaskletKilled` if the
        machine is shutting down.
        """
        if threading.current_thread() is not self._thread:
            raise SimulationError(
                f"park() called from foreign thread for tasklet {self.name!r}"
            )
        self._back.set()
        self._go.wait()
        self._go.clear()
        if self.killed:
            raise TaskletKilled()

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Ask this tasklet to unwind; it dies at its current park point.

        Called only from the driver thread.  A tasklet that never started
        is finished immediately without running user code.
        """
        if self.finished:
            return
        self.killed = True
        if not self.started:
            # Never ran: mark it done without spinning up the thread.
            self.finished = True
            return
        # Wake it so the park point raises TaskletKilled.
        self._go.set()
        self._back.wait(_JOIN_TIMEOUT)
        self._back.clear()

    def join(self) -> None:
        """Wait for the backing OS thread to exit (after :meth:`kill`)."""
        if self.started:
            self._thread.join(_JOIN_TIMEOUT)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "finished" if self.finished
            else "ready" if self.ready
            else "running/parked" if self.started
            else "new"
        )
        return f"<Tasklet {self.name!r} #{self.tid} {state}>"
