"""Interconnect topologies: hop-distance metrics for the machine models.

The five machines the paper evaluates on have different interconnects — a
3-D torus (Cray T3D), a 2-D mesh (Intel Paragon), switched networks (ATM,
Myrinet) and a multistage network (SP-1/SP-2).  For latency modelling the
only thing the network layer needs is a *hop count* between two PEs, so a
topology is simply an object with ``hops(src, dst)``.

All topologies accept any ``num_pes`` and lay PEs out in row-major order
over the smallest grid that holds them.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.core.errors import SimulationError

__all__ = [
    "Topology",
    "FlatTopology",
    "Mesh2D",
    "Torus3D",
    "Hypercube",
    "MultistageTopology",
    "make_topology",
]


class Topology:
    """Base class: a hop-count metric over ``num_pes`` processors."""

    def __init__(self, num_pes: int) -> None:
        if num_pes < 1:
            raise SimulationError(f"topology needs at least 1 PE, got {num_pes}")
        self.num_pes = num_pes

    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between two PEs (0 when ``src == dst``)."""
        raise NotImplementedError

    def _check(self, pe: int) -> None:
        if not 0 <= pe < self.num_pes:
            raise SimulationError(f"PE {pe} out of range [0, {self.num_pes})")

    @property
    def diameter(self) -> int:
        """Maximum hop count over all PE pairs (brute force; fine for the
        machine sizes simulated here)."""
        best = 0
        for s in range(self.num_pes):
            for d in range(self.num_pes):
                best = max(best, self.hops(s, d))
        return best


class FlatTopology(Topology):
    """A crossbar / central switch: every distinct pair is one hop.

    Used for the switched networks (Myrinet, ATM) where per-hop latency
    differences are negligible at the message sizes measured.
    """

    def hops(self, src: int, dst: int) -> int:
        """Hop count between ``src`` and ``dst`` under this topology's metric."""
        self._check(src)
        self._check(dst)
        return 0 if src == dst else 1


class Mesh2D(Topology):
    """2-D mesh with dimension-ordered (Manhattan) routing — the Intel
    Paragon interconnect."""

    def __init__(self, num_pes: int) -> None:
        super().__init__(num_pes)
        self.cols = max(1, math.isqrt(num_pes))
        self.rows = math.ceil(num_pes / self.cols)

    def coords(self, pe: int) -> Tuple[int, int]:
        """Grid coordinates of PE ``pe`` in this topology's layout."""
        self._check(pe)
        return divmod(pe, self.cols)

    def hops(self, src: int, dst: int) -> int:
        """Hop count between ``src`` and ``dst`` under this topology's metric."""
        (sr, sc), (dr, dc) = self.coords(src), self.coords(dst)
        return abs(sr - dr) + abs(sc - dc)


class Torus3D(Topology):
    """3-D torus with wraparound links — the Cray T3D interconnect."""

    def __init__(self, num_pes: int) -> None:
        super().__init__(num_pes)
        side = max(1, round(num_pes ** (1.0 / 3.0)))
        while side ** 3 < num_pes:
            side += 1
        self.side = side

    def coords(self, pe: int) -> Tuple[int, int, int]:
        """Grid coordinates of PE ``pe`` in this topology's layout."""
        self._check(pe)
        s = self.side
        return (pe // (s * s), (pe // s) % s, pe % s)

    def _ring_dist(self, a: int, b: int) -> int:
        d = abs(a - b)
        return min(d, self.side - d)

    def hops(self, src: int, dst: int) -> int:
        """Hop count between ``src`` and ``dst`` under this topology's metric."""
        sa, sb, sc = self.coords(src)
        da, db, dc = self.coords(dst)
        return (
            self._ring_dist(sa, da)
            + self._ring_dist(sb, db)
            + self._ring_dist(sc, dc)
        )


class Hypercube(Topology):
    """Binary hypercube: hop count is the Hamming distance of PE ids.

    Not one of the paper's five machines but included for the generic
    model and for topology-sensitive load-balancing strategies
    (neighbour-averaging uses hypercube neighbours like early Charm)."""

    def hops(self, src: int, dst: int) -> int:
        """Hop count between ``src`` and ``dst`` under this topology's metric."""
        self._check(src)
        self._check(dst)
        return (src ^ dst).bit_count()

    def neighbors(self, pe: int) -> list:
        """PEs at Hamming distance 1 (clipped to the machine size)."""
        self._check(pe)
        out = []
        bit = 1
        while bit < max(2, self.num_pes):
            other = pe ^ bit
            if other < self.num_pes:
                out.append(other)
            bit <<= 1
        return out


class MultistageTopology(Topology):
    """Multistage (butterfly-style) network — IBM SP-1/SP-2.

    Every distinct pair traverses ``log2(P)`` switch stages (rounded up),
    which is the right first-order latency model for the SP's Vulcan
    switch."""

    def hops(self, src: int, dst: int) -> int:
        """Hop count between ``src`` and ``dst`` under this topology's metric."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        return max(1, math.ceil(math.log2(max(2, self.num_pes))))


_TOPOLOGIES = {
    "flat": FlatTopology,
    "mesh2d": Mesh2D,
    "torus3d": Torus3D,
    "hypercube": Hypercube,
    "multistage": MultistageTopology,
}


def make_topology(name: str, num_pes: int) -> Topology:
    """Instantiate a topology by name (see :data:`_TOPOLOGIES` keys)."""
    try:
        cls = _TOPOLOGIES[name]
    except KeyError:
        raise SimulationError(
            f"unknown topology {name!r}; choose from {sorted(_TOPOLOGIES)}"
        ) from None
    return cls(num_pes)
