"""Thread objects (Cth) and synchronization mechanisms (Cts)."""
