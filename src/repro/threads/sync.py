"""Synchronization mechanisms — ``Cts*`` (paper section 3.2.3, API
appendix section 6).

Locks, condition variables and barriers over Cth threads.  "The
functionality outlined above is an extension of the Posix threads
standard.  The only notable difference is that the scheduler is separated
out" — so these objects never schedule anything themselves; they only
``suspend`` the current thread and ``awaken`` waiters, and whatever
strategy each thread carries decides when it actually runs again.

All three objects work from any context that has a Cth identity
(including SPM mains and message handlers, which get a main pseudo-thread
from ``CthSelf``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.core.errors import SyncError
from repro.sim import context
from repro.threads.thread_object import CthModule, CthThread

__all__ = ["CtsLock", "CtsCondition", "CtsBarrier"]


def _module() -> CthModule:
    return context.current_runtime().cth


class CtsLock:
    """A mutex with a FIFO wait queue (``CtsNewLock`` ... ``CtsUnLock``).

    "The thread trying to obtain a lock continues ... if the lock can be
    obtained.  If not, the thread is placed in a queue for the lock, and
    the thread is suspended.  A thread which releases the lock causes the
    shifting of ownership ... to the first thread in this queue and
    awakens this thread."
    """

    def __init__(self) -> None:
        self.owner: Optional[CthThread] = None
        self._queue: Deque[CthThread] = deque()
        #: times ownership changed hands; tests use this.
        self.handoffs = 0

    def init(self) -> None:
        """``CtsLockInit``: reset a previously allocated lock."""
        if self._queue:
            raise SyncError("cannot re-init a lock with queued waiters")
        self.owner = None

    def try_lock(self) -> bool:
        """``CtsTryLock``: non-blocking; True when acquired."""
        me = _module().self_thread()
        if self.owner is None:
            self.owner = me
            return True
        return False

    def lock(self) -> None:
        """``CtsLock``: block (suspend) until ownership arrives."""
        mod = _module()
        me = mod.self_thread()
        if self.owner is None:
            self.owner = me
            return
        if self.owner is me:
            raise SyncError("CtsLock: relock by current owner (not recursive)")
        self._queue.append(me)
        while self.owner is not me:
            mod.suspend()

    def unlock(self) -> None:
        """``CtsUnLock``: release; ownership shifts to the first queued
        waiter, which is awakened.  Raises if the caller is not the
        owner."""
        mod = _module()
        me = mod.self_thread()
        if self.owner is not me:
            raise SyncError(
                "CtsUnLock by a thread that does not own the lock"
            )
        if self._queue:
            nxt = self._queue.popleft()
            self.owner = nxt
            self.handoffs += 1
            mod.awaken(nxt)
        else:
            self.owner = None

    @property
    def locked(self) -> bool:
        """True while some thread owns the lock."""
        return self.owner is not None

    @property
    def waiters(self) -> int:
        """Number of threads currently queued/waiting."""
        return len(self._queue)


class CtsCondition:
    """A condition variable (``CtsNewCondn`` ... ``CtsCondnBroadcast``).

    "Threads can wait on a condition variable.  Other threads can either
    signal or broadcast this condition variable causing the awakening of
    either one or all of the threads waiting."
    """

    def __init__(self) -> None:
        self._waiters: Deque[CthThread] = deque()
        self._release_tokens: dict = {}

    def init(self) -> None:
        """``CtsCondnInit``: per the paper's API, re-initialization
        "causes all the waiting threads ... to be awakened"."""
        self.broadcast()

    def wait(self, lock: Optional[CtsLock] = None) -> None:
        """``CtsCondnWait``: suspend until signalled.  If ``lock`` is
        given it is released while waiting and re-acquired before
        returning (the usual monitor pattern; the paper's call takes no
        lock, so it stays optional here)."""
        mod = _module()
        me = mod.self_thread()
        self._waiters.append(me)
        self._release_tokens[me.id] = False
        if lock is not None:
            lock.unlock()
        while not self._release_tokens[me.id]:
            mod.suspend()
        del self._release_tokens[me.id]
        if lock is not None:
            lock.lock()

    def signal(self) -> int:
        """``CtsCondnSignal``: release one waiter (FIFO).  Returns the
        number of threads released (0 or 1)."""
        mod = _module()
        if not self._waiters:
            return 0
        thr = self._waiters.popleft()
        self._release_tokens[thr.id] = True
        mod.awaken(thr)
        return 1

    def broadcast(self) -> int:
        """``CtsCondnBroadcast``: release every waiter.  Returns how many
        were released."""
        mod = _module()
        n = 0
        while self._waiters:
            thr = self._waiters.popleft()
            self._release_tokens[thr.id] = True
            mod.awaken(thr)
            n += 1
        return n

    @property
    def waiters(self) -> int:
        """Number of threads currently queued/waiting."""
        return len(self._waiters)


class CtsBarrier:
    """A barrier: "a condition variable whose kth wait is a broadcast"
    (``CtsNewBarrier`` / ``CtsBarrierReinit`` / ``CtsAtBarrier``)."""

    def __init__(self, num: int = 0) -> None:
        self._needed = num
        self._arrived = 0
        self._generation = 0
        self._cond = CtsCondition()
        #: completed barrier episodes; tests use this.
        self.episodes = 0

    def reinit(self, num: int) -> None:
        """``CtsBarrierReinit``: free any current waiters, then await the
        arrival of ``num`` threads."""
        if num < 1:
            raise SyncError(f"a barrier needs num >= 1, got {num}")
        self._cond.broadcast()
        self._needed = num
        self._arrived = 0
        self._generation += 1

    def at_barrier(self) -> None:
        """``CtsAtBarrier``: block until ``num`` threads have arrived; the
        last arrival releases everyone."""
        if self._needed < 1:
            raise SyncError("barrier not initialized (call reinit first)")
        gen = self._generation
        self._arrived += 1
        if self._arrived >= self._needed:
            self._arrived = 0
            self._generation += 1
            self.episodes += 1
            self._cond.broadcast()
            return
        while self._generation == gen:
            self._cond.wait()

    @property
    def waiting(self) -> int:
        """Number of threads blocked at the barrier."""
        return self._cond.waiters
