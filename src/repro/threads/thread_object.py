"""Thread objects — ``Cth*`` (paper section 3.2.2, API appendix section 5).

Converse deliberately *separates* the essential capability of a thread —
suspending and resuming a stack of control — from scheduling policy and
concurrency control.  The thread object "encapsulates the stack and the
program counter"; everything else is pluggable:

* ``CthResume(t)`` — immediate context switch to ``t``; the switched-away
  thread's state (including *who resumed it*) is kept so control can come
  back.
* ``CthSuspend()`` — give up the processor; a per-thread *suspend
  strategy* picks what runs next (default: the longest-waiting thread in
  the module's ready pool; language runtimes typically install a strategy
  that returns control to the Converse scheduler instead).
* ``CthAwaken(t)`` — declare ``t`` runnable; the per-thread *awaken
  strategy* decides where that readiness is recorded (default: the ready
  pool; the scheduler strategy enqueues a generalized resume-message into
  the Csd queue, which is exactly how "a scheduler entry for a ready
  thread" becomes a generalized message in section 3.1.1).
* ``CthSetStrategy(t, suspfn, susparg, awakenfn, awakenarg)`` — override
  both, per thread, so "each module [can] control the order in which its
  own threads are scheduled".

The stack-switching substrate is the tasklet layer (one OS thread per
Cth thread, strictly one runnable at a time) — the Python stand-in for the
paper's ``setjmp``/``longjmp`` implementation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.core.errors import ThreadError
from repro.core.message import Message
from repro.sim import context

__all__ = ["CthThread", "CthModule"]


class _CthExit(BaseException):
    """Raised inside a thread body by ``CthExit`` to unwind its stack."""


class CthThread:
    """One thread of control (stack + program counter + strategies)."""

    _ids = 0

    def __init__(self, module: "CthModule", fn: Optional[Callable[[Any], Any]],
                 arg: Any = None, stacksize: Optional[int] = None,
                 tasklet: Any = None) -> None:
        CthThread._ids += 1
        self.id = CthThread._ids
        self.module = module
        self.fn = fn
        self.arg = arg
        #: accepted for API fidelity (CthCreateOfSize); tasklets have real
        #: Python stacks so the size is recorded but not enforced.
        self.stacksize = stacksize
        self.dead = False
        #: the context that last resumed this thread; suspending (or
        #: exiting) with no other choice returns control there.
        self.resumer: Any = None
        # Strategy slots (CthSetStrategy).
        self.suspend_fn: Optional[Callable[["CthThread", Any], None]] = None
        self.suspend_arg: Any = None
        self.awaken_fn: Optional[Callable[["CthThread", Any], None]] = None
        self.awaken_arg: Any = None
        if tasklet is not None:
            # Wrapping an existing context (the main tasklet): already live.
            self.tasklet = tasklet
        else:
            self.tasklet = module.node.spawn(
                self._body, name=f"cth{self.id}", start=False
            )
        self.tasklet.data = self

    def _body(self) -> None:
        try:
            self.fn(self.arg)  # type: ignore[misc]
        except _CthExit:
            pass
        finally:
            self.module._on_thread_done(self)

    @property
    def is_main(self) -> bool:
        """True for the pseudo-thread wrapping a non-Cth context."""
        return self.fn is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.dead else "main" if self.is_main else "thread"
        return f"<CthThread #{self.id} {state} pe={self.module.node.pe}>"


class CthModule:
    """Per-PE thread support (``CthInit`` happens at construction).

    Owns the default ready pool and the Csd integration handler.
    """

    def __init__(self, runtime: Any) -> None:
        self.runtime = runtime
        self.node = runtime.node
        self.engine = runtime.node.engine
        #: default ready pool: FIFO of threads awaiting CthSuspend's pick.
        self.ready_pool: Deque[CthThread] = deque()
        #: handler that resumes a thread when its generalized
        #: resume-message is dequeued by the Csd scheduler.
        self.resume_handler = runtime.register_handler(
            self._on_resume_msg, "cth.resume"
        )
        self.threads_created = 0
        # Metric handles, cached once (same flag-guard discipline as
        # tracing: with metrics off each verb costs one flag test).
        if runtime.metering:
            self._mx_created = runtime.metrics.counter(
                "cth.threads_created", help="Cth threads created"
            )
            self._mx_switches = runtime.metrics.counter(
                "cth.switches", help="CthResume context switches"
            )
        else:
            self._mx_created = None
            self._mx_switches = None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def self_thread(self) -> CthThread:
        """``CthSelf()``: the currently executing thread.  A non-Cth
        context (an SPM main, a message handler) gets a main pseudo-thread
        wrapper on first ask, so locks etc. work from plain code too."""
        t = context.require_tasklet()
        if t.node is not self.node:
            raise ThreadError(
                f"CthSelf on PE {self.node.pe} from a tasklet on another PE"
            )
        if isinstance(t.data, CthThread):
            return t.data
        return CthThread(self, None, tasklet=t)

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def create(self, fn: Callable[[Any], Any], arg: Any = None,
               stacksize: Optional[int] = None) -> CthThread:
        """``CthCreate`` / ``CthCreateOfSize``: build a thread; it does
        not run until resumed (or awakened and later picked)."""
        if not callable(fn):
            raise ThreadError(f"thread function must be callable, got {fn!r}")
        self.threads_created += 1
        thr = CthThread(self, fn, arg, stacksize)
        if self.runtime.tracing:
            self.runtime.trace_event("thread_create", thread=thr.id)
        if self.runtime.metering:
            self._mx_created.inc(self.node.pe)
        return thr

    # ------------------------------------------------------------------
    # the four verbs
    # ------------------------------------------------------------------
    def resume(self, thr: CthThread) -> None:
        """``CthResume``: immediate switch to ``thr``; control returns
        here only when something resumes the current context again."""
        self._check_alive(thr)
        cur = context.require_tasklet()
        if thr.tasklet is cur:
            return
        thr.resumer = cur
        if self.runtime.tracing:
            self.runtime.trace_event("thread_resume", thread=thr.id)
        if self.runtime.metering:
            self._mx_switches.inc(self.node.pe)
        self.engine.transfer(thr.tasklet)

    def suspend(self) -> None:
        """``CthSuspend``: stop the current thread and transfer control
        per its suspend strategy (default: the ready pool, falling back to
        the thread's resumer)."""
        me = self.self_thread()
        if self.runtime.tracing:
            self.runtime.trace_event("thread_suspend", thread=me.id)
        if me.suspend_fn is not None:
            me.suspend_fn(me, me.suspend_arg)
            return
        self._default_suspend(me)

    def _default_suspend(self, me: CthThread) -> None:
        nxt = self._pop_ready()
        if nxt is not None:
            self.resume(nxt)
            return
        if me.resumer is not None and not me.resumer.finished:
            self.engine.transfer(me.resumer)
            return
        raise ThreadError(
            f"CthSuspend on PE {self.node.pe}: ready pool empty and no "
            "resumer to fall back to (awaken something first)"
        )

    def _pop_ready(self) -> Optional[CthThread]:
        while self.ready_pool:
            thr = self.ready_pool.popleft()
            if not thr.dead:
                return thr
        return None

    def awaken(self, thr: CthThread) -> None:
        """``CthAwaken``: record ``thr`` as ready per its awaken strategy
        (default: append to the ready pool)."""
        self._check_alive(thr)
        if thr.awaken_fn is not None:
            thr.awaken_fn(thr, thr.awaken_arg)
            return
        self.ready_pool.append(thr)

    def yield_(self) -> None:
        """``CthYield``: awaken self, then suspend — other ready threads
        run before control returns here."""
        me = self.self_thread()
        self.awaken(me)
        self.suspend()

    def exit(self) -> None:
        """``CthExit``: terminate the current thread; control moves on per
        its scheduling strategy.  Never returns."""
        me = self.self_thread()
        me.dead = True
        if me.is_main:
            raise ThreadError("CthExit called from a non-Cth context")
        raise _CthExit()

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    def set_strategy(self, thr: CthThread,
                     suspfn: Optional[Callable[[CthThread, Any], None]],
                     susparg: Any,
                     awakenfn: Optional[Callable[[CthThread, Any], None]],
                     awakenarg: Any) -> CthThread:
        """``CthSetStrategy``: override how this thread is parked and
        picked.  Pass ``None`` to restore a default."""
        thr.suspend_fn = suspfn
        thr.suspend_arg = susparg
        thr.awaken_fn = awakenfn
        thr.awaken_arg = awakenarg
        return thr

    def use_scheduler_strategy(self, thr: CthThread) -> CthThread:
        """Install the strategy language runtimes use: awakening enqueues
        a generalized resume-message into the Csd queue ("a scheduler
        entry for a ready thread"); suspending returns control to whoever
        resumed the thread — normally the scheduler loop."""
        return self.set_strategy(
            thr, self._suspend_to_resumer, None, self._awaken_via_csd, None
        )

    def _awaken_via_csd(self, thr: CthThread, _arg: Any) -> None:
        msg = Message(self.resume_handler, thr, size=0)
        self.runtime.scheduler.enqueue_free(msg)

    def _suspend_to_resumer(self, thr: CthThread, _arg: Any) -> None:
        if thr.resumer is None or thr.resumer.finished:
            raise ThreadError(
                f"thread #{thr.id} suspended with no live resumer; is the "
                "Csd scheduler running on this PE?"
            )
        self.engine.transfer(thr.resumer)

    def _on_resume_msg(self, msg: Message) -> None:
        thr = msg.payload
        if not thr.dead:
            self.resume(thr)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _on_thread_done(self, thr: CthThread) -> None:
        """Runs as the last act of a thread's tasklet: pass the baton on
        so execution continues somewhere sensible."""
        thr.dead = True
        nxt = self._pop_ready()
        if nxt is not None:
            nxt.resumer = thr.resumer
            self.engine.make_ready(nxt.tasklet, front=True)
        elif thr.resumer is not None and not thr.resumer.finished:
            self.engine.make_ready(thr.resumer, front=True)
        # Otherwise: nothing to hand off to; the engine will pick up other
        # ready work or events (e.g. a parked scheduler waiting on arrivals).

    # ------------------------------------------------------------------
    def _check_alive(self, thr: CthThread) -> None:
        if thr.dead:
            raise ThreadError(f"operation on dead thread #{thr.id}")
        if thr.module is not self:
            raise ThreadError(
                f"thread #{thr.id} belongs to PE {thr.module.node.pe}, "
                f"not PE {self.node.pe} (threads cannot migrate)"
            )
