"""The trace CLI: ``python -m repro.trace {summarize,export,critpath,
metrics,demo}``.

A thin command-line front end over :mod:`repro.tracing` (analysis,
critical path, exporters) and :mod:`repro.metrics` (snapshot rendering),
consuming JSONL trace files written by
``Machine(trace="jsonl:<path>")`` and metrics JSON written by
``MetricsRegistry.save``.  See :func:`repro.trace.cli.main`.
"""

from repro.trace.cli import build_parser, main

__all__ = ["build_parser", "main"]
