"""Command-line trace tooling.

Subcommands::

    python -m repro.trace summarize run.jsonl        # text report
    python -m repro.trace export run.jsonl -o run.chrome.json
    python -m repro.trace critpath run.jsonl         # critical path only
    python -m repro.trace metrics run.metrics.json   # metrics table
    python -m repro.trace demo -o demo               # generate demo artifacts

``summarize``/``export``/``critpath`` read JSONL traces produced by
``Machine(trace="jsonl:<path>")``; ``metrics`` reads a JSON snapshot
produced by ``MetricsRegistry.save``.  ``demo`` runs a small traced and
metered workload and writes ``<prefix>.jsonl``, ``<prefix>.chrome.json``
and ``<prefix>.metrics.json`` — the artifact set CI validates and
uploads.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List, Optional

from repro.tracing.critpath import critical_path
from repro.tracing.export import (
    chrome_trace,
    save_chrome_trace,
    text_report,
    validate_chrome_trace,
)
from repro.tracing.tracer import load_jsonl

__all__ = ["main"]


def _cmd_summarize(args: argparse.Namespace) -> int:
    tracer = load_jsonl(args.trace)
    snapshot = None
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
    print(text_report(tracer, metrics_snapshot=snapshot,
                      critpath=not args.no_critpath, top=args.top))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    tracer = load_jsonl(args.trace)
    if args.format == "text":
        report = text_report(tracer)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(report + "\n")
            print(f"wrote {args.output}")
        else:
            print(report)
        return 0
    if not args.output:
        print("export --format chrome requires -o/--output", file=sys.stderr)
        return 2
    doc = save_chrome_trace(tracer, args.output,
                            flows=not args.no_flows,
                            counters=not args.no_counters)
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"invalid: {p}", file=sys.stderr)
        return 1
    print(f"wrote {args.output}: {len(doc['traceEvents'])} events "
          f"({doc['otherData']['pes']} PEs) — open in ui.perfetto.dev")
    return 0


def _cmd_critpath(args: argparse.Namespace) -> int:
    tracer = load_jsonl(args.trace)
    print(critical_path(tracer).render(limit=args.limit))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.metrics.registry import render_metrics_report

    with open(args.snapshot, "r", encoding="utf-8") as fh:
        snapshot = json.load(fh)
    print(render_metrics_report(snapshot))
    return 0


def _demo_main() -> None:
    """The demo workload, launched SPMD on every PE: a multi-round token
    ring (point-to-point sends and scheduler turnaround on each PE) ending
    in a broadcast shutdown, plus a threaded phase on PE 0 so the trace
    contains Cth events."""
    from repro.core import api

    me, num = api.CmiMyPe(), api.CmiNumPes()
    rounds = 4

    def on_token(msg: Any) -> None:
        remaining = msg.payload
        api.CmiCharge(2e-6)  # a little modelled compute per hop
        if remaining > 0:
            nxt = (api.CmiMyPe() + 1) % api.CmiNumPes()
            api.CmiSyncSend(nxt, api.CmiNew(h_token, remaining - 1, size=64))
        else:
            api.CmiSyncBroadcastAll(api.CmiNew(h_done, None, size=16))

    def on_done(_msg: Any) -> None:
        api.CsdExitScheduler()

    h_token = api.CmiRegisterHandler(on_token, "demo.token")
    h_done = api.CmiRegisterHandler(on_done, "demo.done")

    if me == 0:
        # A short Cth phase interleaved with the ring: two threads on the
        # scheduler strategy, so their yields flow through the Csd queue
        # as generalized resume-messages.
        def worker(tag: Any) -> None:
            for _ in range(3):
                api.CmiCharge(1e-6)
                api.CthYield()

        for t in (api.CthCreate(worker, "a"), api.CthCreate(worker, "b")):
            api.CthUseSchedulerStrategy(t)
            api.CthAwaken(t)
        # Kick off the ring: rounds * num hops, then a broadcast stops
        # every PE's scheduler.
        api.CmiSyncSend(1 % num, api.CmiNew(h_token, rounds * num, size=64))
    api.CsdScheduler(-1)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.metrics.registry import MetricsRegistry
    from repro.sim.machine import Machine
    from repro.sim.models import MYRINET_FM

    prefix = args.output
    trace_path = f"{prefix}.jsonl"
    chrome_path = f"{prefix}.chrome.json"
    metrics_path = f"{prefix}.metrics.json"

    registry = MetricsRegistry()
    with Machine(args.pes, model=MYRINET_FM, trace=f"jsonl:{trace_path}",
                 metrics=registry) as machine:
        machine.launch(_demo_main)
        machine.run()
    registry.save(metrics_path)

    # Reload the on-disk trace (exercising the same path external tools
    # take) and derive the report + Chrome export from it.
    tracer = load_jsonl(trace_path)
    doc = save_chrome_trace(tracer, chrome_path)
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"invalid chrome trace: {p}", file=sys.stderr)
        return 1
    print(text_report(tracer, metrics_snapshot=registry.snapshot()))
    print()
    print(f"wrote {trace_path} ({len(tracer.events)} events), "
          f"{chrome_path} ({len(doc['traceEvents'])} chrome events), "
          f"{metrics_path} ({len(registry)} metrics)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Analyze, export and demo repro trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="text report over a JSONL trace")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--metrics", help="metrics snapshot JSON to append")
    p.add_argument("--top", type=int, default=12,
                   help="handler-profile rows to show")
    p.add_argument("--no-critpath", action="store_true",
                   help="skip critical-path extraction")
    p.set_defaults(fn=_cmd_summarize)

    p = sub.add_parser("export", help="convert to Chrome Trace Event JSON")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--format", choices=("chrome", "text"), default="chrome",
                   help="output format (default: chrome)")
    p.add_argument("-o", "--output",
                   help="output path (required for --format chrome; "
                        "load in ui.perfetto.dev)")
    p.add_argument("--no-flows", action="store_true",
                   help="omit message flow arrows")
    p.add_argument("--no-counters", action="store_true",
                   help="omit queue-depth counter tracks")
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser("critpath", help="extract the critical path")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--limit", type=int, default=40,
                   help="max segments to print")
    p.set_defaults(fn=_cmd_critpath)

    p = sub.add_parser("metrics", help="render a metrics snapshot JSON")
    p.add_argument("snapshot", help="metrics JSON written by MetricsRegistry.save")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser("demo", help="run a traced+metered demo workload")
    p.add_argument("-o", "--output", default="trace-demo",
                   help="artifact prefix (default: trace-demo)")
    p.add_argument("--pes", type=int, default=4, help="number of PEs")
    p.set_defaults(fn=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe mid-report; redirect
        # stdout to devnull so the interpreter's shutdown flush stays
        # quiet, and exit cleanly like any well-behaved filter.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
