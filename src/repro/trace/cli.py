"""Command-line trace tooling.

Subcommands::

    python -m repro.trace summarize run.jsonl        # text report
    python -m repro.trace export run.jsonl -o run.chrome.json
    python -m repro.trace critpath run.jsonl         # critical path only
    python -m repro.trace metrics run.metrics.json   # metrics table
    python -m repro.trace merge run.pe*.jsonl -o run.jsonl   # mp spools
    python -m repro.trace demo -o demo               # generate demo artifacts

``summarize``/``export``/``critpath`` read JSONL traces produced by
``Machine(trace="jsonl:<path>")``; ``metrics`` reads a JSON snapshot
produced by ``MetricsRegistry.save``.  ``merge`` recombines the per-PE
spool files an mp-backend run leaves next to its merged trace (useful to
re-merge after a crash, or with different clock/causality options; pass
``--clock <base>.clock.json`` to reuse the measured offsets).  ``demo``
runs a small traced and metered workload and writes ``<prefix>.jsonl``,
``<prefix>.chrome.json`` and ``<prefix>.metrics.json`` — the artifact
set CI validates and uploads; ``--machine-backend mp`` runs it on the
multiprocess layer end to end.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List, Optional

from repro.tracing.critpath import critical_path
from repro.tracing.export import (
    chrome_trace,
    save_chrome_trace,
    text_report,
    validate_chrome_trace,
)
from repro.tracing.tracer import load_jsonl

__all__ = ["main"]


def _cmd_summarize(args: argparse.Namespace) -> int:
    tracer = load_jsonl(args.trace)
    snapshot = None
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
    print(text_report(tracer, metrics_snapshot=snapshot,
                      critpath=not args.no_critpath, top=args.top))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    tracer = load_jsonl(args.trace)
    if args.format == "text":
        report = text_report(tracer)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(report + "\n")
            print(f"wrote {args.output}")
        else:
            print(report)
        return 0
    if not args.output:
        print("export --format chrome requires -o/--output", file=sys.stderr)
        return 2
    doc = save_chrome_trace(tracer, args.output,
                            flows=not args.no_flows,
                            counters=not args.no_counters)
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"invalid: {p}", file=sys.stderr)
        return 1
    print(f"wrote {args.output}: {len(doc['traceEvents'])} events "
          f"({doc['otherData']['pes']} PEs) — open in ui.perfetto.dev")
    return 0


def _cmd_critpath(args: argparse.Namespace) -> int:
    tracer = load_jsonl(args.trace)
    print(critical_path(tracer).render(limit=args.limit))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.metrics.registry import render_metrics_report

    with open(args.snapshot, "r", encoding="utf-8") as fh:
        snapshot = json.load(fh)
    print(render_metrics_report(snapshot))
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.tracing.merge import merge_spools, write_jsonl

    merged = merge_spools(
        args.spools,
        clock_file=args.clock,
        causal=not args.no_causal,
        rebase=not args.no_rebase,
    )
    count = write_jsonl(merged, args.output)
    pes = sorted({e.pe for e in merged.events})
    print(f"wrote {args.output}: {count} events from {len(args.spools)} "
          f"spools ({len(pes)} PEs)")
    return 0


def _demo_main(threads: bool = True) -> None:
    """The demo workload, launched SPMD on every PE: a multi-round token
    ring (point-to-point sends and scheduler turnaround on each PE) ending
    in a broadcast shutdown, plus — with ``threads`` — a threaded phase on
    PE 0 so the trace contains Cth events (Cth is simulator-only, so the
    mp demo runs the ring alone)."""
    from repro.core import api

    me, num = api.CmiMyPe(), api.CmiNumPes()
    rounds = 4

    def on_token(msg: Any) -> None:
        remaining = msg.payload
        api.CmiCharge(2e-6)  # a little modelled compute per hop
        if remaining > 0:
            nxt = (api.CmiMyPe() + 1) % api.CmiNumPes()
            api.CmiSyncSend(nxt, api.CmiNew(h_token, remaining - 1, size=64))
        else:
            api.CmiSyncBroadcastAll(api.CmiNew(h_done, None, size=16))

    def on_done(_msg: Any) -> None:
        api.CsdExitScheduler()

    h_token = api.CmiRegisterHandler(on_token, "demo.token")
    h_done = api.CmiRegisterHandler(on_done, "demo.done")

    if me == 0:
        if threads:
            # A short Cth phase interleaved with the ring: two threads on
            # the scheduler strategy, so their yields flow through the
            # Csd queue as generalized resume-messages.
            def worker(tag: Any) -> None:
                for _ in range(3):
                    api.CmiCharge(1e-6)
                    api.CthYield()

            for t in (api.CthCreate(worker, "a"), api.CthCreate(worker, "b")):
                api.CthUseSchedulerStrategy(t)
                api.CthAwaken(t)
        # Kick off the ring: rounds * num hops, then a broadcast stops
        # every PE's scheduler.
        api.CmiSyncSend(1 % num, api.CmiNew(h_token, rounds * num, size=64))
    api.CsdScheduler(-1)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.metrics.registry import save_snapshot
    from repro.sim.machine import Machine
    from repro.sim.models import MYRINET_FM

    prefix = args.output
    trace_path = f"{prefix}.jsonl"
    chrome_path = f"{prefix}.chrome.json"
    metrics_path = f"{prefix}.metrics.json"
    backend = args.machine_backend

    if backend == "mp":
        # The distributed path: per-worker registries and spools, merged
        # at shutdown (the trace file below IS the merged timeline; the
        # per-PE spools and clock sidecar stay next to it).  Cth threads
        # are simulator-only, so the demo runs the ring phase alone.
        machine = Machine(args.pes, machine_backend="mp",
                          trace=f"jsonl:{trace_path}", metrics=True,
                          watch=0.5 if args.watch else False)
        try:
            machine.launch(_demo_main, False)
            machine.run()
        finally:
            machine.shutdown()
        snapshot = machine.metrics_snapshot()
    else:
        from repro.metrics.registry import MetricsRegistry

        registry = MetricsRegistry()
        with Machine(args.pes, model=MYRINET_FM, trace=f"jsonl:{trace_path}",
                     metrics=registry) as machine:
            machine.launch(_demo_main)
            machine.run()
        snapshot = registry.snapshot()
    save_snapshot(snapshot, metrics_path)

    # Reload the on-disk trace (exercising the same path external tools
    # take) and derive the report + Chrome export from it.
    tracer = load_jsonl(trace_path)
    doc = save_chrome_trace(tracer, chrome_path)
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"invalid chrome trace: {p}", file=sys.stderr)
        return 1
    print(text_report(tracer, metrics_snapshot=snapshot))
    print()
    print(f"wrote {trace_path} ({len(tracer.events)} events), "
          f"{chrome_path} ({len(doc['traceEvents'])} chrome events), "
          f"{metrics_path} ({len(snapshot)} metrics)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Analyze, export and demo repro trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="text report over a JSONL trace")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--metrics", help="metrics snapshot JSON to append")
    p.add_argument("--top", type=int, default=12,
                   help="handler-profile rows to show")
    p.add_argument("--no-critpath", action="store_true",
                   help="skip critical-path extraction")
    p.set_defaults(fn=_cmd_summarize)

    p = sub.add_parser("export", help="convert to Chrome Trace Event JSON")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--format", choices=("chrome", "text"), default="chrome",
                   help="output format (default: chrome)")
    p.add_argument("-o", "--output",
                   help="output path (required for --format chrome; "
                        "load in ui.perfetto.dev)")
    p.add_argument("--no-flows", action="store_true",
                   help="omit message flow arrows")
    p.add_argument("--no-counters", action="store_true",
                   help="omit queue-depth counter tracks")
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser("critpath", help="extract the critical path")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--limit", type=int, default=40,
                   help="max segments to print")
    p.set_defaults(fn=_cmd_critpath)

    p = sub.add_parser("metrics", help="render a metrics snapshot JSON")
    p.add_argument("snapshot", help="metrics JSON written by MetricsRegistry.save")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser("merge", help="merge per-PE mp spool files")
    p.add_argument("spools", nargs="+",
                   help="per-PE JSONL spool files (e.g. run.pe*.jsonl)")
    p.add_argument("-o", "--output", required=True,
                   help="merged JSONL trace to write")
    p.add_argument("--clock",
                   help="clock-offset sidecar (<base>.clock.json) from "
                        "the run; omit for zero offsets")
    p.add_argument("--no-causal", action="store_true",
                   help="skip cause-before-effect clamping")
    p.add_argument("--no-rebase", action="store_true",
                   help="keep original timestamps (no shift to t=0)")
    p.set_defaults(fn=_cmd_merge)

    p = sub.add_parser("demo", help="run a traced+metered demo workload")
    p.add_argument("-o", "--output", default="trace-demo",
                   help="artifact prefix (default: trace-demo)")
    p.add_argument("--pes", type=int, default=4, help="number of PEs")
    p.add_argument("--machine-backend", choices=("sim", "mp"), default="sim",
                   help="machine layer to run the demo on (default: sim)")
    p.add_argument("--watch", action="store_true",
                   help="mp only: print a live per-PE health ticker to "
                        "stderr while the run is in flight")
    p.set_defaults(fn=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe mid-report; redirect
        # stdout to devnull so the interpreter's shutdown flush stays
        # quiet, and exit cleanly like any well-behaved filter.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
