"""Event tracing: the standard + self-describing trace format, trace
sinks, and Projections-lite analysis."""
