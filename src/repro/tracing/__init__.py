"""Event tracing: the standard + self-describing trace format, trace
sinks, Projections-lite analysis, critical-path extraction, and
exporters (Chrome Trace Event JSON, text reports)."""

from repro.tracing.analysis import (
    HandlerProfile,
    PeBreakdown,
    TraceSummary,
    handler_profiles,
    latency_stats,
    message_latencies,
    queue_depth_series,
    summarize,
    timeline,
    utilization,
)
from repro.tracing.critpath import CriticalPath, critical_path
from repro.tracing.events import SchemaDeclaration, TraceEvent
from repro.tracing.merge import (
    load_spool,
    merge_spools,
    merge_tracers,
    spool_path,
    write_jsonl,
)
from repro.tracing.export import (
    chrome_trace,
    save_chrome_trace,
    text_report,
    validate_chrome_trace,
)
from repro.tracing.tracer import (
    CountingTracer,
    JsonlTracer,
    LockingTracer,
    MemoryTracer,
    Tracer,
    load_jsonl,
    make_tracer,
)

__all__ = [
    "TraceEvent",
    "SchemaDeclaration",
    "Tracer",
    "MemoryTracer",
    "CountingTracer",
    "JsonlTracer",
    "LockingTracer",
    "make_tracer",
    "load_jsonl",
    "load_spool",
    "merge_tracers",
    "merge_spools",
    "write_jsonl",
    "spool_path",
    "TraceSummary",
    "HandlerProfile",
    "PeBreakdown",
    "summarize",
    "timeline",
    "handler_profiles",
    "message_latencies",
    "latency_stats",
    "queue_depth_series",
    "utilization",
    "CriticalPath",
    "critical_path",
    "chrome_trace",
    "save_chrome_trace",
    "validate_chrome_trace",
    "text_report",
]
