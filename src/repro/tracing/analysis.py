"""Projections-lite: summaries over recorded traces (paper section 3.3.2).

The paper motivates the trace standard with "performance feedback,
simulation and debugging tools".  This module is the minimal such tool:
given a :class:`~repro.tracing.tracer.MemoryTracer`, it derives per-PE
utilization profiles, message statistics, and a textual timeline — enough
to see where a run's time went without leaving the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tracing.events import TraceEvent
from repro.tracing.tracer import MemoryTracer

__all__ = ["PeProfile", "TraceSummary", "summarize", "timeline"]


@dataclass
class PeProfile:
    """Aggregates for one PE."""

    pe: int
    sends: int = 0
    broadcasts: int = 0
    receives: int = 0
    handlers: int = 0
    enqueues: int = 0
    dequeues: int = 0
    threads_created: int = 0
    objects_created: int = 0
    bytes_sent: int = 0
    #: total virtual time spent inside handlers.
    handler_time: float = 0.0
    # --- fault injection / reliable delivery --------------------------
    #: network faults injected on links *leaving* this PE, by action.
    faults: Dict[str, int] = field(default_factory=dict)
    #: reliability-protocol retransmissions initiated by this PE.
    retransmits: int = 0
    #: duplicates this PE's reliable layer suppressed.
    dups_suppressed: int = 0
    #: in-order messages the reliable layer released to the app here.
    rel_released: int = 0


@dataclass
class TraceSummary:
    """Whole-run aggregates derived from a memory trace."""

    profiles: Dict[int, PeProfile] = field(default_factory=dict)
    first_time: float = 0.0
    last_time: float = 0.0
    total_events: int = 0

    @property
    def span(self) -> float:
        """Virtual-time distance between the first and last event."""
        return self.last_time - self.first_time

    def profile(self, pe: int) -> PeProfile:
        """The (created-on-demand) per-PE profile for ``pe``."""
        return self.profiles.setdefault(pe, PeProfile(pe))

    def busiest_pe(self) -> Optional[int]:
        """The PE that ran the most handlers (``None`` if no events)."""
        if not self.profiles:
            return None
        return max(self.profiles.values(), key=lambda p: p.handlers).pe

    def fault_totals(self) -> Dict[str, int]:
        """Machine-wide fault and reliability counters derived from the
        trace: injected faults by action, plus the protocol's responses
        (retransmits, suppressed duplicates, released messages)."""
        totals: Dict[str, int] = {}
        for p in self.profiles.values():
            for action, n in p.faults.items():
                totals[action] = totals.get(action, 0) + n
            totals["retransmits"] = totals.get("retransmits", 0) + p.retransmits
            totals["dups_suppressed"] = (
                totals.get("dups_suppressed", 0) + p.dups_suppressed
            )
            totals["rel_released"] = totals.get("rel_released", 0) + p.rel_released
        return totals


def summarize(tracer: MemoryTracer) -> TraceSummary:
    """Fold a memory trace into per-PE profiles."""
    s = TraceSummary()
    open_handlers: Dict[int, float] = {}
    events = tracer.events
    s.total_events = len(events)
    if events:
        s.first_time = events[0].time
        s.last_time = max(e.time for e in events)
    for ev in events:
        p = s.profile(ev.pe)
        if ev.kind == "send":
            p.sends += 1
            p.bytes_sent += int(ev.fields.get("size", 0) or 0)
        elif ev.kind == "broadcast":
            p.broadcasts += 1
        elif ev.kind == "receive":
            p.receives += 1
        elif ev.kind == "handler_begin":
            p.handlers += 1
            open_handlers[ev.pe] = ev.time
        elif ev.kind == "handler_end":
            start = open_handlers.pop(ev.pe, None)
            if start is not None:
                p.handler_time += ev.time - start
        elif ev.kind == "enqueue":
            p.enqueues += 1
        elif ev.kind == "dequeue":
            p.dequeues += 1
        elif ev.kind == "thread_create":
            p.threads_created += 1
        elif ev.kind == "object_create":
            p.objects_created += 1
        elif ev.kind == "fault":
            action = str(ev.fields.get("action", "?"))
            p.faults[action] = p.faults.get(action, 0) + 1
        elif ev.kind == "rel_retransmit":
            p.retransmits += 1
        elif ev.kind == "rel_dup":
            p.dups_suppressed += 1
        elif ev.kind == "rel_release":
            p.rel_released += 1
    return s


def timeline(tracer: MemoryTracer, pe: Optional[int] = None,
             kinds: Optional[Tuple[str, ...]] = None,
             limit: int = 50) -> List[str]:
    """A human-readable event timeline (filtered, truncated)."""
    rows: List[str] = []
    for ev in tracer.events:
        if pe is not None and ev.pe != pe:
            continue
        if kinds is not None and ev.kind not in kinds:
            continue
        detail = " ".join(f"{k}={v}" for k, v in ev.fields.items())
        rows.append(f"{ev.time * 1e6:12.2f}us pe{ev.pe:<3} {ev.kind:<14} {detail}")
        if len(rows) >= limit:
            rows.append(f"... (truncated at {limit} events)")
            break
    return rows
