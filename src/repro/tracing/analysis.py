"""Projections-lite: summaries over recorded traces (paper section 3.3.2).

The paper motivates the trace standard with "performance feedback,
simulation and debugging tools".  This module is the minimal such tool:
given a :class:`~repro.tracing.tracer.MemoryTracer`, it derives per-PE
utilization profiles, message statistics, and a textual timeline — enough
to see where a run's time went without leaving the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tracing.events import TraceEvent
from repro.tracing.tracer import MemoryTracer

__all__ = [
    "PeProfile",
    "TraceSummary",
    "summarize",
    "timeline",
    "HandlerProfile",
    "PeBreakdown",
    "handler_profiles",
    "message_latencies",
    "latency_stats",
    "queue_depth_series",
    "utilization",
]


@dataclass
class PeProfile:
    """Aggregates for one PE."""

    pe: int
    sends: int = 0
    broadcasts: int = 0
    receives: int = 0
    handlers: int = 0
    enqueues: int = 0
    dequeues: int = 0
    threads_created: int = 0
    objects_created: int = 0
    bytes_sent: int = 0
    #: total virtual time spent inside handlers.
    handler_time: float = 0.0
    # --- fault injection / reliable delivery --------------------------
    #: network faults injected on links *leaving* this PE, by action.
    faults: Dict[str, int] = field(default_factory=dict)
    #: reliability-protocol retransmissions initiated by this PE.
    retransmits: int = 0
    #: duplicates this PE's reliable layer suppressed.
    dups_suppressed: int = 0
    #: in-order messages the reliable layer released to the app here.
    rel_released: int = 0


@dataclass
class TraceSummary:
    """Whole-run aggregates derived from a memory trace."""

    profiles: Dict[int, PeProfile] = field(default_factory=dict)
    first_time: float = 0.0
    last_time: float = 0.0
    total_events: int = 0

    @property
    def span(self) -> float:
        """Virtual-time distance between the first and last event."""
        return self.last_time - self.first_time

    def profile(self, pe: int) -> PeProfile:
        """The (created-on-demand) per-PE profile for ``pe``."""
        return self.profiles.setdefault(pe, PeProfile(pe))

    def busiest_pe(self) -> Optional[int]:
        """The PE that ran the most handlers (``None`` if no events)."""
        if not self.profiles:
            return None
        return max(self.profiles.values(), key=lambda p: p.handlers).pe

    def fault_totals(self) -> Dict[str, int]:
        """Machine-wide fault and reliability counters derived from the
        trace: injected faults by action, plus the protocol's responses
        (retransmits, suppressed duplicates, released messages)."""
        totals: Dict[str, int] = {}
        for p in self.profiles.values():
            for action, n in p.faults.items():
                totals[action] = totals.get(action, 0) + n
            totals["retransmits"] = totals.get("retransmits", 0) + p.retransmits
            totals["dups_suppressed"] = (
                totals.get("dups_suppressed", 0) + p.dups_suppressed
            )
            totals["rel_released"] = totals.get("rel_released", 0) + p.rel_released
        return totals


def summarize(tracer: MemoryTracer) -> TraceSummary:
    """Fold a memory trace into per-PE profiles."""
    s = TraceSummary()
    open_handlers: Dict[int, float] = {}
    events = tracer.events
    s.total_events = len(events)
    if events:
        s.first_time = events[0].time
        s.last_time = max(e.time for e in events)
    for ev in events:
        p = s.profile(ev.pe)
        if ev.kind == "send":
            p.sends += 1
            p.bytes_sent += int(ev.fields.get("size", 0) or 0)
        elif ev.kind == "broadcast":
            p.broadcasts += 1
        elif ev.kind == "receive":
            p.receives += 1
        elif ev.kind == "handler_begin":
            p.handlers += 1
            open_handlers[ev.pe] = ev.time
        elif ev.kind == "handler_end":
            start = open_handlers.pop(ev.pe, None)
            if start is not None:
                p.handler_time += ev.time - start
        elif ev.kind == "enqueue":
            p.enqueues += 1
        elif ev.kind == "dequeue":
            p.dequeues += 1
        elif ev.kind == "thread_create":
            p.threads_created += 1
        elif ev.kind == "object_create":
            p.objects_created += 1
        elif ev.kind == "fault":
            action = str(ev.fields.get("action", "?"))
            p.faults[action] = p.faults.get(action, 0) + 1
        elif ev.kind == "rel_retransmit":
            p.retransmits += 1
        elif ev.kind == "rel_dup":
            p.dups_suppressed += 1
        elif ev.kind == "rel_release":
            p.rel_released += 1
    return s


@dataclass
class HandlerProfile:
    """Virtual-time profile of one handler (by registered name)."""

    name: str
    count: int = 0
    total_time: float = 0.0
    max_time: float = 0.0

    @property
    def mean_time(self) -> float:
        """Exact mean per-invocation virtual time (0 when never run)."""
        return self.total_time / self.count if self.count else 0.0


@dataclass
class PeBreakdown:
    """Where one PE's wall of virtual time went.

    ``busy`` is time with at least one handler on the stack, ``idle`` is
    time parked in the scheduler's idle wait, and ``overhead`` is the
    remainder of the observed span — scheduling, queueing and
    communication costs outside any handler.
    """

    pe: int
    span: float = 0.0
    busy: float = 0.0
    idle: float = 0.0

    @property
    def overhead(self) -> float:
        """span - busy - idle (clamped at zero against rounding)."""
        return max(0.0, self.span - self.busy - self.idle)

    def fraction(self, part: float) -> float:
        """``part`` as a fraction of the span (0 when the span is 0)."""
        return part / self.span if self.span else 0.0


def handler_profiles(tracer: MemoryTracer) -> Dict[str, HandlerProfile]:
    """Per-handler virtual-time profiles, keyed by registered name.

    ``handler_begin``/``handler_end`` are paired with a per-PE stack, so
    nested invocations (a handler that runs the scheduler which runs
    another handler) are attributed *inclusively* to each open handler.
    """
    profiles: Dict[str, HandlerProfile] = {}
    stacks: Dict[int, List[Tuple[str, float]]] = {}
    for ev in tracer.events:
        if ev.kind == "handler_begin":
            name = str(ev.fields.get("name") or f"handler#{ev.fields.get('handler')}")
            stacks.setdefault(ev.pe, []).append((name, ev.time))
        elif ev.kind == "handler_end":
            stack = stacks.get(ev.pe)
            if not stack:
                continue
            name, start = stack.pop()
            p = profiles.setdefault(name, HandlerProfile(name))
            dt = ev.time - start
            p.count += 1
            p.total_time += dt
            if dt > p.max_time:
                p.max_time = dt
    return profiles


def message_latencies(tracer: MemoryTracer) -> List[float]:
    """Send-to-dispatch latency of every correlated message (seconds).

    Joins each ``send`` event to the ``handler_begin`` that consumed the
    same correlation id (``msg``); broadcasts contribute one latency per
    destination copy (their ``msg_ids`` list).  Messages without ids
    (tracing was on but the event predates correlation, or local
    enqueues) are skipped.
    """
    send_times: Dict[int, float] = {}
    out: List[float] = []
    for ev in tracer.events:
        if ev.kind == "send":
            mid = ev.fields.get("msg")
            if mid is not None:
                send_times[mid] = ev.time
        elif ev.kind == "broadcast":
            for mid in ev.fields.get("msg_ids", ()) or ():
                send_times[mid] = ev.time
        elif ev.kind == "handler_begin":
            mid = ev.fields.get("msg")
            if mid is not None:
                t0 = send_times.pop(mid, None)
                if t0 is not None:
                    out.append(ev.time - t0)
    return out


def latency_stats(latencies: List[float]) -> Dict[str, float]:
    """count/mean/min/max/p50/p90/p99 over a latency list (empty-safe)."""
    if not latencies:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0}
    xs = sorted(latencies)
    n = len(xs)

    def pct(q: float) -> float:
        return xs[min(n - 1, int(q * n))]

    return {
        "count": n,
        "mean": sum(xs) / n,
        "min": xs[0],
        "max": xs[-1],
        "p50": pct(0.50),
        "p90": pct(0.90),
        "p99": pct(0.99),
    }


def queue_depth_series(tracer: MemoryTracer) -> Dict[int, List[Tuple[float, int]]]:
    """Per-PE time series of Csd queue depth.

    Each ``enqueue``/``dequeue`` event carries the post-operation depth;
    the series is ``[(time, depth), ...]`` in event order.
    """
    series: Dict[int, List[Tuple[float, int]]] = {}
    for ev in tracer.events:
        if ev.kind in ("enqueue", "dequeue"):
            depth = ev.fields.get("depth")
            if depth is not None:
                series.setdefault(ev.pe, []).append((ev.time, int(depth)))
    return series


def utilization(tracer: MemoryTracer) -> Dict[int, PeBreakdown]:
    """Busy/idle/overhead breakdown per PE over the trace's span.

    Busy intervals are merged across handler nesting (depth 0 -> 1 opens,
    1 -> 0 closes); idle intervals come from the scheduler's strictly
    alternating ``idle_begin``/``idle_end`` pairs.
    """
    events = tracer.events
    if not events:
        return {}
    first = events[0].time
    last = max(e.time for e in events)
    out: Dict[int, PeBreakdown] = {}
    depth: Dict[int, int] = {}
    busy_since: Dict[int, float] = {}
    idle_since: Dict[int, float] = {}
    for ev in events:
        b = out.setdefault(ev.pe, PeBreakdown(ev.pe, span=last - first))
        if ev.kind == "handler_begin":
            d = depth.get(ev.pe, 0)
            if d == 0:
                busy_since[ev.pe] = ev.time
            depth[ev.pe] = d + 1
        elif ev.kind == "handler_end":
            d = depth.get(ev.pe, 0)
            if d == 1:
                b.busy += ev.time - busy_since.pop(ev.pe, ev.time)
            depth[ev.pe] = max(0, d - 1)
        elif ev.kind == "idle_begin":
            idle_since[ev.pe] = ev.time
        elif ev.kind == "idle_end":
            t0 = idle_since.pop(ev.pe, None)
            if t0 is not None:
                b.idle += ev.time - t0
    # Spans still open at trace end extend to the last timestamp.
    for pe, t0 in busy_since.items():
        out[pe].busy += last - t0
    for pe, t0 in idle_since.items():
        out[pe].idle += last - t0
    return out


def timeline(tracer: MemoryTracer, pe: Optional[int] = None,
             kinds: Optional[Tuple[str, ...]] = None,
             limit: int = 50) -> List[str]:
    """A human-readable event timeline (filtered, truncated)."""
    rows: List[str] = []
    for ev in tracer.events:
        if pe is not None and ev.pe != pe:
            continue
        if kinds is not None and ev.kind not in kinds:
            continue
        detail = " ".join(f"{k}={v}" for k, v in ev.fields.items())
        rows.append(f"{ev.time * 1e6:12.2f}us pe{ev.pe:<3} {ev.kind:<14} {detail}")
        if len(rows) >= limit:
            rows.append(f"... (truncated at {limit} events)")
            break
    return rows
