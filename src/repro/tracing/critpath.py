"""Critical-path extraction over the message dependency DAG.

A traced run induces a DAG: handler executions are nodes, and an
execution depends on (a) the previous execution on the same PE (the
processor is serial) and (b) the send of the message that triggered it
(the communication edge, joined via the ``msg`` correlation id stamped
by the CMI).  The *critical path* is the longest chain of such
dependencies ending at the last activity — the sequence of work and
communication that bounds the run's virtual makespan; everything off the
path had slack.

The extractor walks backward from the execution with the greatest end
time.  At each step the *binding* predecessor is whichever constraint
released the execution last: if the trigger message arrived after the
PE's previous execution finished, the PE sat waiting and the message
edge binds (hop to the sending execution, possibly on another PE);
otherwise the PE was the bottleneck and the same-PE edge binds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tracing.tracer import MemoryTracer

__all__ = ["Execution", "CritSegment", "CriticalPath", "critical_path"]


@dataclass
class Execution:
    """One handler invocation reconstructed from begin/end events."""

    pe: int
    begin: float
    end: float
    name: str
    #: correlation id of the message that triggered it (None for local
    #: dispatches that predate correlation, e.g. Ccd ticks).
    msg_id: Optional[int] = None
    #: index of the previous execution on the same PE, -1 for the first.
    prev_on_pe: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.begin


@dataclass
class CritSegment:
    """One step of the critical path (oldest first after extraction)."""

    #: ``"exec"`` — a handler ran; ``"msg"`` — a message was in flight;
    #: ``"wait"`` — the PE was the bottleneck between two executions.
    kind: str
    pe: int
    start: float
    end: float
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The extracted path plus aggregate accounting."""

    segments: List[CritSegment] = field(default_factory=list)

    @property
    def span(self) -> float:
        """Virtual time covered by the path."""
        if not self.segments:
            return 0.0
        return self.segments[-1].end - self.segments[0].start

    def total(self, kind: str) -> float:
        """Summed duration of one segment kind along the path."""
        return sum(s.duration for s in self.segments if s.kind == kind)

    def breakdown(self) -> Dict[str, float]:
        """Path time by segment kind (exec / msg / wait)."""
        return {k: self.total(k) for k in ("exec", "msg", "wait")}

    def pes(self) -> List[int]:
        """PEs visited, in path order, without repeats of runs."""
        out: List[int] = []
        for s in self.segments:
            if s.kind == "exec" and (not out or out[-1] != s.pe):
                out.append(s.pe)
        return out

    def render(self, limit: int = 40) -> str:
        """Human-readable listing (oldest segment first)."""
        if not self.segments:
            return "(empty trace: no handler executions found)"
        lines = [
            f"critical path: {self.span * 1e6:.2f}us over "
            f"{sum(1 for s in self.segments if s.kind == 'exec')} executions, "
            f"PEs {self.pes()}"
        ]
        bd = self.breakdown()
        lines.append(
            "  time in handlers {exec:.2f}us, in flight {msg:.2f}us, "
            "waiting on PE {wait:.2f}us".format(
                exec=bd["exec"] * 1e6, msg=bd["msg"] * 1e6, wait=bd["wait"] * 1e6
            )
        )
        shown = self.segments if len(self.segments) <= limit else self.segments[-limit:]
        if shown is not self.segments:
            lines.append(f"  ... ({len(self.segments) - limit} earlier segments)")
        for s in shown:
            lines.append(
                f"  {s.start * 1e6:12.2f}us +{s.duration * 1e6:9.2f}us "
                f"pe{s.pe:<3} {s.kind:<5} {s.label}"
            )
        return "\n".join(lines)


def _collect_executions(tracer: MemoryTracer) -> Tuple[List[Execution], Dict[int, Tuple[float, int]]]:
    """Pair begin/end events into executions and index sends.

    Returns the executions (in begin order) and a map of correlation id
    -> (send time, index of the sending execution or -1 when the send
    happened outside any handler, e.g. from an SPM main).
    """
    execs: List[Execution] = []
    open_stack: Dict[int, List[int]] = {}   # pe -> indices of open execs
    last_closed: Dict[int, int] = {}        # pe -> index of last finished exec
    sends: Dict[int, Tuple[float, int]] = {}
    for ev in tracer.events:
        if ev.kind == "handler_begin":
            execs.append(
                Execution(
                    pe=ev.pe,
                    begin=ev.time,
                    end=ev.time,
                    name=str(ev.fields.get("name")
                             or f"handler#{ev.fields.get('handler')}"),
                    msg_id=ev.fields.get("msg"),
                    prev_on_pe=last_closed.get(ev.pe, -1),
                )
            )
            open_stack.setdefault(ev.pe, []).append(len(execs) - 1)
        elif ev.kind == "handler_end":
            stack = open_stack.get(ev.pe)
            if stack:
                idx = stack.pop()
                execs[idx].end = ev.time
                last_closed[ev.pe] = idx
        elif ev.kind == "send":
            mid = ev.fields.get("msg")
            if mid is not None:
                stack = open_stack.get(ev.pe)
                sender = stack[-1] if stack else -1
                sends[mid] = (ev.time, sender)
        elif ev.kind == "broadcast":
            stack = open_stack.get(ev.pe)
            sender = stack[-1] if stack else -1
            for mid in ev.fields.get("msg_ids", ()) or ():
                sends[mid] = (ev.time, sender)
    return execs, sends


def critical_path(tracer: MemoryTracer) -> CriticalPath:
    """Extract the critical path from a memory trace.

    Requires a trace recorded with correlation ids (any trace from this
    runtime with tracing on); executions whose trigger cannot be joined
    fall back to same-PE ordering edges only.
    """
    execs, sends = _collect_executions(tracer)
    path = CriticalPath()
    if not execs:
        return path
    cur = max(range(len(execs)), key=lambda i: execs[i].end)
    #: the virtual time at which the path *leaves* the current execution:
    #: its end for the path's last node, the send instant when the path
    #: departed via a message edge — so exec segments are clipped to the
    #: on-path portion and exec + msg + wait sums exactly to the span.
    departure = execs[cur].end
    segments: List[CritSegment] = []
    while cur >= 0:
        e = execs[cur]
        segments.append(
            CritSegment("exec", e.pe, e.begin, max(e.begin, min(e.end, departure)),
                        e.name)
        )
        send = sends.get(e.msg_id) if e.msg_id is not None else None
        prev = execs[e.prev_on_pe] if e.prev_on_pe >= 0 else None
        # Which constraint released this execution last?
        msg_ready = send[0] if send is not None else float("-inf")
        pe_ready = prev.end if prev is not None else float("-inf")
        if send is not None and msg_ready >= pe_ready:
            send_time, sender = send
            segments.append(
                CritSegment("msg", e.pe, send_time, e.begin,
                            f"message in flight (msg {e.msg_id})")
            )
            cur = sender
            departure = send_time
        elif prev is not None:
            segments.append(
                CritSegment("wait", e.pe, prev.end, e.begin,
                            "PE busy/scheduling gap")
            )
            cur = e.prev_on_pe
            departure = prev.end
        else:
            break
    segments.reverse()
    path.segments = segments
    return path
