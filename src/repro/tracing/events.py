"""The event-trace format (paper section 3.3.2).

Converse defines "a standard for an event trace format [with] two parts: a
standard format which must be adhered to by all language implementors, and
an extensible self-describing format which may be language-specific".

* The **standard part** is the fixed set of event kinds in
  :data:`STANDARD_KINDS` — message send/receive/processing plus object and
  thread creation, exactly the events the paper says must be recorded.
* The **self-describing part** is the free-form ``fields`` dict carried by
  every event, plus per-language schemas announced with
  :class:`SchemaDeclaration` records, so a tool that has never heard of a
  language can still render its events (it knows the field names and
  types from the declaration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

__all__ = ["STANDARD_KINDS", "FAULT_KINDS", "FT_KINDS", "TraceEvent",
           "SchemaDeclaration"]

#: Event kinds every language implementation must emit (the "standard
#: format").  Runtime-internal kinds (enqueue/dequeue/...) are also listed
#: here since the core emits them uniformly for all languages.
STANDARD_KINDS = frozenset(
    {
        "send",            # a message left this PE
        "broadcast",       # a broadcast left this PE
        "receive",         # a message arrived at this PE (network delivery)
        "handler_begin",   # message processing started
        "handler_end",     # message processing finished
        "enqueue",         # message entered the Csd queue
        "dequeue",         # message left the Csd queue
        "object_create",   # a concurrent object (e.g. chare) was created
        "thread_create",   # a Cth thread was created
        "thread_resume",
        "thread_suspend",
        "idle_begin",
        "idle_end",
        "converse_exit",
        "user",            # language-specific event (self-describing part)
    }
)

#: Event kinds emitted by the fault-injection network and the CMI
#: reliable-delivery protocol.  Not part of the paper's mandatory
#: standard format (``TraceEvent.standard`` is False for them) but
#: emitted uniformly by the core so tools can audit hostile-network runs:
#: every injected fault and every protocol reaction is in the trace.
FAULT_KINDS = frozenset(
    {
        "fault",           # the network injected a fault (fields: action, dst, size)
        "rel_data",        # a reliable data packet was first transmitted
        "rel_retransmit",  # retransmission after an ack timeout
        "rel_giveup",      # retry cap exhausted (a RetryExhaustedError follows)
        "rel_release",     # an in-order message was released to the app
        "rel_dup",         # a duplicate data packet was suppressed
        "rel_hold",        # an out-of-order packet entered the reassembly buffer
        "rel_corrupt",     # a corrupted packet was detected and discarded
        "rel_ack",         # an acknowledgement arrived (seq, stale)
        "rel_ack_out",     # an acknowledgement was transmitted (dest, seq)
        "rel_paused_drop", # an arrival swallowed by a paused (recovering) receiver
    }
)

#: Event kinds emitted by the fault-tolerance layer (``Machine(ft=...)``)
#: and the machine's crash injector.  Like :data:`FAULT_KINDS` they sit
#: outside the paper's standard format but are emitted uniformly, so a
#: crashy run's trace tells the whole story: the crash, the detection
#: verdicts, every checkpoint, and the recovery that closed the episode.
FT_KINDS = frozenset(
    {
        "ft_checkpoint",   # state snapshot shipped to the buddy (epoch, bytes, reason)
        "ft_failure",      # crash / suspect / down / give-up evidence (phase, target)
        "ft_recover",      # a restarted PE rejoined (restored, latency)
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: where, when, what, and open-ended details."""

    pe: int
    time: float
    kind: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    @property
    def standard(self) -> bool:
        """True when this kind belongs to the mandatory standard format."""
        return self.kind in STANDARD_KINDS

    def as_dict(self) -> Dict[str, Any]:
        """A plain-dict rendering (JSON-friendly)."""
        return {
            "pe": self.pe,
            "time": self.time,
            "kind": self.kind,
            **dict(self.fields),
        }


@dataclass(frozen=True)
class SchemaDeclaration:
    """A language's announcement of its self-describing event schema.

    ``fields`` maps field name to a type tag (``"int"``, ``"float"``,
    ``"str"``).  Tools consume declarations before any ``user`` events of
    that language, so traces remain interpretable without per-language
    code in the tool.
    """

    language: str
    event_name: str
    fields: Tuple[Tuple[str, str], ...]

    def validate(self, payload: Mapping[str, Any]) -> bool:
        """Check a user event's fields against this schema."""
        types = {"int": int, "float": (int, float), "str": str}
        for name, tag in self.fields:
            if name not in payload:
                return False
            if not isinstance(payload[name], types[tag]):  # type: ignore[arg-type]
                return False
        return True
