"""Trace exporters: Chrome Trace Event JSON (Perfetto-loadable) and a
plain-text run report.

The Chrome format (``chrome://tracing`` / https://ui.perfetto.dev) is a
JSON object with a ``traceEvents`` list.  The mapping chosen here:

* one *process* per PE (``pid`` = PE number, named via ``M`` metadata
  events), with track 0 (``tid`` 0) carrying the scheduler's view:
  handler executions and idle spans as complete (``X``) events;
* one extra track per Cth thread (``tid`` = thread id) built from
  ``thread_resume``/``thread_suspend`` pairs;
* message flow arrows (``s``/``f`` events) joining each ``send`` to the
  ``handler_begin`` that consumed the same correlation id;
* Csd queue depth as counter (``C``) events.

Timestamps are microseconds of virtual time (the format's native unit).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.tracing.analysis import (
    handler_profiles,
    latency_stats,
    message_latencies,
    summarize,
    utilization,
)
from repro.tracing.critpath import critical_path
from repro.tracing.tracer import MemoryTracer

__all__ = ["chrome_trace", "save_chrome_trace", "validate_chrome_trace",
           "text_report"]


def _us(t: float) -> float:
    return t * 1e6


def chrome_trace(tracer: MemoryTracer, flows: bool = True,
                 counters: bool = True) -> Dict[str, Any]:
    """Convert a memory trace to a Chrome Trace Event document (a dict;
    dump with :func:`save_chrome_trace`)."""
    out: List[Dict[str, Any]] = []
    pes = sorted({e.pe for e in tracer.events})
    for pe in pes:
        out.append({"ph": "M", "name": "process_name", "pid": pe, "tid": 0,
                    "args": {"name": f"PE {pe}"}})
        out.append({"ph": "M", "name": "thread_name", "pid": pe, "tid": 0,
                    "args": {"name": "scheduler"}})

    open_handlers: Dict[int, List[Dict[str, Any]]] = {}
    open_idle: Dict[int, float] = {}
    thread_running: Dict[tuple, float] = {}   # (pe, thread id) -> resume time
    named_threads: set = set()
    send_flows: Dict[int, Dict[str, Any]] = {}

    for ev in tracer.events:
        kind = ev.kind
        if kind == "handler_begin":
            open_handlers.setdefault(ev.pe, []).append({
                "name": str(ev.fields.get("name")
                            or f"handler#{ev.fields.get('handler')}"),
                "ts": ev.time,
                "args": {k: v for k, v in ev.fields.items() if v is not None},
            })
            mid = ev.fields.get("msg")
            if flows and mid is not None and mid in send_flows:
                src = send_flows.pop(mid)
                out.append(src)
                out.append({"ph": "f", "bp": "e", "id": mid, "cat": "msg",
                            "name": "msg", "pid": ev.pe, "tid": 0,
                            "ts": _us(ev.time)})
        elif kind == "handler_end":
            stack = open_handlers.get(ev.pe)
            if stack:
                h = stack.pop()
                out.append({"ph": "X", "cat": "handler", "name": h["name"],
                            "pid": ev.pe, "tid": 0, "ts": _us(h["ts"]),
                            "dur": _us(ev.time - h["ts"]), "args": h["args"]})
        elif kind == "idle_begin":
            open_idle[ev.pe] = ev.time
        elif kind == "idle_end":
            t0 = open_idle.pop(ev.pe, None)
            if t0 is not None:
                out.append({"ph": "X", "cat": "idle", "name": "idle",
                            "pid": ev.pe, "tid": 0, "ts": _us(t0),
                            "dur": _us(ev.time - t0), "args": {}})
        elif kind == "send":
            mid = ev.fields.get("msg")
            if flows and mid is not None:
                send_flows[mid] = {"ph": "s", "id": mid, "cat": "msg",
                                   "name": "msg", "pid": ev.pe, "tid": 0,
                                   "ts": _us(ev.time)}
        elif kind == "broadcast":
            if flows:
                for mid in ev.fields.get("msg_ids", ()) or ():
                    send_flows[mid] = {"ph": "s", "id": mid, "cat": "msg",
                                       "name": "bcast", "pid": ev.pe, "tid": 0,
                                       "ts": _us(ev.time)}
        elif kind == "thread_resume":
            tid = ev.fields.get("thread")
            if tid is not None:
                thread_running[(ev.pe, tid)] = ev.time
                if (ev.pe, tid) not in named_threads:
                    named_threads.add((ev.pe, tid))
                    out.append({"ph": "M", "name": "thread_name",
                                "pid": ev.pe, "tid": tid,
                                "args": {"name": f"cth{tid}"}})
        elif kind == "thread_suspend":
            tid = ev.fields.get("thread")
            t0 = thread_running.pop((ev.pe, tid), None)
            if t0 is not None:
                out.append({"ph": "X", "cat": "thread", "name": f"cth{tid}",
                            "pid": ev.pe, "tid": tid, "ts": _us(t0),
                            "dur": _us(ev.time - t0), "args": {}})
        elif kind in ("enqueue", "dequeue"):
            depth = ev.fields.get("depth")
            if counters and depth is not None:
                out.append({"ph": "C", "name": "queue_depth", "pid": ev.pe,
                            "tid": 0, "ts": _us(ev.time),
                            "args": {"depth": depth}})
    return {"traceEvents": out, "displayTimeUnit": "ms",
            "otherData": {"source": "repro.tracing.export",
                          "pes": len(pes)}}


def save_chrome_trace(tracer: MemoryTracer, path: Any, **kwargs: Any) -> Dict[str, Any]:
    """Write :func:`chrome_trace` output to ``path``; returns the doc."""
    doc = chrome_trace(tracer, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc


def validate_chrome_trace(doc: Any) -> List[str]:
    """Structural validation of a Chrome Trace document.

    Returns a list of problems (empty when the document is well formed):
    the shape CI asserts on before uploading the artifact.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a dict, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    open_flows: Dict[Any, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not a dict")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "s", "f", "C", "B", "E", "i"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if "pid" not in ev:
            problems.append(f"event {i}: missing pid")
        if ph != "M" and not isinstance(ev.get("ts", 0), (int, float)):
            problems.append(f"event {i}: non-numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X event needs dur >= 0, got {dur!r}")
        if ph in ("s", "f"):
            if "id" not in ev:
                problems.append(f"event {i}: flow event missing id")
            elif ph == "s":
                open_flows[ev["id"]] = i
            else:
                if ev["id"] not in open_flows:
                    problems.append(
                        f"event {i}: flow finish id {ev['id']!r} without start"
                    )
        if ph == "M" and ev.get("name") not in ("process_name", "thread_name",
                                                "process_labels",
                                                "process_sort_index",
                                                "thread_sort_index"):
            problems.append(f"event {i}: unknown metadata {ev.get('name')!r}")
    return problems


def text_report(tracer: MemoryTracer,
                metrics_snapshot: Optional[Dict[str, Any]] = None,
                critpath: bool = True, top: int = 12) -> str:
    """A plain-text report over a trace: per-PE summary, busy/idle
    breakdown, handler profiles, message latency, and (optionally) the
    critical path.  ``metrics_snapshot`` appends the metrics table."""
    s = summarize(tracer)
    lines: List[str] = []
    lines.append(
        f"trace: {s.total_events} events, {len(s.profiles)} PEs, "
        f"span {s.span * 1e6:.2f}us"
    )
    util = utilization(tracer)
    lines.append("")
    lines.append(f"{'pe':>4} {'sends':>7} {'recvs':>7} {'handlers':>9} "
                 f"{'busy%':>7} {'idle%':>7} {'ovhd%':>7}")
    for pe in sorted(s.profiles):
        p = s.profiles[pe]
        b = util.get(pe)
        busy = b.fraction(b.busy) * 100 if b else 0.0
        idle = b.fraction(b.idle) * 100 if b else 0.0
        ovhd = b.fraction(b.overhead) * 100 if b else 0.0
        lines.append(
            f"{pe:>4} {p.sends:>7} {p.receives:>7} {p.handlers:>9} "
            f"{busy:>6.1f}% {idle:>6.1f}% {ovhd:>6.1f}%"
        )
    profiles = handler_profiles(tracer)
    if profiles:
        lines.append("")
        lines.append(f"{'handler':<32} {'count':>7} {'total us':>10} "
                     f"{'mean us':>9} {'max us':>9}")
        ranked = sorted(profiles.values(), key=lambda h: -h.total_time)
        for h in ranked[:top]:
            lines.append(
                f"{h.name:<32} {h.count:>7} {h.total_time * 1e6:>10.2f} "
                f"{h.mean_time * 1e6:>9.2f} {h.max_time * 1e6:>9.2f}"
            )
        if len(ranked) > top:
            lines.append(f"... ({len(ranked) - top} more handlers)")
    lat = latency_stats(message_latencies(tracer))
    if lat["count"]:
        lines.append("")
        lines.append(
            "message latency (send -> dispatch): "
            f"n={lat['count']} mean={lat['mean'] * 1e6:.2f}us "
            f"p50={lat['p50'] * 1e6:.2f}us p90={lat['p90'] * 1e6:.2f}us "
            f"p99={lat['p99'] * 1e6:.2f}us max={lat['max'] * 1e6:.2f}us"
        )
    if critpath:
        lines.append("")
        lines.append(critical_path(tracer).render())
    if metrics_snapshot:
        from repro.metrics.registry import render_metrics_report

        lines.append("")
        lines.append(render_metrics_report(metrics_snapshot))
    return "\n".join(lines)
