"""Merging per-PE trace spools into one machine-wide timeline.

The mp machine layer cannot stream every worker's events through one
tracer: workers are separate OS processes, and shipping each event over
the hub socket would perturb the very behaviour being traced.  Instead
each worker spools its own events locally (one JSONL file per PE, on the
worker's monotonic clock) and the hub merges the spools *after* the run.

Merging has three concerns, each handled here:

* **Clock alignment** — every worker clock is a private
  ``time.monotonic()`` origin.  The hub estimates each worker's offset to
  the hub clock with echo probes at startup and shutdown (see
  ``MpMachine``); :func:`merge_tracers` applies ``hub = worker + offset``
  per PE so all events land on one timeline.
* **Causal consistency** — offset estimation has error on the order of a
  socket round trip, so a receive can appear *before* its send.  The
  analysis and critical-path layers assume causal order (a message's
  latency must be >= 0), so the merge clamps every cross-PE effect to be
  no earlier than its cause, using the ``msg`` correlation ids the CMI
  stamps on traced sends, then restores per-PE monotonicity and iterates
  to a fixpoint.
* **Presentation** — events are stably sorted by adjusted time and
  rebased so the merged trace starts at zero, matching what a
  single-machine tracer would have produced; schema declarations are
  deduplicated across PEs.

The output is a plain :class:`~repro.tracing.tracer.MemoryTracer`, so the
*unchanged* ``summarize``/``critical_path``/``chrome_trace`` pipelines —
and the ``repro.trace`` CLI — consume merged mp traces exactly as they
consume simulator traces.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.tracing.events import SchemaDeclaration, TraceEvent
from repro.tracing.tracer import MemoryTracer

__all__ = [
    "load_spool",
    "merge_tracers",
    "merge_spools",
    "write_jsonl",
    "load_clock_file",
    "save_clock_file",
    "spool_path",
]

#: cap on causal-fixup sweeps.  Each sweep only moves events later, and
#: chains longer than this are pathological (offsets off by >> RTT); the
#: merge still terminates with a monotone, near-causal trace.
_CAUSAL_SWEEPS = 8

# -- spool loading ------------------------------------------------------


def load_spool(path: Any, strict: bool = False) -> MemoryTracer:
    """Load one per-PE JSONL spool, tolerating a torn final line.

    A worker that was killed mid-write (timeout, crash teardown) leaves a
    truncated last line; post-mortem merging must still recover every
    complete event, so a malformed *final* line is dropped silently.
    Malformed lines elsewhere — or any malformed line with
    ``strict=True`` — raise ``ValueError`` as :func:`load_jsonl` would.
    """
    tracer = MemoryTracer()
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        last = lineno == len(lines)
        try:
            payload = json.loads(stripped)
            kind = payload.pop("kind")
            if kind == "__schema__":
                tracer.schemas.append(
                    SchemaDeclaration(
                        language=payload.get("language", "?"),
                        event_name=payload.get("event", "?"),
                        fields=tuple(
                            (str(n), str(t)) for n, t in payload.get("fields", [])
                        ),
                    )
                )
                continue
            event = TraceEvent(
                int(payload.pop("pe")), float(payload.pop("time")),
                str(kind), payload,
            )
        except (ValueError, KeyError, TypeError) as exc:
            if last and not strict:
                break  # torn tail from a killed worker: salvage the rest
            raise ValueError(f"{path}:{lineno}: bad trace line: {exc}") from None
        tracer.events.append(event)
    return tracer


# -- clock files --------------------------------------------------------


def save_clock_file(path: Any, offsets: Mapping[int, float]) -> None:
    """Persist per-PE clock offsets next to the spools, so a trace can be
    merged (or re-merged with different options) after the run ended."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({str(pe): off for pe, off in offsets.items()},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_clock_file(path: Any) -> Dict[int, float]:
    """Read a clock-offset sidecar written by :func:`save_clock_file`."""
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    return {int(pe): float(off) for pe, off in raw.items()}


# -- the merge ----------------------------------------------------------


def _send_times(events: Sequence[TraceEvent]) -> Dict[Any, Tuple[float, int]]:
    """Map msg correlation id -> (send time, sender pe), from both
    point-to-point sends and broadcast fanouts."""
    out: Dict[Any, Tuple[float, int]] = {}
    for ev in events:
        if ev.kind == "send":
            mid = ev.fields.get("msg")
            if mid is not None:
                out[mid] = (ev.time, ev.pe)
        elif ev.kind == "broadcast":
            for mid in ev.fields.get("msg_ids", ()) or ():
                out[mid] = (ev.time, ev.pe)
            mids = ev.fields.get("msg")
            if isinstance(mids, dict):  # {dst: id} map form
                for mid in mids.values():
                    out[mid] = (ev.time, ev.pe)
    return out


def _causal_sweep(events: List[TraceEvent]) -> Tuple[List[TraceEvent], bool]:
    """One pass of cause-before-effect clamping plus per-PE monotone
    repair.  Returns (possibly replaced events, whether anything moved)."""
    sends = _send_times(events)
    moved = False
    out: List[TraceEvent] = []
    for ev in events:
        t = ev.time
        mid = ev.fields.get("msg")
        if mid is not None and ev.kind not in ("send", "broadcast"):
            src = sends.get(mid)
            if src is not None and src[1] != ev.pe and t < src[0]:
                t = src[0]
        out.append(ev if t == ev.time else
                   TraceEvent(ev.pe, t, ev.kind, ev.fields))
        moved = moved or t != ev.time
    # Per-PE monotone repair: clamping one event forward must drag the
    # rest of that PE's (originally ordered) stream with it, or paired
    # begin/end events would invert.
    last: Dict[int, float] = {}
    for i, ev in enumerate(out):
        floor = last.get(ev.pe)
        if floor is not None and ev.time < floor:
            out[i] = TraceEvent(ev.pe, floor, ev.kind, ev.fields)
            moved = True
        last[ev.pe] = out[i].time
    return out, moved


def merge_tracers(
    tracers: Iterable[MemoryTracer],
    offsets: Optional[Mapping[int, float]] = None,
    causal: bool = True,
    rebase: bool = True,
) -> MemoryTracer:
    """Merge per-PE tracers into one machine-wide :class:`MemoryTracer`.

    ``offsets`` maps PE -> seconds to *add* to that PE's timestamps to
    land on the shared (hub) clock; missing PEs get offset 0.  With
    ``causal`` the cross-PE cause-before-effect clamp described in the
    module docstring runs to a fixpoint (bounded sweeps).  With
    ``rebase`` the merged timeline is shifted so its earliest event is at
    time 0, like a fresh single-machine trace.

    Events from different PEs are interleaved by a stable sort on
    adjusted time, so each PE's own event order — which *is* trustworthy,
    it came from one monotonic clock — is never permuted.
    """
    offsets = offsets or {}
    events: List[TraceEvent] = []
    schemas: List[SchemaDeclaration] = []
    seen_schemas: set = set()
    for tracer in tracers:
        for ev in tracer.events:
            off = offsets.get(ev.pe, 0.0)
            events.append(
                ev if off == 0.0 else
                TraceEvent(ev.pe, ev.time + off, ev.kind, ev.fields)
            )
        for schema in tracer.schemas:
            key = (schema.language, schema.event_name, schema.fields)
            if key not in seen_schemas:
                seen_schemas.add(key)
                schemas.append(schema)
    # Stable sort keyed on time only: ties keep per-tracer (per-PE) order.
    events.sort(key=lambda ev: ev.time)
    if causal:
        for _ in range(_CAUSAL_SWEEPS):
            events, moved = _causal_sweep(events)
            if not moved:
                break
            events.sort(key=lambda ev: ev.time)
    if rebase and events:
        t0 = events[0].time
        if t0 != 0.0:
            events = [TraceEvent(ev.pe, ev.time - t0, ev.kind, ev.fields)
                      for ev in events]
    merged = MemoryTracer()
    merged.events = events
    merged.schemas = schemas
    return merged


def merge_spools(
    paths: Sequence[Any],
    offsets: Optional[Mapping[int, float]] = None,
    clock_file: Optional[Any] = None,
    causal: bool = True,
    rebase: bool = True,
) -> MemoryTracer:
    """Load per-PE spool files and merge them (the CLI entry point).

    ``clock_file`` names a :func:`save_clock_file` sidecar; explicit
    ``offsets`` win over it when both are given.
    """
    if offsets is None and clock_file is not None:
        offsets = load_clock_file(clock_file)
    return merge_tracers([load_spool(p) for p in paths],
                         offsets=offsets, causal=causal, rebase=rebase)


def write_jsonl(tracer: MemoryTracer, path: Any) -> int:
    """Write a merged tracer back out as a single JSONL trace file (the
    same format :class:`~repro.tracing.tracer.JsonlTracer` streams, so
    ``load_jsonl`` and the CLI round-trip it).  Returns the event count."""
    with open(path, "w", encoding="utf-8") as fh:
        for schema in tracer.schemas:
            fh.write(json.dumps({
                "kind": "__schema__",
                "language": schema.language,
                "event": schema.event_name,
                "fields": [list(f) for f in schema.fields],
            }) + "\n")
        for ev in tracer.events:
            fh.write(json.dumps(ev.as_dict(), default=str) + "\n")
    return len(tracer.events)


def spool_path(base: Any, pe: int) -> str:
    """The per-PE spool filename convention: ``trace.jsonl`` spools to
    ``trace.pe0.jsonl``, ``trace.pe1.jsonl``, ...  Shared between the mp
    machine layer (writing) and the CLI (globbing)."""
    root, ext = os.path.splitext(os.fspath(base))
    return f"{root}.pe{pe}{ext or '.jsonl'}"
