"""Trace sinks ("many variants of this module are provided, depending on
the sophistication of the tracing desired" — paper section 3.3.2).

Three variants:

* no tracer (the machine's ``tracer`` is ``None``) — zero overhead, the
  need-based-cost default;
* :class:`MemoryTracer` — keeps events in RAM for analysis in tests;
* :class:`JsonlTracer` — streams events as JSON lines for external tools.

A :class:`CountingTracer` is also provided for cheap per-kind statistics
without storing events.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, Any, Dict, List, Mapping, Optional

from repro.tracing.events import SchemaDeclaration, TraceEvent

__all__ = ["Tracer", "MemoryTracer", "CountingTracer", "JsonlTracer", "make_tracer"]


class Tracer:
    """Base sink.  ``record`` must be cheap: it runs on every event."""

    def __init__(self) -> None:
        self.schemas: List[SchemaDeclaration] = []

    def record(self, pe: int, time: float, kind: str, fields: Mapping[str, Any]) -> None:
        """Record one event (hot path: called on every traced event)."""
        raise NotImplementedError

    def declare_schema(self, schema: SchemaDeclaration) -> None:
        """Register a language's self-describing event schema."""
        self.schemas.append(schema)

    def close(self) -> None:
        """Flush/close any backing resources."""


class MemoryTracer(Tracer):
    """Store every event; the analysis module consumes these."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[TraceEvent] = []

    def record(self, pe: int, time: float, kind: str, fields: Mapping[str, Any]) -> None:
        """Record one event (hot path: called on every traced event)."""
        self.events.append(TraceEvent(pe, time, kind, dict(fields)))

    def by_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def by_pe(self, pe: int) -> List[TraceEvent]:
        """All recorded events of one PE, in order."""
        return [e for e in self.events if e.pe == pe]

    def __len__(self) -> int:
        return len(self.events)


class CountingTracer(Tracer):
    """Only count events per (pe, kind); no storage growth per event."""

    def __init__(self) -> None:
        super().__init__()
        self.counts: Counter = Counter()

    def record(self, pe: int, time: float, kind: str, fields: Mapping[str, Any]) -> None:
        """Record one event (hot path: called on every traced event)."""
        self.counts[(pe, kind)] += 1

    def total(self, kind: Optional[str] = None) -> int:
        """Total events counted, optionally restricted to one kind."""
        if kind is None:
            return sum(self.counts.values())
        return sum(v for (pe, k), v in self.counts.items() if k == kind)


class JsonlTracer(Tracer):
    """Stream events as JSON lines to a file-like object or path."""

    def __init__(self, target: Any) -> None:
        super().__init__()
        if hasattr(target, "write"):
            self._fh: IO[str] = target
            self._owns = False
        else:
            self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
        self.count = 0

    def record(self, pe: int, time: float, kind: str, fields: Mapping[str, Any]) -> None:
        """Record one event (hot path: called on every traced event)."""
        payload: Dict[str, Any] = {"pe": pe, "time": time, "kind": kind}
        payload.update(fields)
        self._fh.write(json.dumps(payload, default=str) + "\n")
        self.count += 1

    def declare_schema(self, schema: SchemaDeclaration) -> None:
        """Register a language's self-describing event schema."""
        super().declare_schema(schema)
        self._fh.write(
            json.dumps(
                {
                    "kind": "__schema__",
                    "language": schema.language,
                    "event": schema.event_name,
                    "fields": list(schema.fields),
                }
            )
            + "\n"
        )

    def close(self) -> None:
        """Flush and release any backing resources."""
        self._fh.flush()
        if self._owns:
            self._fh.close()


def make_tracer(spec: Any) -> Optional[Tracer]:
    """Build a tracer from a machine-constructor argument.

    ``False``/``None`` -> no tracing; ``True``/``"memory"`` -> memory;
    ``"count"`` -> counting; a path or file object -> JSONL; an existing
    :class:`Tracer` passes through.
    """
    if spec in (None, False):
        return None
    if spec is True or spec == "memory":
        return MemoryTracer()
    if spec == "count":
        return CountingTracer()
    if isinstance(spec, Tracer):
        return spec
    return JsonlTracer(spec)
