"""Trace sinks ("many variants of this module are provided, depending on
the sophistication of the tracing desired" — paper section 3.3.2).

Three variants:

* no tracer (the machine's ``tracer`` is ``None``) — zero overhead, the
  need-based-cost default;
* :class:`MemoryTracer` — keeps events in RAM for analysis in tests;
* :class:`JsonlTracer` — streams events as JSON lines for external tools.

A :class:`CountingTracer` is also provided for cheap per-kind statistics
without storing events.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import IO, Any, Dict, List, Mapping, Optional

from repro.tracing.events import SchemaDeclaration, TraceEvent

__all__ = [
    "Tracer",
    "MemoryTracer",
    "CountingTracer",
    "JsonlTracer",
    "LockingTracer",
    "make_tracer",
    "load_jsonl",
]


class Tracer:
    """Base sink.  ``record`` must be cheap: it runs on every event.

    Every tracer is a context manager: ``with JsonlTracer(path) as t:``
    guarantees the tail of a buffered trace is flushed even when the
    block raises (the :class:`~repro.sim.machine.Machine` teardown path
    calls :meth:`close` too, for tracers it was handed)."""

    def __init__(self) -> None:
        self.schemas: List[SchemaDeclaration] = []

    def record(self, pe: int, time: float, kind: str, fields: Mapping[str, Any]) -> None:
        """Record one event (hot path: called on every traced event)."""
        raise NotImplementedError

    def declare_schema(self, schema: SchemaDeclaration) -> None:
        """Register a language's self-describing event schema."""
        self.schemas.append(schema)

    def close(self) -> None:
        """Flush/close any backing resources."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class MemoryTracer(Tracer):
    """Store every event; the analysis module consumes these."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[TraceEvent] = []

    def record(self, pe: int, time: float, kind: str, fields: Mapping[str, Any]) -> None:
        """Record one event (hot path: called on every traced event)."""
        self.events.append(TraceEvent(pe, time, kind, dict(fields)))

    def by_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def by_pe(self, pe: int) -> List[TraceEvent]:
        """All recorded events of one PE, in order."""
        return [e for e in self.events if e.pe == pe]

    def __len__(self) -> int:
        return len(self.events)


class CountingTracer(Tracer):
    """Only count events per (pe, kind); no storage growth per event."""

    def __init__(self) -> None:
        super().__init__()
        self.counts: Counter = Counter()

    def record(self, pe: int, time: float, kind: str, fields: Mapping[str, Any]) -> None:
        """Record one event (hot path: called on every traced event)."""
        self.counts[(pe, kind)] += 1

    def total(self, kind: Optional[str] = None) -> int:
        """Total events counted, optionally restricted to one kind."""
        if kind is None:
            return sum(self.counts.values())
        return sum(v for (pe, k), v in self.counts.items() if k == kind)


class JsonlTracer(Tracer):
    """Stream events as JSON lines to a file-like object or path."""

    def __init__(self, target: Any) -> None:
        super().__init__()
        if hasattr(target, "write"):
            self._fh: IO[str] = target
            self._owns = False
        else:
            self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
        self.count = 0

    def record(self, pe: int, time: float, kind: str, fields: Mapping[str, Any]) -> None:
        """Record one event (hot path: called on every traced event)."""
        payload: Dict[str, Any] = {"pe": pe, "time": time, "kind": kind}
        payload.update(fields)
        self._fh.write(json.dumps(payload, default=str) + "\n")
        self.count += 1

    def declare_schema(self, schema: SchemaDeclaration) -> None:
        """Register a language's self-describing event schema."""
        super().declare_schema(schema)
        self._fh.write(
            json.dumps(
                {
                    "kind": "__schema__",
                    "language": schema.language,
                    "event": schema.event_name,
                    "fields": list(schema.fields),
                }
            )
            + "\n"
        )

    def close(self) -> None:
        """Flush and release any backing resources."""
        self._fh.flush()
        if self._owns:
            self._fh.close()


class LockingTracer(Tracer):
    """Thread-safety adapter around any tracer.

    The simulator never needs this (one thread runs all PEs), but an mp
    worker records events from its main thread, its socket receiver
    thread and Ccd timer threads concurrently — and neither
    :class:`JsonlTracer` (interleaved writes) nor
    :class:`CountingTracer` (read-modify-write counter updates) is safe
    under that.  The wrapper serializes ``record``/``declare_schema``/
    ``close`` with one lock and exposes the wrapped tracer as ``inner``.
    """

    def __init__(self, inner: Tracer) -> None:
        super().__init__()
        import threading

        self.inner = inner
        self.schemas = inner.schemas  # shared list: one source of truth
        self._lock = threading.Lock()

    def record(self, pe: int, time: float, kind: str, fields: Mapping[str, Any]) -> None:
        """Record one event (hot path: called on every traced event)."""
        with self._lock:
            self.inner.record(pe, time, kind, fields)

    def declare_schema(self, schema: SchemaDeclaration) -> None:
        """Register a language's self-describing event schema."""
        with self._lock:
            self.inner.declare_schema(schema)

    def close(self) -> None:
        """Flush and release the wrapped tracer's resources."""
        with self._lock:
            self.inner.close()


def make_tracer(spec: Any) -> Optional[Tracer]:
    """Build a tracer from a machine-constructor argument.

    ``False``/``None`` -> no tracing; ``True``/``"memory"`` -> memory;
    ``"count"`` -> counting; ``"jsonl:<path>"``, a path-like object, a
    string that is unambiguously a path (contains a separator or ends in
    ``.jsonl``), or a file object -> JSONL; an existing :class:`Tracer`
    passes through.

    Any other string raises ``ValueError``: a typo like ``"counting"``
    must fail loudly instead of silently creating a stray trace file
    named after the typo.
    """
    if spec in (None, False):
        return None
    if spec is True or spec == "memory":
        return MemoryTracer()
    if spec == "count":
        return CountingTracer()
    if isinstance(spec, Tracer):
        return spec
    if isinstance(spec, str):
        if spec.startswith("jsonl:"):
            return JsonlTracer(spec[len("jsonl:"):])
        if os.sep in spec or "/" in spec or spec.endswith(".jsonl"):
            return JsonlTracer(spec)
        raise ValueError(
            f"unknown tracer spec {spec!r}: use False, True, 'memory', "
            "'count', 'jsonl:<path>', a path, a file object, or a Tracer"
        )
    if isinstance(spec, os.PathLike) or hasattr(spec, "write"):
        return JsonlTracer(spec)
    raise ValueError(
        f"unknown tracer spec {spec!r} of type {type(spec).__name__}"
    )


def load_jsonl(path: Any) -> MemoryTracer:
    """Reload an on-disk JSONL trace into a :class:`MemoryTracer`.

    The inverse of streaming through a :class:`JsonlTracer`: event lines
    become :class:`TraceEvent` records (``pe``/``time``/``kind`` pulled
    out of the payload, everything else restored as ``fields``) and
    ``__schema__`` lines become :class:`SchemaDeclaration` entries — so
    the analysis, export and CLI layers consume live tracers and trace
    files through one interface.
    """
    tracer = MemoryTracer()
    if hasattr(path, "read"):
        lines = path
    else:
        lines = open(path, "r", encoding="utf-8")
    try:
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            kind = payload.pop("kind", None)
            if kind == "__schema__":
                tracer.schemas.append(
                    SchemaDeclaration(
                        language=payload.get("language", "?"),
                        event_name=payload.get("event", "?"),
                        fields=tuple(
                            (str(n), str(t)) for n, t in payload.get("fields", [])
                        ),
                    )
                )
                continue
            if kind is None or "pe" not in payload or "time" not in payload:
                raise ValueError(
                    f"{path}:{lineno}: trace line missing pe/time/kind: {line[:80]}"
                )
            pe = payload.pop("pe")
            time = payload.pop("time")
            tracer.events.append(TraceEvent(int(pe), float(time), str(kind), payload))
    finally:
        if lines is not path:
            lines.close()
    return tracer
