"""Unit tests for the streaming message-aggregation layer
(:mod:`repro.comms.aggregation`): flush policies, routing, accounting,
composition with reliability, and strict need-based cost when off.
"""

from __future__ import annotations

import pytest

from repro.comms.aggregation import AggregationConfig, Aggregator
from repro.core import api
from repro.core.errors import SimulationError
from repro.core.message import Message
from repro.sim.machine import Machine


# ----------------------------------------------------------------------
# shared driver: fine-grained all-to-all, every PE counts receipts
# ----------------------------------------------------------------------
def run_all2all(num_pes: int, rounds: int, size: int = 16,
                **machine_kwargs):
    """Every PE sends ``rounds`` messages of ``size`` bytes to every
    other PE, then runs its scheduler until it received them all.
    Returns ``(per-PE receive counts, machine stats dict)``."""
    recv = [0] * num_pes
    expected_each = rounds * (num_pes - 1)
    with Machine(num_pes, **machine_kwargs) as m:
        def main():
            me = api.CmiMyPe()

            def on_msg(msg):
                recv[me] += 1
                if recv[me] == expected_each:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "a2a")
            for r in range(rounds):
                for d in range(num_pes):
                    if d != me:
                        api.CmiSyncSend(d, Message(h, (me, r), size=size))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        stats = {
            "wire_msgs": m.network.stats.messages,
            "sent": sum(n.stats.msgs_sent for n in m.nodes),
            "received": sum(n.stats.msgs_received for n in m.nodes),
            "per_channel": dict(m.network.stats.per_channel),
            "agg": [rt.aggregation.stats if rt.aggregation else None
                    for rt in m.runtimes],
            "vt": m.now,
        }
    return recv, stats


# ----------------------------------------------------------------------
# correctness & accounting
# ----------------------------------------------------------------------
def test_off_by_default_zero_structures():
    with Machine(2) as m:
        assert m.aggregation_config is None
        for rt in m.runtimes:
            assert rt.aggregation is None
            assert rt.cmi.aggregation is None
            assert rt.idle_flush is None
            assert rt.cmi.flush_aggregation() == 0


def test_delivery_identical_with_and_without_aggregation():
    plain, _ = run_all2all(4, 10)
    agg, stats = run_all2all(4, 10, aggregation=True)
    assert plain == agg == [30, 30, 30, 30]
    # Every PE's layer drained completely.
    for s in stats["agg"]:
        assert s.submitted == 30
        assert s.delivered == 30
    assert all(rtstats.batches_sent > 0 for rtstats in stats["agg"])


def test_wire_message_reduction_and_conservation():
    _, plain = run_all2all(4, 16)
    _, agg = run_all2all(4, 16, aggregation=True)
    # Coalescing must cut wire messages by a large factor (16 msgs per
    # destination fit in a single default-config batch).
    assert agg["wire_msgs"] * 4 <= plain["wire_msgs"]
    # Machine-layer message conservation: one count per batch, balanced.
    assert agg["sent"] == agg["received"]
    assert plain["sent"] == plain["received"]


def test_large_messages_bypass_aggregation():
    cfg = AggregationConfig(max_msg_bytes=64)
    recv, stats = run_all2all(2, 5, size=4096, aggregation=cfg)
    assert recv == [5, 5]
    for s in stats["agg"]:
        assert s.submitted == 0  # every send took the direct path


def test_payloads_and_sources_survive_batching():
    """Batched messages must arrive with payload and src_pe intact."""
    got = []
    with Machine(3, aggregation=True) as m:
        def main():
            me = api.CmiMyPe()

            def on_msg(msg):
                got.append((me, msg.src_pe, msg.payload))
                if len([g for g in got if g[0] == me]) == 4:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "pay")
            if me == 0:
                for i in range(4):
                    api.CmiSyncSend(1, Message(h, ("blob", i), size=8))
                    api.CmiSyncSend(2, Message(h, ("blob", i), size=8))
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        m.run()
    for pe in (1, 2):
        mine = [(src, pay) for (p, src, pay) in got if p == pe]
        assert mine == [(0, ("blob", i)) for i in range(4)]


# ----------------------------------------------------------------------
# flush policies
# ----------------------------------------------------------------------
def test_flush_on_full_batch():
    cfg = AggregationConfig(max_batch_msgs=4, flush_period=None,
                            flush_on_idle=False)
    recv, stats = run_all2all(2, 8, aggregation=cfg)
    assert recv == [8, 8]
    for s in stats["agg"]:
        assert s.flush_full == 2  # 8 msgs / 4 per batch
        assert s.flush_idle == s.flush_timer == 0


def test_flush_on_byte_budget():
    cfg = AggregationConfig(max_batch_msgs=10_000, max_batch_bytes=256,
                            max_msg_bytes=512, flush_period=None,
                            flush_on_idle=False)
    recv, stats = run_all2all(2, 6, size=100, aggregation=cfg)
    assert recv == [6, 6]
    for s in stats["agg"]:
        assert s.flush_bytes >= 2  # (100+8)*3 > 256
        assert s.flush_full == 0


def test_flush_on_timer():
    # Idle flush off: only the virtual-time timer can move a partial
    # buffer, so completion lands at (or just past) the flush period.
    cfg = AggregationConfig(flush_period=300e-6, flush_on_idle=False)
    recv, stats = run_all2all(2, 3, aggregation=cfg)
    assert recv == [3, 3]
    assert stats["vt"] >= 300e-6
    for s in stats["agg"]:
        assert s.flush_timer >= 1


def test_flush_on_scheduler_idle():
    # Default config: the idle flush beats the 200us timer by orders of
    # magnitude, so completion time stays tiny.
    recv, stats = run_all2all(2, 3, aggregation=True)
    assert recv == [3, 3]
    assert stats["vt"] < 200e-6
    assert any(s.flush_idle >= 1 for s in stats["agg"])


def test_quiescent_drain_rescues_stranded_buffers():
    # No timer, no idle flush, and the sender never enters a scheduler:
    # only the machine's quiescent drain can move the buffered batch.
    cfg = AggregationConfig(flush_period=None, flush_on_idle=False)
    got = []
    with Machine(2, aggregation=cfg) as m:
        def sender():
            h = api.CmiRegisterHandler(lambda msg: None, "unused")
            api.CmiSyncSend(1, Message(hid[0], "stranded", size=8))

        def receiver():
            def on_msg(msg):
                got.append(msg.payload)
                api.CsdExitScheduler()

            hid.append(api.CmiRegisterHandler(on_msg, "drain"))
            api.CmiCharge(1e-6)
            api.CsdScheduler(-1)

        hid = []
        m.launch_on(1, receiver)
        m.launch_on(0, sender)
        m.run()
        assert m.runtime(0).aggregation.stats.flush_drain == 1
    assert got == ["stranded"]


def test_explicit_flush():
    cfg = AggregationConfig(flush_period=None, flush_on_idle=False)
    with Machine(2, aggregation=cfg) as m:
        def main():
            rt = m.runtime(0)
            h = api.CmiRegisterHandler(lambda msg: None, "x")
            api.CmiSyncSend(1, Message(h, None, size=8))
            assert rt.aggregation.pending == 1
            assert rt.cmi.flush_aggregation() == 1
            assert rt.aggregation.pending == 0
            assert rt.aggregation.stats.flush_explicit == 1

        m.launch_on(0, main)
        m.run()


# ----------------------------------------------------------------------
# mesh routing
# ----------------------------------------------------------------------
def test_mesh2d_next_hop_column_first():
    with Machine(9, aggregation=AggregationConfig(route="mesh2d")) as m:
        agg = m.runtime(0).aggregation  # PE 0 = (row 0, col 0) on a 3x3
        assert agg.next_hop(0) == 0     # self
        assert agg.next_hop(3) == 3     # same column: direct
        assert agg.next_hop(4) == 1     # fix column first: (0,1)
        assert agg.next_hop(8) == 2     # via (0,2)
        assert agg.next_hop(2) == 2     # same row: column hop IS dest
        agg4 = m.runtime(4).aggregation  # PE 4 = (1,1)
        assert agg4.next_hop(6) == 3    # (2,0) via (1,0)
        assert agg4.next_hop(1) == 1    # same column


def test_mesh2d_delivers_and_forwards():
    recv, stats = run_all2all(9, 6,
                              aggregation=AggregationConfig(route="mesh2d"))
    assert recv == [48] * 9
    assert stats["sent"] == stats["received"]
    # Off-diagonal traffic must have transited intermediate PEs.
    assert sum(s.forwarded for s in stats["agg"]) > 0
    # Dimension-ordered routing uses only row/column channels: no wire
    # message between PEs differing in both row and column.
    for (src, dst), n in stats["per_channel"].items():
        same_row = src // 3 == dst // 3
        same_col = src % 3 == dst % 3
        assert same_row or same_col, f"diagonal channel {src}->{dst}"


def test_mesh2d_ragged_grid_falls_back_direct():
    # 6 PEs -> isqrt = 2 columns, rows of 2: every cell exists, but on a
    # 7-PE machine the virtual cell for some hops exceeds num_pes.
    recv, stats = run_all2all(7, 4,
                              aggregation=AggregationConfig(route="mesh2d"))
    assert recv == [24] * 7
    assert stats["sent"] == stats["received"]


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------
def test_aggregation_composes_with_reliable_delivery():
    recv, stats = run_all2all(3, 8, aggregation=True, reliable=True)
    assert recv == [16, 16, 16]
    assert stats["sent"] == stats["received"]


def test_aggregation_with_collectives():
    """Barriers and reductions (which bypass or flush aggregation as
    needed) still work on an aggregated machine."""
    from repro.machine.emi_groups import world_group

    results = []
    with Machine(4, aggregation=True) as m:
        def main():
            from repro.sim.context import current_runtime

            g = world_group(current_runtime().machine)
            results.append(api.CmiPgrpReduce(g, api.CmiMyPe(), lambda a, b: a + b))

        m.launch(main)
        m.run()
    assert results == [6, 6, 6, 6]


def test_direct_send_opts_out():
    cfg = AggregationConfig(flush_period=None, flush_on_idle=False)
    with Machine(2, aggregation=cfg) as m:
        def main():
            rt = m.runtime(0)
            h = api.CmiRegisterHandler(lambda msg: None, "x")
            rt.cmi.sync_send(1, Message(h, None, size=8), direct=True)
            assert rt.aggregation.pending == 0  # bypassed the buffers

        m.launch_on(0, main)
        m.run()


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
def test_metrics_cover_batching():
    recv = [0, 0]
    with Machine(2, aggregation=True, metrics=True) as m:
        def main():
            me = api.CmiMyPe()

            def on_msg(msg):
                recv[me] += 1
                if recv[me] == 6:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "mx")
            for i in range(6):
                api.CmiSyncSend(1 - me, Message(h, i, size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        snap = m.metrics.snapshot()
        assert snap["agg.submitted"]["total"] == 12
        assert snap["agg.batches"]["total"] >= 2
        assert snap["agg.batch_msgs"]["kind"] == "histogram"
    assert recv == [6, 6]


def test_tracing_records_flush_and_logical_sends():
    with Machine(2, aggregation=True, trace="memory") as m:
        def main():
            me = api.CmiMyPe()

            def on_msg(msg):
                api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "tr")
            if me == 0:
                api.CmiSyncSend(1, Message(h, None, size=8))
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        sends = m.tracer.by_kind("send")
        assert any(e.fields.get("aggregated") for e in sends)
        assert len(m.tracer.by_kind("agg_flush")) >= 1
        assert len(m.tracer.by_kind("agg_batch")) >= 1


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [
    dict(max_batch_msgs=0),
    dict(max_batch_bytes=0),
    dict(flush_period=0.0),
    dict(flush_period=-1e-6),
    dict(route="torus"),
    dict(per_msg_cost=-1.0),
])
def test_config_validation(bad):
    with pytest.raises(SimulationError):
        Machine(2, aggregation=AggregationConfig(**bad)).shutdown()


def test_machine_true_means_default_config():
    with Machine(2, aggregation=True) as m:
        assert m.aggregation_config == AggregationConfig()
        assert isinstance(m.runtime(0).aggregation, Aggregator)


# ----------------------------------------------------------------------
# non-blocking scheduler entry points must not strand buffered batches
# (regression: run_until_idle()/poll() used to return with the
# aggregation buffers still holding small messages, so a program
# driving its scheduler purely by polling never put them on the wire)
# ----------------------------------------------------------------------
def _no_auto_flush_cfg():
    """Aggregation tuned so *only* the pre-idle hook can flush: no
    timer, thresholds far above what the test submits."""
    return AggregationConfig(flush_period=None, max_batch_msgs=1000,
                             max_batch_bytes=1 << 20)


def test_schedule_until_idle_flushes_aggregation_buffers():
    got, hid = [], []
    with Machine(2, aggregation=_no_auto_flush_cfg()) as m:
        def receiver():
            def on_msg(msg):
                got.append(msg.payload)
                if len(got) == 3:
                    api.CsdExitScheduler()

            hid.append(api.CmiRegisterHandler(on_msg, "idleflush"))
            api.CmiCharge(1e-6)
            api.CsdScheduler(-1)

        def sender():
            rt = m.runtime(0)
            for i in range(3):
                api.CmiSyncSend(1, Message(hid[0], i, size=8))
            assert rt.aggregation.pending == 3     # all still buffered
            api.CsdScheduleUntilIdle()             # must flush pre-idle
            assert rt.aggregation.pending == 0
            assert rt.aggregation.stats.flush_idle >= 1

        m.launch_on(1, receiver)
        m.launch_on(0, sender)
        m.run()
    assert got == [0, 1, 2]


def test_schedule_poll_flushes_aggregation_buffers():
    got, hid = [], []
    with Machine(2, aggregation=_no_auto_flush_cfg()) as m:
        def receiver():
            def on_msg(msg):
                got.append(msg.payload)
                if len(got) == 2:
                    api.CsdExitScheduler()

            hid.append(api.CmiRegisterHandler(on_msg, "pollflush"))
            api.CmiCharge(1e-6)
            api.CsdScheduler(-1)

        def sender():
            rt = m.runtime(0)
            for i in range(2):
                api.CmiSyncSend(1, Message(hid[0], i, size=8))
            assert rt.aggregation.pending == 2
            api.CsdSchedulePoll()                  # must flush when idle
            assert rt.aggregation.pending == 0

        m.launch_on(1, receiver)
        m.launch_on(0, sender)
        m.run()
    assert got == [0, 1]
