"""Shared fixtures.  Importable helpers (run_on / run_spmd_collect)
live in ``tests/helpers.py``; machines default to the GENERIC
round-numbers model so expected virtual times can be computed by hand.
"""

from __future__ import annotations

import threading
import pytest

from repro.sim.machine import Machine
from repro.sim.models import GENERIC, MachineModel


def pytest_addoption(parser):
    parser.addoption(
        "--seeds",
        type=int,
        default=25,
        help="number of fault-plan seeds the schedule-fuzzing harness in "
        "tests/faults sweeps (each seed is a fully deterministic run; a "
        "failing seed value reproduces the failure exactly)",
    )


@pytest.fixture
def machine2() -> Machine:
    m = Machine(2, model=GENERIC)
    yield m
    m.shutdown()


@pytest.fixture
def machine4() -> Machine:
    m = Machine(4, model=GENERIC)
    yield m
    m.shutdown()


@pytest.fixture(autouse=True)
def no_thread_leaks():
    """Every test must clean up its simulated machines: the OS thread
    count may not grow across a test (parked tasklets would hang around
    forever otherwise)."""
    before = threading.active_count()
    yield
    after = threading.active_count()
    assert after <= before + 1, (
        f"leaked {after - before} OS threads; a Machine was not shut down"
    )
