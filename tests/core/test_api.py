"""Tests for the C-flavoured API veneer: completeness against the paper's
appendix and context binding."""

from __future__ import annotations

import pytest

from tests.helpers import run_on

from repro.core import api
from repro.core.errors import NotInTaskletError


#: Every call named in the paper's API appendix, mapped to its veneer.
PAPER_APPENDIX_CALLS = [
    # 1 Initialization and Completion
    "ConverseInit", "ConverseExit",
    # 2 Scheduler Calls
    "CsdScheduler", "CsdExitScheduler", "CsdEnqueue",
    # 3.1 Message Handler Calls
    "CmiMsgHeaderSizeBytes", "CmiSetHandler", "CmiGetHandlerFunction",
    "CmiRegisterHandler",
    # 3.2 Timer Calls
    "CmiTimer",
    # 3.3 Point-To-Point Communication
    "CmiGetSpecificMsg", "CmiAsyncSend", "CmiSyncSend", "CmiAsyncMsgSent",
    "CmiReleaseCommHandle", "CmiVectorSend", "CmiGrabBuffer",
    # 3.4 Global Pointer
    "CmiGptrCreate", "CmiGptrDref", "CmiSyncGet", "CmiGet", "CmiPut",
    # 3.5 Group Communication
    "CmiSyncBroadcast", "CmiSyncBroadcastAllAndFree", "CmiSyncBroadcastAll",
    "CmiAsyncBroadcast", "CmiAsyncBroadcastAll",
    # 3.6 Processor Ids
    "CmiNumPe", "CmiMyPe",
    # 3.7 Input/Output
    "CmiPrintf", "CmiScanf", "CmiError",
    # 3.8 Processor Groups
    "CmiPgrpCreate", "CmiPgrpDestroy", "CmiAddChildren", "CmiAsyncMulticast",
    "CmiPgrpRoot", "CmiNumChildren", "CmiParent", "CmiChildren",
    # 5 Thread Manipulation
    "CthInit", "CthCreate", "CthCreateOfSize", "CthResume", "CthSuspend",
    "CthAwaken", "CthSetStrategy", "CthExit", "CthYield", "CthSelf",
    # 4 / 6: object factories for Cmm and Cts
    "CmmNew", "CtsNewLock", "CtsNewCondn", "CtsNewBarrier",
]


def test_every_paper_appendix_call_exists():
    missing = [name for name in PAPER_APPENDIX_CALLS if not hasattr(api, name)]
    assert not missing, f"API appendix calls missing from the veneer: {missing}"


def test_all_exports_resolve():
    for name in api.__all__:
        assert hasattr(api, name), name


@pytest.mark.parametrize("fn_name", [
    "CmiMyPe", "CmiNumPes", "CmiTimer", "CsdExitScheduler", "CthSelf",
    "CmiPgrpCreate",
])
def test_context_bound_calls_fail_outside_machine(fn_name):
    with pytest.raises(NotInTaskletError):
        getattr(api, fn_name)()


def test_cth_init_builds_thread_module():
    def main():
        api.CthInit()
        return api.CthSelf() is not None

    assert run_on(1, main) is True


def test_cmm_new_returns_fresh_managers():
    def main():
        a, b = api.CmmNew(), api.CmmNew()
        a.put("x", 1)
        return len(a), len(b)

    assert run_on(1, main) == (1, 0)


def test_cmi_new_builds_message():
    def main():
        msg = api.CmiNew(3, b"abc", prio=7)
        return msg.handler, msg.payload, msg.prio, msg.size

    assert run_on(1, main) == (3, b"abc", 7, 3)


def test_timers_distinguish_busy_and_idle():
    def main():
        api.CmiCharge(5e-6)
        # Idle wait: scheduler with nothing to do, exited by a peer task.
        return api.CmiTimer(), api.CmiWallTimer(), api.CmiCpuTimer()

    t, wall, cpu = run_on(1, main)
    assert t == wall == pytest.approx(5e-6)
    assert cpu == pytest.approx(5e-6)


def test_cpu_timer_excludes_idle():
    from repro.sim.machine import Machine

    with Machine(1) as m:
        out = {}

        def sched():
            api.CsdScheduler(-1)
            out["cpu"] = api.CmiCpuTimer()
            out["wall"] = api.CmiTimer()

        def stopper():
            api.CmiCharge(100e-6)
            api.CsdExitScheduler()

        m.launch_on(0, sched)
        m.launch_on(0, stopper, name="stop")
        m.run()
        assert out["wall"] >= 100e-6
        # The scheduler tasklet itself did no charged work.
        assert out["cpu"] == pytest.approx(100e-6)  # only stopper's charge
