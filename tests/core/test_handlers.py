"""Unit tests for the handler registration table."""

from __future__ import annotations

import pytest

from repro.core.errors import HandlerError, UnknownHandlerError
from repro.core.handlers import HandlerTable


def test_register_returns_increasing_indices_from_one():
    t = HandlerTable()
    a = t.register(lambda m: None, "a")
    b = t.register(lambda m: None, "b")
    assert (a, b) == (1, 2)
    assert len(t) == 2


def test_lookup_resolves_registered_function():
    t = HandlerTable()
    fn = lambda m: None  # noqa: E731
    idx = t.register(fn)
    assert t.lookup(idx) is fn


def test_lookup_unregistered_raises():
    t = HandlerTable()
    t.register(lambda m: None)
    with pytest.raises(UnknownHandlerError):
        t.lookup(0)  # reserved slot
    with pytest.raises(UnknownHandlerError):
        t.lookup(99)
    with pytest.raises(UnknownHandlerError):
        t.lookup(-1)


def test_register_non_callable_rejected():
    t = HandlerTable()
    with pytest.raises(HandlerError):
        t.register("not callable")  # type: ignore[arg-type]


def test_register_at_fixed_index():
    t = HandlerTable()
    fn = lambda m: None  # noqa: E731
    t.register_at(10, fn, "fixed")
    assert t.lookup(10) is fn
    assert t.name_of(10) == "fixed"
    # Idempotent for the same function.
    t.register_at(10, fn)
    with pytest.raises(HandlerError):
        t.register_at(10, lambda m: None)
    with pytest.raises(HandlerError):
        t.register_at(0, fn)


def test_names_default_to_qualname():
    t = HandlerTable()

    def my_handler(msg):
        pass

    idx = t.register(my_handler)
    assert "my_handler" in t.name_of(idx)
    assert "unregistered" in t.name_of(55)


def test_consistency_check():
    def build(names):
        t = HandlerTable()
        for n in names:
            t.register(lambda m: None, n)
        return t

    same = [build(["x", "y"]) for _ in range(3)]
    assert HandlerTable.check_consistent(same)
    assert HandlerTable.check_consistent([])
    different = same + [build(["x", "z"])]
    assert not HandlerTable.check_consistent(different)
