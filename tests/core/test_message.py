"""Unit tests for generalized messages: header, priorities, ownership."""

from __future__ import annotations

import pytest

from repro.core.errors import BufferOwnershipError, MessageError
from repro.core.message import (
    HEADER_BYTES,
    BitVector,
    Message,
    estimate_size,
)


# ----------------------------------------------------------------------
# construction & sizes
# ----------------------------------------------------------------------

def test_basic_construction_defaults():
    msg = Message(3, b"abc")
    assert msg.handler == 3
    assert msg.size == 3
    assert msg.prio is None
    assert msg.valid and not msg.cmi_owned


def test_explicit_size_overrides_estimate():
    msg = Message(1, b"abc", size=1000)
    assert msg.size == 1000


def test_invalid_handler_rejected():
    with pytest.raises(MessageError):
        Message(-1, b"")
    with pytest.raises(MessageError):
        Message("h", b"")  # type: ignore[arg-type]


def test_negative_size_rejected():
    with pytest.raises(MessageError):
        Message(1, b"", size=-5)


def test_bool_priority_rejected():
    with pytest.raises(MessageError):
        Message(1, b"", prio=True)


@pytest.mark.parametrize(
    "payload,expected",
    [
        (None, 0),
        (b"1234", 4),
        ("abc", 3),
        (7, 8),
        (3.14, 8),
        ((1, 2), 16 + 16),
        ([1.0, 2.0, 3.0], 16 + 24),
        ({"a": 1}, 16 + 1 + 8),
        (object(), 64),
    ],
)
def test_estimate_size_rules(payload, expected):
    assert estimate_size(payload) == expected


def test_estimate_size_numpy_nbytes():
    import numpy as np

    arr = np.zeros(10, dtype=np.float64)
    assert estimate_size(arr) == 80


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------

def test_pack_unpack_roundtrip_plain():
    msg = Message(12, b"hello world", src_pe=None)
    wire = msg.pack()
    assert len(wire) == HEADER_BYTES + 11
    back = Message.unpack(wire, src_pe=4)
    assert back.handler == 12
    assert back.payload == b"hello world"
    assert back.prio is None
    assert back.src_pe == 4


@pytest.mark.parametrize("prio", [0, 7, -3, 2**40, -(2**40)])
def test_pack_unpack_int_priority(prio):
    back = Message.unpack(Message(1, b"x", prio=prio).pack())
    assert back.prio == prio


def test_pack_unpack_bitvector_priority():
    bv = BitVector("0110")
    back = Message.unpack(Message(1, b"data", prio=bv).pack())
    assert back.prio == bv
    assert back.payload == b"data"


def test_pack_rejects_object_payload():
    with pytest.raises(MessageError):
        Message(1, {"not": "bytes"}).pack()


def test_unpack_rejects_garbage():
    with pytest.raises(MessageError):
        Message.unpack(b"short")
    bad = b"\x00" * (HEADER_BYTES + 4)
    with pytest.raises(MessageError, match="magic"):
        Message.unpack(bad)


def test_handler_in_first_field_after_magic():
    """The paper's 'first word specifies a function' contract: mutating
    the handler only changes those header bytes."""
    a = Message(1, b"payload").pack()
    b = Message(2, b"payload").pack()
    diff = [i for i, (x, y) in enumerate(zip(a, b)) if x != y]
    assert diff and all(4 <= i < 8 for i in diff)  # bytes of the handler int32


# ----------------------------------------------------------------------
# buffer ownership protocol
# ----------------------------------------------------------------------

def test_recycle_poisons_unowned_buffer():
    msg = Message(1, b"data")
    msg.mark_cmi_owned()
    msg.recycle()
    assert not msg.valid
    with pytest.raises(BufferOwnershipError):
        _ = msg.payload


def test_grab_prevents_recycle():
    msg = Message(1, b"data")
    msg.mark_cmi_owned()
    msg.grab()
    msg.recycle()
    assert msg.valid
    assert msg.payload == b"data"


def test_grab_after_recycle_raises():
    msg = Message(1, b"data")
    msg.mark_cmi_owned()
    msg.recycle()
    with pytest.raises(BufferOwnershipError):
        msg.grab()


def test_recycle_without_cmi_ownership_is_noop():
    msg = Message(1, b"data")
    msg.recycle()
    assert msg.valid


# ----------------------------------------------------------------------
# BitVector ordering
# ----------------------------------------------------------------------

def test_bitvector_fraction_ordering():
    assert BitVector("0") < BitVector("1")
    assert BitVector("01") < BitVector("1")
    assert BitVector("001") < BitVector("01")
    assert BitVector("011") > BitVector("01")


def test_bitvector_trailing_zeros_equal():
    assert BitVector("01") == BitVector("0100")
    assert hash(BitVector("01")) == hash(BitVector("0100"))
    assert BitVector("") == BitVector("000")


def test_bitvector_prefix_is_smaller():
    assert BitVector("01") < BitVector("011")


def test_bitvector_extended_appends():
    root = BitVector("")
    left = root.extended("0")
    right = root.extended("1")
    assert left < right
    assert left.extended([1]) == BitVector("01")


def test_bitvector_as_fraction():
    assert BitVector("1").as_fraction() == 0.5
    assert BitVector("01").as_fraction() == 0.25
    assert BitVector("11").as_fraction() == 0.75
    assert BitVector("").as_fraction() == 0.0


def test_bitvector_validates_bits():
    with pytest.raises(MessageError):
        BitVector("0120")
    with pytest.raises(MessageError):
        BitVector([0, 2])
