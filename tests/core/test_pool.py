"""Pooled message allocation (:mod:`repro.core.pool`) — the raw-speed
free list must never weaken the buffer-ownership protocol.

Covers the satellite checklist: a poisoned recycled message is never
resurrected with stale payload/prio/enq_time/msg_id, across
grab/recycle/re-send cycles, and a seeded fuzz-style workload produces
identical results with the pool on and off (including under a hostile
fault plan with the reliability layer).
"""

from __future__ import annotations

import random

import pytest

from repro import FaultPlan, Machine, api
from repro.core.errors import BufferOwnershipError
from repro.core.message import Message
from repro.core.pool import MessagePool
from repro.sim.models import GENERIC


# ----------------------------------------------------------------------
# unit: the free list itself
# ----------------------------------------------------------------------
def test_acquire_fresh_then_reuse_counters():
    pool = MessagePool()
    a = pool.acquire(3, "hello", 16, None, 0)
    assert pool.created == 1 and pool.reused == 0
    assert a._pooled and a._valid and not a._cmi_owned
    assert a.payload == "hello" and a.handler == 3 and a.size == 16
    assert a.msg_id is None and a.enq_time is None and not a.corrupted

    a.mark_cmi_owned()
    a.recycle()
    pool.release(a)
    assert pool.released == 1 and len(pool) == 1

    b = pool.acquire(4, "world", 8, None, 1)
    assert b is a                      # LIFO reuse of the parked buffer
    assert pool.reused == 1 and pool.created == 1


def test_parked_buffer_stays_poisoned():
    """While a buffer sits in the free list, stale references must keep
    failing loudly — parking must not resurrect it."""
    pool = MessagePool()
    msg = pool.acquire(1, b"x" * 32, 32, None, 0)
    msg.mark_cmi_owned()
    msg.recycle()
    pool.release(msg)
    assert not msg._valid
    with pytest.raises(BufferOwnershipError):
        _ = msg.payload


def test_acquire_resets_every_slot():
    """A resurrected buffer must carry zero state from its previous
    life: payload, prio, msg_id, enq_time, corrupted, ownership bits."""
    pool = MessagePool()
    msg = pool.acquire(7, "stale-payload", 64, 9, 2)
    # simulate a full life: queued (enq_time/msg_id stamped), corrupted
    # on the wire, then recycled by the CMI.
    msg.msg_id = 12345
    msg.enq_time = 1.5
    msg.corrupted = True
    msg.mark_cmi_owned()
    msg.recycle()
    pool.release(msg)

    fresh = pool.acquire(2, "new", 8, None, 0)
    assert fresh is msg
    assert fresh.payload == "new"
    assert fresh.handler == 2 and fresh.size == 8 and fresh.src_pe == 0
    assert fresh.prio is None
    assert fresh.msg_id is None
    assert fresh.enq_time is None
    assert fresh.corrupted is False
    assert fresh._cmi_owned is False and fresh._valid and fresh._pooled


def test_release_ignores_live_grabbed_and_foreign_messages():
    pool = MessagePool()
    live = pool.acquire(1, "live", 8, None, 0)
    pool.release(live)                       # still valid: not parked
    assert len(pool) == 0 and pool.released == 0

    user = Message(1, "user-built", size=8)  # never pool-born
    user.mark_cmi_owned()
    user.recycle()
    pool.release(user)
    assert len(pool) == 0 and pool.released == 0


def test_double_release_is_noop():
    pool = MessagePool()
    msg = pool.acquire(1, "x", 8, None, 0)
    msg.mark_cmi_owned()
    msg.recycle()
    pool.release(msg)
    pool.release(msg)                        # second release: ignored
    assert len(pool) == 1 and pool.released == 1
    # and a foreign pool cannot adopt the parked buffer either
    other = MessagePool()
    other.release(msg)
    assert len(other) == 0


def test_max_free_cap_drops_excess():
    pool = MessagePool(max_free=2)
    msgs = [pool.acquire(1, i, 8, None, 0) for i in range(4)]
    for m in msgs:
        m.mark_cmi_owned()
        m.recycle()
        pool.release(m)
    assert len(pool) == 2 and pool.released == 2 and pool.dropped == 2


# ----------------------------------------------------------------------
# integration: the CMI draws wire copies from the pool
# ----------------------------------------------------------------------
def _run_pingpong(n, **machine_kwargs):
    """2-PE ping-pong; returns (received payload log per PE, machine)."""
    log = [[], []]
    with Machine(2, model=GENERIC, **machine_kwargs) as m:
        def main():
            me = api.CmiMyPe()
            other = 1 - me

            def on_msg(msg):
                log[me].append(msg.payload)
                if msg.payload < n:
                    api.CmiSyncSend(other, api.CmiNew(h, msg.payload + 1))
                if msg.payload >= n - 1:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "pp")
            if me == 0:
                api.CmiSyncSend(1, api.CmiNew(h, 1))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        stats = [rt.pool.stats() if rt.pool else None for rt in m.runtimes]
    return log, stats


def test_pool_recycles_wire_copies_in_pingpong():
    log, stats = _run_pingpong(40, pool=True)
    assert log[1] == list(range(1, 41, 2))
    assert log[0] == list(range(2, 41, 2))
    # steady-state traffic is served from the free list, not malloc
    total = {k: sum(s[k] for s in stats) for k in stats[0]}
    assert total["reused"] > total["created"]
    assert total["released"] >= total["reused"]


def test_pool_off_matches_pool_on_exactly():
    on, _ = _run_pingpong(30, pool=True)
    off, stats_off = _run_pingpong(30, pool=False)
    assert on == off
    assert stats_off == [None, None]         # knob off: no pool objects


def test_stale_reference_fails_loudly_then_resurrects_clean():
    """The full grab/recycle/re-send cycle on one physical buffer:

    1. a handler stashes a wire buffer *without* grabbing it;
    2. after the handler returns the buffer is recycled and parked —
       the stale reference must raise :class:`BufferOwnershipError`;
    3. the next send from that PE resurrects the same object; the old
       reference now sees the *new* message only — none of the old
       payload/prio/msg_id/enq_time survives.
    """
    stashed = []
    state = {}
    with Machine(2, model=GENERIC, pool=True) as m:
        def main():
            me = api.CmiMyPe()

            def on_first(msg):
                stashed.append(msg)          # no grab: recycled on return

            def on_second(msg):
                state["second_payload"] = msg.payload
                api.CsdExitScheduler()

            h1 = api.CmiRegisterHandler(on_first, "first")
            h2 = api.CmiRegisterHandler(on_second, "second")
            if me == 0:
                api.CmiSyncSend(1, Message(h1, "old-life", size=8, prio=5))
                api.CsdScheduler(1)          # wait for the echo
            else:
                api.CsdScheduler(1)          # receive + recycle + park
                ref = stashed[0]
                with pytest.raises(BufferOwnershipError):
                    _ = ref.payload          # poisoned while parked
                # re-send: PE 1's CMI acquires from its own free list
                api.CmiSyncSend(0, Message(h2, "new-life", size=8))
                assert ref._valid            # resurrected for the new send
                assert ref.payload == "new-life" and ref.prio is None
                assert ref.msg_id is None and ref.enq_time is None

        m.launch(main)
        m.run()
    assert state["second_payload"] == "new-life"


def test_grabbed_buffer_is_never_pooled():
    """``CmiGrabBuffer`` transfers ownership to the program: the buffer
    must survive arbitrarily more pooled traffic untouched and must
    never appear in any free list."""
    grabbed = []
    with Machine(2, model=GENERIC, pool=True) as m:
        def main():
            me = api.CmiMyPe()

            def on_keep(msg):
                grabbed.append(api.CmiGrabBuffer(msg))

            def on_churn(msg):
                if msg.payload == 0:
                    api.CsdExitAll()
                else:
                    api.CmiSyncSend(1 - me,
                                    api.CmiNew(h_churn, msg.payload - 1))

            h_keep = api.CmiRegisterHandler(on_keep, "keep")
            h_churn = api.CmiRegisterHandler(on_churn, "churn")
            if me == 0:
                api.CmiSyncSend(1, Message(h_keep, "precious", size=8))
                api.CmiSyncSend(1, api.CmiNew(h_churn, 20))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        pools = [rt.pool for rt in m.runtimes]
        buf = grabbed[0]
        assert buf._valid and buf.payload == "precious"
        for p in pools:
            assert all(parked is not buf for parked in p._free)

    assert grabbed[0].payload == "precious"  # still alive after shutdown


def test_no_stale_resurrection_across_many_cycles():
    """Drive hundreds of grab/recycle/re-send cycles through a 2-PE
    credit stream and assert every received message carries exactly the
    payload and priority it was sent with — nothing from a previous
    occupant of the (heavily reused) buffers."""
    n = 300
    seen = []
    with Machine(2, model=GENERIC, pool=True) as m:
        def main():
            me = api.CmiMyPe()

            def on_data(msg):
                seen.append((msg.payload, msg.prio, msg.msg_id,
                             msg.corrupted))
                api.CmiSyncSend(0, api.CmiNew(h_credit, msg.payload[1]))
                if msg.payload[1] == n - 1:
                    api.CsdExitScheduler()

            def on_credit(msg):
                i = msg.payload + 1
                if i < n:
                    api.CmiSyncSend(
                        1, Message(h_data, ("cycle", i), size=8,
                                   prio=i % 7))
                else:
                    api.CsdExitScheduler()

            h_data = api.CmiRegisterHandler(on_data, "data")
            h_credit = api.CmiRegisterHandler(on_credit, "credit")
            if me == 0:
                api.CmiSyncSend(1, Message(h_data, ("cycle", 0), size=8,
                                           prio=0))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        reused = sum(rt.pool.stats()["reused"] for rt in m.runtimes)
    assert [p for p, _, _, _ in seen] == [("cycle", i) for i in range(n)]
    assert [pr for _, pr, _, _ in seen] == [i % 7 for i in range(n)]
    assert all(mid is None for _, _, mid, _ in seen)
    assert not any(c for _, _, _, c in seen)
    assert reused > n // 2                   # the buffers really cycled


# ----------------------------------------------------------------------
# fuzz-style parity: pooling must be observationally invisible
# ----------------------------------------------------------------------
def _run_seeded_scatter(seed, num_pes=4, per_pe=25, **machine_kwargs):
    """Every PE sends ``per_pe`` messages to seeded-random destinations
    with seeded-random payloads/prios; returns each PE's receive log."""
    total = num_pes * per_pe
    logs = [[] for _ in range(num_pes)]
    got = [0]
    with Machine(num_pes, model=GENERIC, **machine_kwargs) as m:
        def main():
            me = api.CmiMyPe()
            rng = random.Random(seed * 1000 + me)

            def on_msg(msg):
                logs[me].append(msg.payload)
                got[0] += 1
                if got[0] == total:
                    api.CsdExitAll()

            h = api.CmiRegisterHandler(on_msg, "scatter")
            others = [d for d in range(num_pes) if d != me]
            for i in range(per_pe):
                dest = rng.choice(others)
                prio = rng.randrange(4)
                api.CmiSyncSend(dest, Message(h, (me, i, rng.random()),
                                              size=16, prio=prio))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
    return logs


def test_seeded_fuzz_parity_pool_on_vs_off():
    for seed in (7, 23, 101):
        on = _run_seeded_scatter(seed, pool=True)
        off = _run_seeded_scatter(seed, pool=False)
        assert on == off, f"pooling changed delivery for seed {seed}"


# ----------------------------------------------------------------------
# seed forwarding: the Cld wrapper rides pooled wire buffers
# ----------------------------------------------------------------------
def _run_seed_forwarding(ldb, seeds=64, num_pes=4, seed=9, **machine_kwargs):
    """PE 0 CldEnqueues tagged seeds that charge time wherever they
    root; returns (per-PE payload logs, per-PE pool stats)."""
    logs = [[] for _ in range(num_pes)]
    with Machine(num_pes, model=GENERIC, ldb=ldb, seed=seed,
                 **machine_kwargs) as m:
        def main():
            me = api.CmiMyPe()

            def work(msg):
                logs[me].append(msg.payload)
                api.CmiCharge(40e-6)

            hid = api.CmiRegisterHandler(work, "seedwork")
            if me == 0:
                for i in range(seeds):
                    api.CldEnqueue(Message(hid, ("seed", i, "x" * 8),
                                           size=16))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        # ``if rt.pool`` would misread an *empty* free list as "no pool"
        # (MessagePool defines __len__): test None explicitly.
        stats = [rt.pool.stats() if rt.pool is not None else None
                 for rt in m.runtimes]
    return logs, stats


@pytest.mark.parametrize("ldb", ["random", "neighbor", "steal", "adaptive"])
def test_forwarded_seeds_survive_pool_recycling(ldb):
    """Seed wrappers travel as pooled wire copies, and forwarding /
    stealing re-wraps the *inner* seed for another hop.  Recycling a
    wrapper buffer must never poison the seed riding in it: every tag
    arrives exactly once with its payload intact, no matter how many
    hops (forward chains, steal replies, migration pushes) it took."""
    logs, stats = _run_seed_forwarding(ldb, pool=True)
    all_payloads = sorted(p for log in logs for p in log)
    assert all_payloads == [("seed", i, "x" * 8) for i in range(64)], (
        f"[{ldb}] seed payload lost or corrupted through pooled hops"
    )
    # The run really exercised the free lists.
    total = {k: sum(s[k] for s in stats) for k in stats[0]}
    assert total["released"] > 0


@pytest.mark.parametrize("ldb", ["random", "steal"])
def test_seed_placement_parity_pool_on_vs_off(ldb):
    """Pooling must be observationally invisible to the balancer: the
    same machine seed gives the identical per-PE seed placement with the
    free list on and off."""
    on, _ = _run_seed_forwarding(ldb, pool=True)
    off, off_stats = _run_seed_forwarding(ldb, pool=False)
    assert on == off
    assert all(s is None for s in off_stats)


def test_pool_forced_on_under_hostile_faults_with_reliable():
    """Pooling defaults off under an unreliable fault plan, but forcing
    it on with the reliability layer must still deliver every logical
    message exactly once, in per-sender order."""
    n = 12
    plan = FaultPlan(41, drop=0.2, duplicate=0.15, reorder=0.2,
                     reorder_max=300e-6)
    with Machine(2, model=GENERIC, faults=plan, reliable=True,
                 pool=True) as m:
        got = []

        def main():
            me = api.CmiMyPe()

            def on_msg(msg):
                got.append(msg.payload)
                if len(got) == n:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "rel")
            if me == 0:
                for i in range(n):
                    api.CmiSyncSend(1, api.CmiNew(h, i))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert m.runtime(1).pool is not None   # the knob really was on
    assert got == list(range(n))
