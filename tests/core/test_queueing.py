"""Unit tests for the pluggable queueing strategies."""

from __future__ import annotations

import pytest

from repro.core.errors import QueueingError
from repro.core.message import BitVector
from repro.core.queueing import (
    BitvectorPriorityQueue,
    FifoQueue,
    IntPriorityQueue,
    LifoQueue,
    QUEUE_STRATEGIES,
    TwoLevelQueue,
    make_queue,
)


def drain(q):
    out = []
    while True:
        item = q.pop()
        if item is None:
            return out
        out.append(item)


def test_fifo_order():
    q = FifoQueue()
    for i in range(5):
        q.push(i)
    assert drain(q) == [0, 1, 2, 3, 4]


def test_lifo_order():
    q = LifoQueue()
    for i in range(5):
        q.push(i)
    assert drain(q) == [4, 3, 2, 1, 0]


def test_fifo_ignores_priorities():
    q = FifoQueue()
    q.push("a", prio=100)
    q.push("b", prio=-100)
    assert drain(q) == ["a", "b"]


def test_int_priority_smaller_first():
    q = IntPriorityQueue()
    q.push("low", prio=10)
    q.push("high", prio=-5)
    q.push("mid", prio=0)
    assert drain(q) == ["high", "mid", "low"]


def test_int_priority_fifo_within_level():
    q = IntPriorityQueue()
    for i in range(4):
        q.push(f"a{i}", prio=1)
    q.push("urgent", prio=0)
    assert drain(q) == ["urgent", "a0", "a1", "a2", "a3"]


def test_int_priority_none_is_zero():
    q = IntPriorityQueue()
    q.push("none")           # None -> 0
    q.push("neg", prio=-1)
    q.push("zero", prio=0)
    assert drain(q) == ["neg", "none", "zero"]


def test_int_priority_rejects_bitvector():
    q = IntPriorityQueue()
    with pytest.raises(QueueingError):
        q.push("x", prio=BitVector("01"))


def test_bitvector_queue_fraction_order():
    q = BitvectorPriorityQueue()
    q.push("half", prio=BitVector("1"))
    q.push("quarter", prio=BitVector("01"))
    q.push("eighth", prio=BitVector("001"))
    q.push("root")  # None -> empty vector, most urgent
    assert drain(q) == ["root", "eighth", "quarter", "half"]


def test_bitvector_queue_rejects_ints():
    q = BitvectorPriorityQueue()
    with pytest.raises(QueueingError):
        q.push("x", prio=3)


def test_two_level_queue_accepts_mixed():
    q = TwoLevelQueue()
    q.push("i1", prio=1)
    q.push("none")          # == int 0
    q.push("bv", prio=BitVector("1"))
    q.push("i-1", prio=-1)
    out = drain(q)
    assert out.index("i-1") < out.index("none") < out.index("i1")
    assert out[-1] == "bv"  # bit-vectors sort after the int family


def test_peek_does_not_remove():
    for name in QUEUE_STRATEGIES:
        q = make_queue(name)
        assert q.peek() is None
        q.push("only")
        assert q.peek() == "only"
        assert len(q) == 1
        assert q.pop() == "only"


def test_len_and_bool():
    q = FifoQueue()
    assert not q and len(q) == 0
    q.push(1)
    assert q and len(q) == 1
    q.pop()
    assert not q


def test_pop_empty_returns_none():
    for name in QUEUE_STRATEGIES:
        assert make_queue(name).pop() is None


def test_make_queue_unknown_rejected():
    with pytest.raises(QueueingError, match="unknown queueing strategy"):
        make_queue("priority-ish")


def test_registry_names():
    assert set(QUEUE_STRATEGIES) == {"fifo", "lifo", "int", "bitvector", "general"}
