"""Tests for the counter-wave quiescence-detection library."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import ConverseError
from repro.core.message import Message
from repro.core.quiescence import QD
from repro.sim.machine import Machine


def test_detects_on_idle_machine_quickly():
    with Machine(4) as m:
        QD.attach(m)
        fired = []

        def main():
            if api.CmiMyPe() == 0:
                QD.get().start(lambda: (fired.append(api.CmiTimer()),
                                        api.CsdExitAll()))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert len(fired) == 1
        # Two waves over an idle machine: well under a millisecond.
        assert fired[0] < 1e-3
        assert m.runtime(0).lang_instances["qd"].waves_run == 2


def test_waits_for_inflight_traffic_to_drain():
    """QD must not fire while an application message chain is active."""
    with Machine(3) as m:
        QD.attach(m)
        events = []

        def main():
            me = api.CmiMyPe()

            def h(msg):
                hops = msg.payload
                events.append(("hop", api.CmiTimer()))
                api.CmiCharge(30e-6)
                if hops > 0:
                    api.CmiSyncSend((api.CmiMyPe() + 1) % 3,
                                    Message(hid, hops - 1, size=8))

            hid = api.CmiRegisterHandler(h, "chain")
            if me == 0:
                QD.get().start(lambda: (events.append(("quiet", api.CmiTimer())),
                                        api.CsdExitAll()))
                # 12 hops of 30us compute each: the chain outlives several
                # QD waves.
                api.CmiSyncSend(1, Message(hid, 12, size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        kinds = [k for k, _ in events]
        assert kinds.count("hop") == 13
        assert kinds[-1] == "quiet"
        quiet_time = events[-1][1]
        last_hop = max(t for k, t in events if k == "hop")
        assert quiet_time > last_hop


def test_initiator_can_be_any_pe():
    with Machine(5) as m:
        QD.attach(m)
        fired = []

        def main():
            if api.CmiMyPe() == 3:
                QD.get().start(lambda: (fired.append(api.CmiMyPe()),
                                        api.CsdExitAll()))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert fired == [3]


def test_multiple_callbacks_fire_together():
    with Machine(2) as m:
        QD.attach(m)
        fired = []

        def main():
            if api.CmiMyPe() == 0:
                qd = QD.get()
                qd.start(lambda: fired.append("a"))
                qd.start(lambda: (fired.append("b"), api.CsdExitAll()))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert fired == ["a", "b"]


def test_single_pe_machine():
    with Machine(1) as m:
        QD.attach(m)
        fired = []

        def main():
            QD.get().start(lambda: (fired.append(True), api.CsdExitScheduler()))
            api.CsdScheduler(-1)

        m.launch_on(0, main)
        m.run()
        assert fired == [True]


def test_non_callable_rejected():
    with Machine(1) as m:
        QD.attach(m)

        def main():
            try:
                QD.get().start("not callable")  # type: ignore[arg-type]
            except ConverseError:
                return "rejected"

        t = m.launch_on(0, main)
        m.run()
        assert t.result == "rejected"


def test_ccd_callback_runs_after_delay():
    with Machine(1) as m:
        log = []

        def main():
            api.CcdCallFnAfter(100e-6, lambda: (log.append(api.CmiTimer()),
                                                api.CsdExitScheduler()))
            api.CsdScheduler(-1)

        m.launch_on(0, main)
        m.run()
        # Fires after the delay plus the normal delivery/dispatch cost.
        from repro.sim.models import GENERIC

        expect = 100e-6 + GENERIC.recv_overhead + GENERIC.cvs_dispatch_extra
        assert log == [pytest.approx(expect)]


def test_ccd_negative_delay_rejected():
    with Machine(1) as m:
        def main():
            try:
                api.CcdCallFnAfter(-1.0, lambda: None)
            except ConverseError:
                return "neg"

        t = m.launch_on(0, main)
        m.run()
        assert t.result == "neg"


def test_ccd_ticks_do_not_skew_message_conservation():
    """The timer tick is not a message: global sent == received after a
    run that used Ccd heavily."""
    with Machine(2) as m:
        def main():
            state = {"n": 0}

            def tick():
                state["n"] += 1
                if state["n"] < 5:
                    api.CcdCallFnAfter(10e-6, tick)
                else:
                    api.CsdExitScheduler()

            api.CcdCallFnAfter(10e-6, tick)
            api.CsdScheduler(-1)
            return state["n"]

        t = m.launch_on(0, main)
        m.run()
        assert t.result == 5
        sent = sum(n.stats.msgs_sent for n in m.nodes)
        recv = sum(n.stats.msgs_received for n in m.nodes)
        assert sent == recv == 0
