"""Unit tests for the per-PE Converse runtime: delivery, ownership
enforcement, exit semantics, intake filters."""

from __future__ import annotations

import pytest

from tests.helpers import run_on

from repro.core import api
from repro.core.errors import ConverseError, UnknownHandlerError
from repro.core.message import Message
from repro.sim.machine import Machine
from repro.sim.models import GENERIC


def test_deliver_charges_recv_plus_dispatch():
    with Machine(2) as m:
        times = {}

        def receiver():
            hid = api.CmiRegisterHandler(
                lambda msg: times.__setitem__("handled", api.CmiTimer()), "h"
            )
            rt = m.runtime(0)
            rt.node.wait_until(lambda: rt.has_pending_network)
            times["before"] = api.CmiTimer()
            api.CmiDeliverMsgs()

        def sender():
            hid = api.CmiRegisterHandler(lambda m_: None, "h")
            api.CmiSyncSend(0, Message(hid, None, size=0))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        spent = times["handled"] - times["before"]
        assert spent == pytest.approx(
            GENERIC.recv_overhead + GENERIC.cvs_dispatch_extra
        )


def test_handler_buffer_recycled_unless_grabbed():
    with Machine(2) as m:
        kept = []

        def receiver():
            def no_grab(msg):
                kept.append(msg)

            def with_grab(msg):
                api.CmiGrabBuffer(msg)
                kept.append(msg)

            api.CmiRegisterHandler(no_grab, "no")
            api.CmiRegisterHandler(with_grab, "yes")
            api.CsdScheduler(2)

        def sender():
            h_no = api.CmiRegisterHandler(lambda m_: None, "no")
            h_yes = api.CmiRegisterHandler(lambda m_: None, "yes")
            api.CmiSyncSend(0, Message(h_no, b"gone", size=4))
            api.CmiSyncSend(0, Message(h_yes, b"kept", size=4))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert not kept[0].valid
        assert kept[1].valid and kept[1].payload == b"kept"


def test_unknown_handler_raises_at_delivery():
    with Machine(2) as m:
        def receiver():
            api.CsdScheduler(1)

        def sender():
            api.CmiSyncSend(0, Message(777, None, size=0))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        with pytest.raises(UnknownHandlerError):
            m.run()


def test_converse_exit_blocks_further_calls():
    def main():
        api.ConverseInit()
        api.ConverseExit()
        try:
            api.CmiSyncSend(0, Message(1, None, size=0))
        except ConverseError as e:
            return str(e)

    assert "after ConverseExit" in run_on(2, main)


def test_exit_all_schedulers_stops_every_pe():
    with Machine(3) as m:
        def main():
            if api.CmiMyPe() == 0:
                api.CmiCharge(5e-6)
                api.CsdExitAll()
                return 0
            return api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        # PEs 1 and 2 each delivered exactly one message: the broadcast
        # exit request itself.
        assert m.results() == [0, 1, 1]


def test_intake_filter_consumes_messages():
    with Machine(2) as m:
        def receiver():
            rt = m.runtime(0)
            eaten = []
            rt.add_intake_filter(
                lambda msg: msg.payload == "eat" and (eaten.append(1) or True)
            )
            log = []
            hid = api.CmiRegisterHandler(lambda msg: log.append(msg.payload), "h")
            api.CsdScheduler(1)
            return log, len(eaten)

        def sender():
            hid = api.CmiRegisterHandler(lambda m_: None, "h")
            api.CmiSyncSend(0, Message(hid, "eat", size=3))
            api.CmiSyncSend(0, Message(hid, "pass", size=4))

        t = m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        log, eaten = t.result
        assert log == ["pass"]
        assert eaten == 1


def test_lang_instances_registry():
    from repro.langs.sm import SM

    with Machine(2) as m:
        insts = SM.attach(m)
        assert len(insts) == 2
        again = SM.attach(m)
        assert again == insts  # idempotent

        def main():
            return SM.get() is insts[0]

        t = m.launch_on(0, main)
        m.run()
        assert t.result is True


def test_trace_event_noop_without_tracer():
    with Machine(1) as m:
        assert m.tracer is None
        m.runtime(0).trace_event("user", x=1)  # must not raise
