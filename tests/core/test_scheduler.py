"""Unit tests for the unified Csd scheduler."""

from __future__ import annotations

import pytest

from tests.helpers import run_on

from repro.core import api
from repro.core.message import Message
from repro.sim.machine import Machine
from repro.sim.models import GENERIC


def test_enqueue_dequeue_dispatches_in_fifo_order():
    def main():
        log = []
        hid = api.CmiRegisterHandler(lambda m: log.append(m.payload), "h")
        for i in range(4):
            api.CsdEnqueue(Message(hid, i, size=0))
        assert api.CsdQueueLength() == 4
        n = api.CsdScheduleUntilIdle()
        return log, n

    log, n = run_on(1, main)
    assert log == [0, 1, 2, 3]
    assert n == 4


def test_priority_queue_orders_local_messages():
    def main():
        log = []
        hid = api.CmiRegisterHandler(lambda m: log.append(m.payload), "h")
        api.CsdEnqueue(Message(hid, "late", size=0, prio=5))
        api.CsdEnqueue(Message(hid, "early", size=0, prio=-5))
        api.CsdScheduleUntilIdle()
        return log

    assert run_on(1, main, queue="int") == ["early", "late"]


def test_csd_enqueue_charges_and_dequeue_charges():
    def main():
        hid = api.CmiRegisterHandler(lambda m: None, "h")
        t0 = api.CmiTimer()
        api.CsdEnqueue(Message(hid, None, size=0))
        t1 = api.CmiTimer()
        api.CsdScheduleUntilIdle()
        t2 = api.CmiTimer()
        return t1 - t0, t2 - t1

    enq, deq = run_on(1, main)
    assert enq == pytest.approx(GENERIC.enqueue_cost)
    assert deq == pytest.approx(GENERIC.dequeue_cost)


def test_enqueue_free_charges_nothing():
    def main():
        hid = api.CmiRegisterHandler(lambda m: None, "h")
        rt = __import__("repro.sim.context", fromlist=["x"]).current_runtime()
        t0 = api.CmiTimer()
        rt.scheduler.enqueue_free(Message(hid, None, size=0))
        return api.CmiTimer() - t0

    assert run_on(1, main) == 0.0


def test_scheduler_counts_and_exit():
    """CsdScheduler(-1) runs until CsdExitScheduler; returns the count."""
    def main():
        state = {"seen": 0}
        hid = {}

        def h(msg):
            state["seen"] += 1
            if state["seen"] == 3:
                api.CsdExitScheduler()

        hid = api.CmiRegisterHandler(h, "h")
        for _ in range(3):
            api.CsdEnqueue(Message(hid, None, size=0))
        count = api.CsdScheduler(-1)
        return count, state["seen"]

    assert run_on(1, main) == (3, 3)


def test_bounded_scheduler_blocks_until_n():
    """CsdScheduler(n) waits for n messages even across network delay."""
    with Machine(2) as m:
        def receiver():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            got = api.CsdScheduler(2)
            return got, api.CmiTimer()

        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            api.CmiCharge(50e-6)
            api.CmiSyncSend(0, Message(hid, None, size=0))
            api.CmiCharge(50e-6)
            api.CmiSyncSend(0, Message(hid, None, size=0))

        t = m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        count, t_end = t.result
        assert count == 2
        assert t_end > 100e-6


def test_exit_request_from_another_tasklet_unblocks_idle_scheduler():
    with Machine(1) as m:
        def idle_sched():
            return api.CsdScheduler(-1)

        def stopper():
            api.CmiCharge(10e-6)
            api.CsdExitScheduler()

        t = m.launch_on(0, idle_sched)
        m.launch_on(0, stopper, name="stopper")
        m.run()
        assert t.result == 0


def test_nested_scheduler_invocations():
    """A handler may itself run the scheduler (SPM donation pattern)."""
    def main():
        log = []

        def inner(msg):
            log.append("inner")
            api.CsdExitScheduler()

        def outer(msg):
            log.append("outer")
            api.CsdEnqueue(Message(h_inner, None, size=0))
            api.CsdScheduler(-1)  # nested: consumes the inner message
            log.append("outer-done")
            api.CsdExitScheduler()

        h_inner = api.CmiRegisterHandler(inner, "inner")
        h_outer = api.CmiRegisterHandler(outer, "outer")
        api.CsdEnqueue(Message(h_outer, None, size=0))
        api.CsdScheduler(-1)
        return log

    assert run_on(1, main) == ["outer", "inner", "outer-done"]


def test_poll_processes_available_work_only():
    def main():
        log = []
        hid = api.CmiRegisterHandler(lambda m: log.append(1), "h")
        api.CsdEnqueue(Message(hid, None, size=0))
        n1 = api.CsdSchedulePoll()
        n2 = api.CsdSchedulePoll()
        return n1, n2, len(log)

    assert run_on(1, main) == (1, 0, 1)


def test_run_until_idle_drains_cascades():
    """Handlers that enqueue more work extend the until-idle run."""
    def main():
        log = []

        def h(msg):
            n = msg.payload
            log.append(n)
            if n < 4:
                api.CsdEnqueue(Message(hid, n + 1, size=0))

        hid = api.CmiRegisterHandler(h, "h")
        api.CsdEnqueue(Message(hid, 0, size=0))
        count = api.CsdScheduleUntilIdle()
        return count, log

    count, log = run_on(1, main)
    assert log == [0, 1, 2, 3, 4]
    assert count == 5


def test_queued_message_buffer_kept_valid():
    """CsdEnqueue grabs the buffer so a queued message survives its
    original handler's return (section 3.1.3 buffer protocol)."""
    with Machine(2) as m:
        def receiver():
            got = []

            def from_queue(msg):
                got.append(bytes(msg.payload))
                api.CsdExitScheduler()

            def from_net(msg):
                msg.handler = h_q
                api.CsdEnqueue(msg)

            h_net = api.CmiRegisterHandler(from_net, "net")
            h_q = api.CmiRegisterHandler(from_queue, "q")
            api.CsdScheduler(-1)
            return got

        def sender():
            # Identical registration order on both PEs makes the index
            # valid machine-wide (the SPMD handler-table contract).
            h_net = api.CmiRegisterHandler(lambda m: None, "net")
            api.CmiRegisterHandler(lambda m: None, "q")
            api.CmiSyncSend(0, Message(h_net, b"keepme", size=6))

        t = m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert t.result == [b"keepme"]


def test_scheduler_delivers_network_before_queue():
    """Paper's loop: DeliverMsgs() first, then one queued message."""
    with Machine(2) as m:
        def receiver():
            log = []
            h_net = api.CmiRegisterHandler(lambda m: log.append("net"), "n")
            h_loc = api.CmiRegisterHandler(lambda m: log.append("local"), "l")
            # Pre-queue local work, then wait for the network message to
            # be present before starting the scheduler.
            api.CsdEnqueue(Message(h_loc, None, size=0))
            rt = __import__("repro.sim.context", fromlist=["x"]).current_runtime()
            rt.node.wait_until(lambda: rt.has_pending_network)
            api.CsdScheduler(2)
            return log

        def sender():
            h_net = api.CmiRegisterHandler(lambda m: None, "n")
            api.CmiRegisterHandler(lambda m: None, "l")
            api.CmiSyncSend(0, Message(h_net, None, size=0))

        t = m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert t.result == ["net", "local"]
