"""The raw-speed knobs (``pool=``, ``csd_batch=``, ``inline=``) —
resolution precedence, default policy, and the need-based-cost promise:
with a knob off the corresponding per-message machinery must simply not
exist (no pool object, no instrumented dispatch binding), so the only
residual cost is the flag test at construction time.
"""

from __future__ import annotations

from repro import FaultPlan, Machine
from repro.core.runtime import ConverseRuntime
from repro.machine.base import DEFAULT_CSD_BATCH, resolve_speed_knobs


# ----------------------------------------------------------------------
# resolve_speed_knobs: explicit beats env beats default
# ----------------------------------------------------------------------
def test_resolution_defaults():
    assert resolve_speed_knobs(None, None) == (True, DEFAULT_CSD_BATCH, False)
    assert resolve_speed_knobs(None, None, default_pool=False)[0] is False


def test_resolution_explicit_args_win(monkeypatch):
    monkeypatch.setenv("REPRO_MSG_POOL", "0")
    monkeypatch.setenv("REPRO_CSD_BATCH", "32")
    monkeypatch.setenv("REPRO_CSD_INLINE", "1")
    assert resolve_speed_knobs(True, 2, False) == (True, 2, False)


def test_resolution_env_beats_default(monkeypatch):
    monkeypatch.setenv("REPRO_MSG_POOL", "off")
    monkeypatch.setenv("REPRO_CSD_BATCH", "5")
    monkeypatch.setenv("REPRO_CSD_INLINE", "yes")
    assert resolve_speed_knobs(None, None) == (False, 5, True)


def test_resolution_clamps_batch():
    assert resolve_speed_knobs(None, 0)[1] == 1
    assert resolve_speed_knobs(None, -3)[1] == 1


# ----------------------------------------------------------------------
# machine plumbing: off means absent, not dormant
# ----------------------------------------------------------------------
def test_pool_off_means_no_pool_object():
    with Machine(2, pool=False) as m:
        assert all(rt.pool is None for rt in m.runtimes)


def test_pool_on_by_default_for_clean_runs():
    with Machine(2) as m:
        assert all(rt.pool is not None for rt in m.runtimes)


def test_pool_defaults_off_under_unreliable_faults():
    """An unreliable fault plan duplicates wire buffers; pooling a
    buffer the plan may redeliver would recycle live state, so the
    default flips to off (still overridable)."""
    plan = FaultPlan(1, duplicate=0.2)
    with Machine(2, faults=plan) as m:
        assert all(rt.pool is None for rt in m.runtimes)
    with Machine(2, faults=plan, reliable=True) as m:
        assert all(rt.pool is not None for rt in m.runtimes)
    with Machine(2, faults=plan, pool=True) as m:
        assert all(rt.pool is not None for rt in m.runtimes)


def test_csd_batch_plumbs_to_scheduler():
    with Machine(2) as m:
        assert all(rt.scheduler._batch == DEFAULT_CSD_BATCH
                   for rt in m.runtimes)
    with Machine(2, csd_batch=4) as m:
        assert all(rt.scheduler._batch == 4 for rt in m.runtimes)
    with Machine(2, csd_batch=1) as m:
        assert all(rt.scheduler._batch == 1 for rt in m.runtimes)


def test_env_knobs_reach_the_machine(monkeypatch):
    monkeypatch.setenv("REPRO_MSG_POOL", "0")
    monkeypatch.setenv("REPRO_CSD_BATCH", "3")
    with Machine(2) as m:
        assert all(rt.pool is None for rt in m.runtimes)
        assert all(rt.scheduler._batch == 3 for rt in m.runtimes)


# ----------------------------------------------------------------------
# dispatch binding: instrumentation selects the variant up front, so
# the fast path carries zero flag tests per message
# ----------------------------------------------------------------------
def test_untraced_runtime_uses_class_level_fast_invoke():
    with Machine(2) as m:
        for rt in m.runtimes:
            assert "invoke_handler" not in rt.__dict__
            assert type(rt).invoke_handler is ConverseRuntime.invoke_handler


def test_traced_or_metered_runtime_binds_instrumented_invoke():
    for kwargs in (dict(trace="memory"), dict(metrics=True)):
        with Machine(2, **kwargs) as m:
            for rt in m.runtimes:
                bound = rt.__dict__.get("invoke_handler")
                assert bound is not None
                assert bound.__func__ \
                    is ConverseRuntime._invoke_handler_instrumented
