"""Seed-sweep plumbing for the schedule-fuzzing harness.

Any test in this package taking a ``fault_seed`` argument is parametrized
over ``range(--seeds)`` (default 25, see ``tests/conftest.py``).  Each
seed names one fully deterministic hostile schedule: to reproduce a CI
failure locally, run the failing test id — the seed in its parametrized
name is the entire repro.

Tests taking a ``sim_backend`` argument are additionally parametrized
over every *installed* tasklet switch backend (always ``thread``; also
``greenlet`` when the ``repro[fast]`` extra is present), so the whole
hostile sweep doubles as a cross-backend equivalence check.
"""

from __future__ import annotations

import pytest

from repro.sim.switching import available_backends


def pytest_generate_tests(metafunc):
    if "fault_seed" in metafunc.fixturenames:
        n = metafunc.config.getoption("--seeds")
        metafunc.parametrize("fault_seed", range(n))
    if "sim_backend" in metafunc.fixturenames:
        metafunc.parametrize("sim_backend", available_backends())


def pytest_collection_modifyitems(items):
    for item in items:
        if "/tests/faults/" in str(item.fspath).replace("\\", "/"):
            item.add_marker(pytest.mark.faults)
