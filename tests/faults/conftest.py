"""Seed-sweep plumbing for the schedule-fuzzing harness.

Any test in this package taking a ``fault_seed`` argument is parametrized
over ``range(--seeds)`` (default 25, see ``tests/conftest.py``).  Each
seed names one fully deterministic hostile schedule: to reproduce a CI
failure locally, run the failing test id — the seed in its parametrized
name is the entire repro.
"""

from __future__ import annotations

import pytest


def pytest_generate_tests(metafunc):
    if "fault_seed" in metafunc.fixturenames:
        n = metafunc.config.getoption("--seeds")
        metafunc.parametrize("fault_seed", range(n))


def pytest_collection_modifyitems(items):
    for item in items:
        if "/tests/faults/" in str(item.fspath).replace("\\", "/"):
            item.add_marker(pytest.mark.faults)
