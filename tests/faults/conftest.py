"""Seed-sweep plumbing for the schedule-fuzzing harness.

Any test in this package taking a ``fault_seed`` argument is parametrized
over ``range(--seeds)`` (default 25, see ``tests/conftest.py``).  Each
seed names one fully deterministic hostile schedule: to reproduce a CI
failure locally, run the failing test id — the seed in its parametrized
name is the entire repro.

Tests taking a ``sim_backend`` argument are additionally parametrized
over every *installed* tasklet switch backend (always ``thread``; also
``greenlet`` when the ``repro[fast]`` extra is present), so the whole
hostile sweep doubles as a cross-backend equivalence check.

Tests taking a ``machine_backend`` argument run once per *registered*
machine layer (unavailable layers appear as explicit skips, never as a
silently shrinking matrix).  The mp legs run a reduced seed sweep
(``MP_SWEEP_SEEDS`` — real processes per run) and assert delivery /
conservation / recovery *invariants* rather than the simulator's
byte-identical traces: real sockets and real SIGKILLs do not replay
deterministically.
"""

from __future__ import annotations

import pytest

from repro.machine.base import (
    MACHINE_LAYERS,
    machine_backend_unavailable_reason,
)
from repro.sim.switching import available_backends

#: how many of the sweep's seeds the mp legs run (each is a full
#: multi-process machine boot).
MP_SWEEP_SEEDS = 3

#: wall-clock ceiling per mp run — hitting it means a hang, not a slow
#: machine.
MP_TIMEOUT = 120.0


def mp_sweep_guard(machine_backend, fault_seed, sim_backend="thread"):
    """Skip the mp legs the reduced sweep does not cover: seeds past the
    cap, and tasklet-backend variants (simulator-only inside a worker
    the parametrization cannot reach)."""
    if machine_backend != "mp":
        return
    if fault_seed >= MP_SWEEP_SEEDS:
        pytest.skip(f"mp legs run a reduced {MP_SWEEP_SEEDS}-seed sweep "
                    "(one real process per PE per run)")
    if sim_backend != "thread":
        pytest.skip("tasklet switch backends are per-worker on mp; the "
                    "sweep pins the default")


def _machine_backend_params():
    params = []
    for name in MACHINE_LAYERS:
        reason = machine_backend_unavailable_reason(name)
        marks = (
            [pytest.mark.skip(
                reason=f"machine layer {name!r} unavailable: {reason}")]
            if reason else []
        )
        params.append(pytest.param(name, marks=marks, id=name))
    return params


def pytest_generate_tests(metafunc):
    if "fault_seed" in metafunc.fixturenames:
        n = metafunc.config.getoption("--seeds")
        metafunc.parametrize("fault_seed", range(n))
    if "sim_backend" in metafunc.fixturenames:
        metafunc.parametrize("sim_backend", available_backends())
    if "machine_backend" in metafunc.fixturenames:
        metafunc.parametrize("machine_backend", _machine_backend_params())


def pytest_collection_modifyitems(items):
    for item in items:
        if "/tests/faults/" in str(item.fspath).replace("\\", "/"):
            item.add_marker(pytest.mark.faults)
