"""Workload runners for the schedule-fuzzing harness.

Each runner builds a machine under a (possibly hostile) network, runs a
small well-understood workload, and returns everything a test needs to
assert *delivery exactness* (every message exactly once, per-sender
order), *quiescence correctness* and *trace determinism*.

The runners are deliberately plain functions so both the seed-sweep
tests (``tests/faults``) and the property-based tests
(``tests/props/test_props_faults.py``) can drive them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro import CrashSpec, FaultPlan, FTConfig, Machine, api
from repro.core.quiescence import QD
from repro.sim.models import GENERIC
from repro.tracing.tracer import MemoryTracer

__all__ = [
    "HOSTILE_RATES",
    "hostile_plan",
    "crashy_plan",
    "trace_bytes",
    "run_pingpong",
    "run_broadcast",
    "run_quiescence",
    "run_quickstart_workload",
    "run_ft_pingpong",
    "run_ft_all2all",
]

#: the default hostile mix: every fault class at once, drop rate 0.2 as
#: required by the acceptance experiment.
HOSTILE_RATES: Dict[str, float] = {
    "drop": 0.2,
    "duplicate": 0.15,
    "delay": 0.2,
    "reorder": 0.25,
    "corrupt": 0.1,
}


def hostile_plan(seed: int, **overrides: float) -> FaultPlan:
    """A :class:`FaultPlan` with the default hostile mix, overridable."""
    rates = {**HOSTILE_RATES, **overrides}
    return FaultPlan(seed, **rates)


def crashy_plan(seed: int, crash_pe: int, crash_at: float,
                restart_after: float = 250e-6,
                **overrides: float) -> FaultPlan:
    """A plan that crashes one PE mid-run on top of a (default mild)
    hostile mix — drop/duplicate only, so crash-fuzz failures implicate
    the recovery protocol rather than extreme reordering."""
    rates = {"drop": 0.1, "duplicate": 0.1, **overrides}
    return FaultPlan(
        seed, crashes=[CrashSpec(crash_pe, crash_at, restart_after)], **rates
    )


def trace_bytes(tracer: MemoryTracer) -> bytes:
    """Canonical byte serialization of a memory trace — two runs are
    *the same run* iff these byte strings are equal."""
    return json.dumps(
        [e.as_dict() for e in tracer.events], sort_keys=True
    ).encode("utf-8")


# ----------------------------------------------------------------------
# workload 1: ping-pong
# ----------------------------------------------------------------------
def run_pingpong(rounds: int = 10, *, faults: Optional[FaultPlan] = None,
                 reliable: Any = True, trace: Any = False,
                 model: Any = GENERIC, backend: Any = None) -> Dict[str, Any]:
    """PE 0 and PE 1 bounce one numbered ball ``2 * rounds`` hops.

    Ball ``n`` travels to PE ``1`` when ``n`` is even, PE ``0`` when odd;
    each PE must therefore observe exactly the even (resp. odd) numbers,
    in increasing order — any loss, duplication or reordering that leaks
    through the reliability layer breaks the sequence.
    """
    with Machine(2, model=model, faults=faults, reliable=reliable,
                 trace=trace, backend=backend) as m:
        recv: Dict[int, List[int]] = {0: [], 1: []}

        def main() -> None:
            me = api.CmiMyPe()
            other = 1 - me

            def on_ball(msg) -> None:
                n = msg.payload
                recv[me].append(n)
                if n + 1 < 2 * rounds:
                    api.CmiSyncSend(other, api.CmiNew(h_ball, n + 1))
                if len(recv[me]) == rounds:
                    api.CsdExitScheduler()

            h_ball = api.CmiRegisterHandler(on_ball, "fuzz.ball")
            if me == 0:
                api.CmiSyncSend(1, api.CmiNew(h_ball, 0))
            api.CsdScheduler(-1)

        m.launch(main)
        reason = m.run()
        return {
            "recv": recv,
            "reason": reason,
            "expected": {0: list(range(1, 2 * rounds, 2)),
                         1: list(range(0, 2 * rounds, 2))},
            "rel_stats": [m.runtime(pe).reliable.stats if m.runtime(pe).reliable
                          else None for pe in range(2)],
            "fault_stats": m.fault_plan.stats if m.fault_plan else None,
            "tracer": m.tracer,
        }


# ----------------------------------------------------------------------
# workload 2: broadcast
# ----------------------------------------------------------------------
def run_broadcast(num_pes: int = 4, count: int = 8, *,
                  faults: Optional[FaultPlan] = None, reliable: Any = True,
                  trace: Any = False, model: Any = GENERIC,
                  backend: Any = None) -> Dict[str, Any]:
    """PE 0 broadcasts ``count`` numbered messages; every other PE must
    receive exactly ``0 .. count-1`` in order (per-sender FIFO)."""
    with Machine(num_pes, model=model, faults=faults, reliable=reliable,
                 trace=trace, backend=backend) as m:
        recv: Dict[int, List[int]] = {pe: [] for pe in range(num_pes)}

        def main() -> None:
            me = api.CmiMyPe()

            def on_msg(msg) -> None:
                recv[me].append(msg.payload)
                if len(recv[me]) == count:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "fuzz.bcast")
            if me == 0:
                for i in range(count):
                    api.CmiSyncBroadcast(api.CmiNew(h, i))
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        reason = m.run()
        return {
            "recv": recv,
            "reason": reason,
            "expected": list(range(count)),
            "tracer": m.tracer,
        }


# ----------------------------------------------------------------------
# workload 3: relay + distributed quiescence detection
# ----------------------------------------------------------------------
def run_quiescence(num_pes: int = 4, seeds_per_pe: int = 2, ttl: int = 5, *,
                   faults: Optional[FaultPlan] = None, reliable: Any = True,
                   trace: Any = False, model: Any = GENERIC,
                   backend: Any = None) -> Dict[str, Any]:
    """Every PE injects ``seeds_per_pe`` relay messages that hop around
    the ring ``ttl`` further times; PE 0 runs the counter-wave quiescence
    detector, which fires ``CsdExitAll`` when the relays die out.

    Under exactly-once delivery the total number of handler deliveries is
    precisely ``num_pes * seeds_per_pe * (ttl + 1)``, and QD must declare
    quiescence exactly once — a dropped message (undetected loss) hangs
    the detector, a duplicate inflates the tally.
    """
    with Machine(num_pes, model=model, faults=faults, reliable=reliable,
                 trace=trace, backend=backend) as m:
        QD.attach(m)
        handled: Dict[int, int] = {pe: 0 for pe in range(num_pes)}
        declared: List[int] = []

        def main() -> None:
            me = api.CmiMyPe()

            def on_relay(msg) -> None:
                remaining = msg.payload
                handled[me] += 1
                if remaining > 0:
                    api.CmiSyncSend((me + 1) % num_pes,
                                    api.CmiNew(h_relay, remaining - 1))

            h_relay = api.CmiRegisterHandler(on_relay, "fuzz.relay")
            for _ in range(seeds_per_pe):
                api.CmiSyncSend((me + 1) % num_pes, api.CmiNew(h_relay, ttl))
            if me == 0:
                def on_quiet() -> None:
                    declared.append(1)
                    api.CsdExitAll()

                QD.get().start(on_quiet)
            api.CsdScheduler(-1)

        m.launch(main)
        reason = m.run()
        return {
            "handled": handled,
            "total_handled": sum(handled.values()),
            "expected_total": num_pes * seeds_per_pe * (ttl + 1),
            "declared": len(declared),
            "reason": reason,
            "tracer": m.tracer,
        }


# ----------------------------------------------------------------------
# the quickstart workload (determinism regression)
# ----------------------------------------------------------------------
def run_quickstart_workload(*, faults: Optional[FaultPlan] = None,
                            reliable: Any = False,
                            model: Any = GENERIC,
                            backend: Any = None) -> Tuple[bytes, int]:
    """The greet/reply workload of ``examples/quickstart.py``, traced to
    memory.  Returns ``(trace_bytes, replies_seen)``."""
    tracer = MemoryTracer()
    with Machine(4, model=model, trace=tracer, faults=faults,
                 reliable=reliable, backend=backend) as m:
        state = {"replies": 0}

        def main() -> None:
            me, num = api.CmiMyPe(), api.CmiNumPes()

            def on_greeting(msg) -> None:
                sender, _text = msg.payload
                reply = api.CmiNew(h_reply, (api.CmiMyPe(), "ack"))
                api.CmiSyncSend(sender, reply)

            def on_reply(msg) -> None:
                state["replies"] += 1
                if state["replies"] == api.CmiNumPes() - 1:
                    api.CsdExitScheduler()

            h_greet = api.CmiRegisterHandler(on_greeting, "quickstart.greet")
            h_reply = api.CmiRegisterHandler(on_reply, "quickstart.reply")
            if me == 0:
                for pe in range(1, num):
                    api.CmiSyncSend(pe, api.CmiNew(h_greet, (0, f"hello {pe}")))
                api.CsdScheduler(-1)
            else:
                api.CsdScheduler(1)

        m.launch(main)
        m.run()
        return trace_bytes(tracer), state["replies"]


# ----------------------------------------------------------------------
# workload 5: crash-surviving ping-pong (fault tolerance)
# ----------------------------------------------------------------------
def run_ft_pingpong(rounds: int = 40, *, faults: Optional[FaultPlan] = None,
                    ft: Any = True, checkpoint_every: int = 8,
                    trace: Any = False, model: Any = GENERIC,
                    backend: Any = None) -> Dict[str, Any]:
    """The ping-pong workload written against the ``Cft*`` API so it
    survives a whole-PE crash injected by the fault plan.

    The ball protocol is purely message-driven after PE 0's opening
    send; every ``checkpoint_every`` receptions a PE checkpoints at the
    end of the handler — a message boundary, after the causally implied
    send went out (and into the reliable layer's log).  A crash at any
    time must therefore finish with exactly the fault-free result.
    """
    ft_cfg = FTConfig() if ft is True else ft
    with Machine(2, model=model, faults=faults, reliable=True, ft=ft_cfg,
                 metrics=True, trace=trace, backend=backend) as m:
        recv: Dict[int, List[int]] = {0: [], 1: []}

        def main() -> None:
            me = api.CmiMyPe()
            other = 1 - me
            mine = recv[me]

            def on_ball(msg) -> None:
                n = msg.payload
                mine.append(n)
                if n + 1 < 2 * rounds:
                    api.CmiSyncSend(other, api.CmiNew(h_ball, n + 1))
                if checkpoint_every and len(mine) % checkpoint_every == 0:
                    api.CftCheckpoint()
                if len(mine) == rounds:
                    api.CsdExitScheduler()

            h_ball = api.CmiRegisterHandler(on_ball, "ft.ball")
            api.CftInit(lambda: list(mine),
                        lambda state: mine.__setitem__(slice(None), state))

            def init_sends() -> None:
                if me == 0:
                    api.CmiSyncSend(1, api.CmiNew(h_ball, 0))

            if api.CftRestarting():
                if not api.CftRecover():
                    # Cold start: no checkpoint existed.  Redo the
                    # fault-free initialization; replay + dedup
                    # reconcile anything peers already saw.
                    mine.clear()
                    init_sends()
            else:
                init_sends()
            api.CsdScheduler(-1)

        m.launch(main)
        reason = m.run()
        return {
            "recv": recv,
            "reason": reason,
            "expected": {0: list(range(1, 2 * rounds, 2)),
                         1: list(range(0, 2 * rounds, 2))},
            "metrics": m.metrics_snapshot(),
            "tracer": m.tracer,
        }


# ----------------------------------------------------------------------
# workload 6: crash-surviving all-to-all (fault tolerance)
# ----------------------------------------------------------------------
def run_ft_all2all(num_pes: int = 4, count: int = 6, *,
                   faults: Optional[FaultPlan] = None, ft: Any = True,
                   checkpoint_every: int = 6, trace: Any = False,
                   model: Any = GENERIC, backend: Any = None) -> Dict[str, Any]:
    """Every PE sends ``count`` numbered messages to every other PE and
    exits once it has received ``count * (num_pes - 1)``.

    Unlike the ping-pong, each PE performs *spontaneous* initialization
    sends; the explicit ``CftCheckpoint()`` right after them puts the
    logged sends under checkpoint cover, and the cold-start branch
    simply redoes them (same sequence numbers, dup-dropped by peers
    that already consumed them)."""
    ft_cfg = FTConfig() if ft is True else ft
    with Machine(num_pes, model=model, faults=faults, reliable=True,
                 ft=ft_cfg, metrics=True, trace=trace, backend=backend) as m:
        recv: Dict[int, Dict[int, List[int]]] = {
            pe: {src: [] for src in range(num_pes) if src != pe}
            for pe in range(num_pes)
        }

        def main() -> None:
            me, n = api.CmiMyPe(), api.CmiNumPes()
            mine = recv[me]
            state = {"seen": 0}
            total = count * (n - 1)

            def on_msg(msg) -> None:
                src, i = msg.payload
                mine[src].append(i)
                state["seen"] += 1
                if checkpoint_every and state["seen"] % checkpoint_every == 0:
                    api.CftCheckpoint()
                if state["seen"] == total:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "ft.a2a")

            def pack():
                return ({src: list(v) for src, v in mine.items()},
                        state["seen"])

            def unpack(snapshot) -> None:
                blobs, seen = snapshot
                for src, v in blobs.items():
                    mine[src][:] = v
                state["seen"] = seen

            def init_sends() -> None:
                for step in range(1, n):
                    dst = (me + step) % n
                    for i in range(count):
                        api.CmiSyncSend(dst, api.CmiNew(h, (me, i)))

            api.CftInit(pack, unpack)
            if api.CftRestarting():
                if not api.CftRecover():
                    for v in mine.values():
                        v.clear()
                    state["seen"] = 0
                    init_sends()
                    api.CftCheckpoint()
            else:
                init_sends()
                api.CftCheckpoint()
            api.CsdScheduler(-1)

        m.launch(main)
        reason = m.run()
        return {
            "recv": recv,
            "reason": reason,
            "expected": {pe: {src: list(range(count))
                              for src in range(num_pes) if src != pe}
                         for pe in range(num_pes)},
            "metrics": m.metrics_snapshot(),
            "tracer": m.tracer,
        }
