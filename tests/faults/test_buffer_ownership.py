"""Buffer-ownership under faults (satellite).

The generalized-message protocol (section 2.2 of the paper) lets a
handler take ownership of a buffer with ``CmiGrabBuffer``; un-grabbed
buffers are recycled (poisoned) when the handler returns.  The
reliability layer retransmits and deduplicates *wire* copies — it must
never hand the same logical message to the application twice, and its
dedup of a retransmitted copy must not invalidate a buffer the
application already grabbed from the first delivery.
"""

from __future__ import annotations

from repro import FaultPlan, FaultSpec, Machine, api
from repro.sim.models import GENERIC

#: drops every ack so PE 0 retransmits data PE 1 already received; the
#: receiver's dedup path then exercises duplicate wire copies of
#: messages the app may have grabbed.
ACK_LOSS = {(1, 0): FaultSpec(drop=0.7)}


def test_get_specific_msg_exactly_once_under_dup_reorder():
    """``CmiGetSpecificMsg`` must return each logical message exactly
    once, in per-sender order, even when the wire duplicates and
    reorders packets."""
    plan = FaultPlan(31, links={(0, 1): FaultSpec(duplicate=0.5, reorder=0.5,
                                                  reorder_max=300e-6)})
    n = 10
    with Machine(2, model=GENERIC, faults=plan, reliable=True) as m:
        got = []

        def main():
            me = api.CmiMyPe()
            h = api.CmiRegisterHandler(lambda msg: None, "t.data")
            if me == 0:
                for i in range(n):
                    api.CmiSyncSend(1, api.CmiNew(h, i))
                api.CsdScheduler(-1)
            else:
                for _ in range(n):
                    msg = api.CmiGetSpecificMsg(h)
                    got.append(msg.payload)

        m.launch(main)
        m.run()
        assert got == list(range(n))
        rel = m.runtime(1).reliable
        assert rel.stats.delivered == n
        # the hostile plan really did duplicate and/or reorder packets
        assert plan.stats.duplicates + plan.stats.reorders > 0


def test_grabbed_buffer_survives_dedup_of_retransmits():
    """A retransmitted copy arriving after the app grabbed the original
    buffer is dedup-dropped; the grabbed buffer must stay valid (the
    dedup must not recycle/poison it — no double free)."""
    plan = FaultPlan(37, links=dict(ACK_LOSS))
    n = 8
    with Machine(2, model=GENERIC, faults=plan, reliable=True) as m:
        grabbed = []

        def main():
            me = api.CmiMyPe()

            def on_data(msg):
                grabbed.append(api.CmiGrabBuffer(msg))
                if len(grabbed) == n:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_data, "t.data")
            if me == 0:
                for i in range(n):
                    api.CmiSyncSend(1, api.CmiNew(h, i))
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        m.run()

        rel = m.runtime(1).reliable
        assert rel.stats.dup_dropped > 0, "plan failed to force retransmits"
        # every grabbed buffer is still alive and readable after the
        # duplicate wire copies were discarded
        assert [msg.payload for msg in grabbed] == list(range(n))
        for msg in grabbed:
            assert msg.valid


def test_ungrabbed_buffer_still_recycled_under_reliability():
    """Reliability must not change recycle semantics: a buffer the
    handler did NOT grab is poisoned after the handler returns."""
    with Machine(2, model=GENERIC, reliable=True) as m:
        kept = []

        def main():
            me = api.CmiMyPe()

            def on_data(msg):
                kept.append(msg)  # NOT grabbed
                api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_data, "t.data")
            if me == 0:
                api.CmiSyncSend(1, api.CmiNew(h, "x"))
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert kept and not kept[0].valid
