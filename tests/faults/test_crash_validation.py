"""Unit tests for the crash-schedule side of the fault plan (satellite:
``FaultSpec``/``CrashSpec`` validation extended to whole-PE crashes)."""

from __future__ import annotations

import pytest

from repro import CrashSpec, FaultPlan
from repro.core.errors import SimulationError


class TestCrashSpecValidation:
    def test_accepts_well_formed_spec(self):
        CrashSpec(0, 1e-3).validate(num_pes=4)
        CrashSpec(3, 0.0, restart_after=None).validate(num_pes=4)
        CrashSpec(1, 5e-4, restart_after=0.0).validate(num_pes=2)

    def test_rejects_negative_pe(self):
        with pytest.raises(SimulationError):
            CrashSpec(-1, 1e-3).validate()

    def test_rejects_pe_out_of_range(self):
        CrashSpec(7, 1e-3).validate()  # fine without a machine size
        with pytest.raises(SimulationError):
            CrashSpec(7, 1e-3).validate(num_pes=4)

    def test_rejects_negative_crash_time(self):
        with pytest.raises(SimulationError):
            CrashSpec(0, -1e-6).validate()

    def test_rejects_negative_restart_delay(self):
        with pytest.raises(SimulationError):
            CrashSpec(0, 1e-3, restart_after=-1e-6).validate()


class TestFaultPlanCrashFields:
    def test_rejects_negative_mttf(self):
        with pytest.raises(SimulationError):
            FaultPlan(0, mttf=-1.0)

    def test_rejects_negative_default_restart(self):
        with pytest.raises(SimulationError):
            FaultPlan(0, restart_after=-1e-6)

    def test_rejects_non_crashspec_entries(self):
        with pytest.raises(SimulationError):
            FaultPlan(0, crashes=[(1, 1e-3)])

    def test_crashes_validate_on_construction(self):
        with pytest.raises(SimulationError):
            FaultPlan(0, crashes=[CrashSpec(0, -1.0)])

    def test_dict_crashes_use_plan_restart_after(self):
        plan = FaultPlan(0, crashes={2: 1e-3}, restart_after=9e-4)
        assert plan.crashes == [CrashSpec(2, 1e-3, 9e-4)]

    def test_schedule_rejects_pe_out_of_machine_range(self):
        plan = FaultPlan(0, crashes=[CrashSpec(5, 1e-3)])
        plan.crash_schedule(8)  # fits an 8-PE machine
        with pytest.raises(SimulationError):
            plan.crash_schedule(4)


class TestMttfSchedule:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(11, mttf=2e-3).crash_schedule(4)
        b = FaultPlan(11, mttf=2e-3).crash_schedule(4)
        assert a == b
        assert len(a) == 4  # one exponential draw per PE

    def test_different_seed_different_schedule(self):
        a = FaultPlan(11, mttf=2e-3).crash_schedule(4)
        b = FaultPlan(12, mttf=2e-3).crash_schedule(4)
        assert a != b

    def test_mttf_stream_independent_of_link_faults(self):
        """Drawing crash times must not perturb the per-packet fault
        stream: plans with and without mttf make identical per-link
        decisions for the same seed."""
        plain = FaultPlan(5, drop=0.3, duplicate=0.2)
        crashy = FaultPlan(5, drop=0.3, duplicate=0.2, mttf=1e-3)
        crashy.crash_schedule(4)
        a = [plain.decide(0, 1) for _ in range(100)]
        b = [crashy.decide(0, 1) for _ in range(100)]
        assert a == b

    def test_combined_with_explicit_crashes_and_sorted(self):
        plan = FaultPlan(3, crashes=[CrashSpec(1, 5e-3)], mttf=1e-3)
        sched = plan.crash_schedule(2)
        assert len(sched) == 3
        assert sched == sorted(sched, key=lambda s: (s.at, s.pe))
        assert any(s.pe == 1 and s.at == 5e-3 for s in sched)

    def test_mttf_draws_use_plan_restart_after(self):
        plan = FaultPlan(3, mttf=1e-3, restart_after=None)
        assert all(s.restart_after is None for s in plan.crash_schedule(3))
