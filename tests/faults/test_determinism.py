"""Determinism regression (satellite): the quickstart workload, traced.

Two runs with the same configuration — including the same fault seed —
must produce byte-identical traces; changing the seed must change the
trace.  This is the property that makes every fuzz failure reproducible
from its seed alone.

The switch backend must be invisible to this property: the same workload
and seed produce byte-identical traces on *every* installed backend
(thread vs greenlet), because both run the same engine code in the same
order — only the baton hand-off mechanism differs.
"""

from __future__ import annotations

import pytest

from repro.sim.switching import available_backends
from tests.faults.harness import (
    hostile_plan,
    run_pingpong,
    run_quickstart_workload,
    trace_bytes,
)


def test_quickstart_trace_identical_without_faults():
    a, replies_a = run_quickstart_workload()
    b, replies_b = run_quickstart_workload()
    assert replies_a == replies_b == 3
    assert a == b


def test_quickstart_trace_identical_with_same_fault_seed():
    a, ra = run_quickstart_workload(faults=hostile_plan(6), reliable=True)
    b, rb = run_quickstart_workload(faults=hostile_plan(6), reliable=True)
    assert ra == rb == 3
    assert a == b


def test_quickstart_trace_differs_across_fault_seeds():
    """Different seeds inject different faults, which must be visible in
    the trace (retransmits, fault events, arrival times)."""
    traces = set()
    for seed in range(4):
        t, replies = run_quickstart_workload(faults=hostile_plan(seed),
                                             reliable=True)
        assert replies == 3  # delivery still exact for every seed
        traces.add(t)
    assert len(traces) > 1


# ----------------------------------------------------------------------
# cross-backend equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(3))
def test_quickstart_trace_identical_across_backends(seed):
    """Same workload + same fault seed -> byte-identical trace on every
    installed switch backend.  (With only the thread backend installed
    this degenerates to a same-backend rerun, which must still hold.)"""
    ref = None
    for backend in available_backends():
        t, replies = run_quickstart_workload(faults=hostile_plan(seed),
                                             reliable=True, backend=backend)
        assert replies == 3
        if ref is None:
            ref = t
        else:
            assert t == ref, f"backend {backend!r} diverged from reference"


def test_pingpong_trace_identical_across_backends():
    traces = {
        backend: trace_bytes(
            run_pingpong(rounds=6, faults=hostile_plan(2), reliable=True,
                         trace=True, backend=backend)["tracer"]
        )
        for backend in available_backends()
    }
    assert len(set(traces.values())) == 1, sorted(traces)


def test_greenlet_backend_matches_thread_traces():
    """The headline tentpole claim, run only where greenlet is installed:
    the fast backend is observationally identical to the portable one."""
    pytest.importorskip("greenlet")
    for seed in range(3):
        a, _ = run_quickstart_workload(faults=hostile_plan(seed),
                                       reliable=True, backend="thread")
        b, _ = run_quickstart_workload(faults=hostile_plan(seed),
                                       reliable=True, backend="greenlet")
        assert a == b, f"seed {seed}: greenlet trace diverged from thread"
