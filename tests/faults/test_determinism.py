"""Determinism regression (satellite): the quickstart workload, traced.

Two runs with the same configuration — including the same fault seed —
must produce byte-identical traces; changing the seed must change the
trace.  This is the property that makes every fuzz failure reproducible
from its seed alone.
"""

from __future__ import annotations

from tests.faults.harness import hostile_plan, run_quickstart_workload


def test_quickstart_trace_identical_without_faults():
    a, replies_a = run_quickstart_workload()
    b, replies_b = run_quickstart_workload()
    assert replies_a == replies_b == 3
    assert a == b


def test_quickstart_trace_identical_with_same_fault_seed():
    a, ra = run_quickstart_workload(faults=hostile_plan(6), reliable=True)
    b, rb = run_quickstart_workload(faults=hostile_plan(6), reliable=True)
    assert ra == rb == 3
    assert a == b


def test_quickstart_trace_differs_across_fault_seeds():
    """Different seeds inject different faults, which must be visible in
    the trace (retransmits, fault events, arrival times)."""
    traces = set()
    for seed in range(4):
        t, replies = run_quickstart_workload(faults=hostile_plan(seed),
                                             reliable=True)
        assert replies == 3  # delivery still exact for every seed
        traces.add(t)
    assert len(traces) > 1
