"""Unit tests for the seeded fault injector itself (no reliability)."""

from __future__ import annotations

import pytest

from repro import FaultPlan, FaultSpec, Machine, api
from repro.core.errors import SimulationError
from repro.sim.models import GENERIC


def _decisions(plan: FaultPlan, n: int = 200):
    return [plan.decide(0, 1) for _ in range(n)]


class TestFaultPlanDeterminism:
    def test_same_seed_same_decisions(self):
        a = _decisions(FaultPlan(42, drop=0.2, duplicate=0.15, delay=0.2,
                                 reorder=0.25, corrupt=0.1))
        b = _decisions(FaultPlan(42, drop=0.2, duplicate=0.15, delay=0.2,
                                 reorder=0.25, corrupt=0.1))
        assert a == b

    def test_different_seed_different_decisions(self):
        a = _decisions(FaultPlan(1, drop=0.3, reorder=0.3))
        b = _decisions(FaultPlan(2, drop=0.3, reorder=0.3))
        assert a != b

    def test_zero_rates_are_transparent(self):
        plan = FaultPlan(7)
        for dropped, corrupted, copies in _decisions(plan, 50):
            assert not dropped
            assert not corrupted
            assert copies == [(0.0, True, None)]


class TestFaultSpec:
    def test_validate_rejects_bad_rates(self):
        with pytest.raises(SimulationError):
            FaultSpec(drop=1.5).validate()
        with pytest.raises(SimulationError):
            FaultSpec(duplicate=-0.1).validate()
        with pytest.raises(SimulationError):
            FaultSpec(delay=0.5, delay_max=-1e-6).validate()

    def test_plan_validates_on_construction(self):
        with pytest.raises(SimulationError):
            FaultPlan(0, drop=2.0)
        with pytest.raises(SimulationError):
            FaultPlan(0, links={(0, 1): FaultSpec(corrupt=7.0)})

    def test_per_link_override(self):
        plan = FaultPlan(0, drop=0.0,
                         links={(0, 1): FaultSpec(drop=1.0)})
        assert plan.spec_for(0, 1).drop == 1.0
        assert plan.spec_for(1, 0).drop == 0.0
        # the overridden link drops every packet, the default link none
        assert all(plan.decide(0, 1)[0] for _ in range(20))
        assert not any(plan.decide(1, 0)[0] for _ in range(20))


class TestFaultStats:
    def test_stats_count_injected_faults(self):
        plan = FaultPlan(3, drop=0.5)
        n = 400
        drops = sum(1 for _ in range(n) if plan.decide(0, 1)[0])
        assert plan.stats.packets == n
        assert plan.stats.drops == drops
        assert 0 < drops < n  # seeded coin is not degenerate
        assert plan.stats.per_link[(0, 1)] == drops

    def test_machine_rejects_non_plan(self):
        with pytest.raises(SimulationError):
            Machine(2, faults=object())


class TestZeroOverheadPath:
    def test_default_machine_has_no_fault_plan(self):
        with Machine(2, model=GENERIC) as m:
            assert m.fault_plan is None
            assert m.network.fault_plan is None
            assert m.reliable_config is None
            for pe in range(2):
                assert m.runtime(pe).reliable is None

    def test_lossless_plan_changes_nothing_observable(self):
        """A no-fault plan routed through the fault branch must deliver
        the same payloads at the same virtual times as no plan at all."""

        def run(faults):
            with Machine(2, model=GENERIC, faults=faults) as m:
                seen = []

                def main():
                    me = api.CmiMyPe()

                    def on_msg(msg):
                        seen.append((api.CmiWallTimer(), msg.payload))
                        api.CsdExitScheduler()

                    h = api.CmiRegisterHandler(on_msg, "t.msg")
                    if me == 0:
                        api.CmiSyncSend(1, api.CmiNew(h, "x"))
                    else:
                        api.CsdScheduler(-1)

                m.launch(main)
                m.run()
                return seen

        assert run(None) == run(FaultPlan(9))
