"""Crash-fault seed sweep: the fuzz harness extended with whole-PE
crashes (tentpole acceptance + the ``make fuzz`` satellite).

Every seed names one deterministic hostile schedule — link faults (drop
+ duplication) *and* one mid-run PE crash whose time is derived from the
seed, so the sweep covers crashes in the cold-start region, mid-run, and
near the natural end of the workload.  The recovery protocol must give
results identical to the fault-free run, and the whole failure/recovery
sequence must replay byte-identically for the same seed.
"""

from __future__ import annotations

import pytest

from repro.sim.machine import Machine
from tests.faults.conftest import MP_TIMEOUT, mp_sweep_guard
from tests.faults.harness import (
    crashy_plan,
    run_ft_all2all,
    run_ft_pingpong,
    trace_bytes,
)
from tests.faults import workers_mp


def _crash_at(seed: int) -> float:
    """A seed-derived crash time spread over [80us, 1.3ms] — early
    crashes hit the pre-first-checkpoint (cold recovery) window, late
    ones land after most traffic has drained."""
    return (80 + 97 * (seed % 13)) * 1e-6


def _mp_crash_at(seed: int) -> float:
    """The mp twin of :func:`_crash_at`: CrashSpec times on the mp layer
    are wall-clock seconds from the start of run(), so the sweep spreads
    real SIGKILLs over [60ms, 180ms] of a ~quarter-second workload."""
    return 0.06 + 0.04 * (seed % 4)


def _recoveries(metrics: dict) -> float:
    return metrics["ft.recoveries"]["total"]


def _run_mp_ft(num_pes, fn, *args, faults):
    """One mp machine run with faults + reliable + ft; returns
    ``(reason, results, metrics)`` (metrics merge at shutdown)."""
    from repro.ft.config import FTConfig

    m = Machine(num_pes, machine_backend="mp", faults=faults, reliable=True,
                ft=FTConfig(), metrics=True, timeout=MP_TIMEOUT)
    try:
        m.launch(fn, *args)
        reason = m.run()
        results = m.results()
    finally:
        m.shutdown()
    return reason, results, m.metrics_snapshot()


def test_ft_pingpong_survives_crash(fault_seed, sim_backend, machine_backend):
    if machine_backend == "mp":
        mp_sweep_guard(machine_backend, fault_seed, sim_backend)
        plan = crashy_plan(fault_seed, crash_pe=1,
                           crash_at=_mp_crash_at(fault_seed),
                           restart_after=0.05)
        rounds = 30
        reason, res, met = _run_mp_ft(
            2, workers_mp.w_ft_pingpong, rounds, 8, 0.003, faults=plan)
        assert reason == "quiescent"
        # Fault-free-identical recovery: the exact fault-free sequences.
        assert res[0] == list(range(1, 2 * rounds, 2))
        assert res[1] == list(range(0, 2 * rounds, 2))
        assert _recoveries(met) == 1
        return
    plan = crashy_plan(fault_seed, crash_pe=1, crash_at=_crash_at(fault_seed))
    r = run_ft_pingpong(rounds=30, faults=plan, backend=sim_backend)
    assert r["reason"] == "quiescent"
    assert r["recv"] == r["expected"]
    assert _recoveries(r["metrics"]) == 1


def test_ft_all2all_survives_crash(fault_seed, sim_backend, machine_backend):
    if machine_backend == "mp":
        mp_sweep_guard(machine_backend, fault_seed, sim_backend)
        crash_pe = fault_seed % 4
        plan = crashy_plan(fault_seed, crash_pe=crash_pe,
                           crash_at=_mp_crash_at(fault_seed),
                           restart_after=0.05)
        count = 8
        reason, res, met = _run_mp_ft(
            4, workers_mp.w_ft_all2all, count, 6, 0.004, faults=plan)
        assert reason == "quiescent"
        # Delivery multiset equality under reliable: every PE holds
        # exactly 0..count-1 from every other PE, per-sender FIFO.
        for pe in range(4):
            expected = {src: list(range(count)) for src in range(4)
                        if src != pe}
            got = {int(src): v for src, v in res[pe].items()}
            assert got == expected, f"PE {pe}: {got}"
        assert _recoveries(met) == 1
        return
    crash_pe = fault_seed % 4
    plan = crashy_plan(fault_seed, crash_pe=crash_pe,
                       crash_at=_crash_at(fault_seed))
    r = run_ft_all2all(num_pes=4, count=5, faults=plan, backend=sim_backend)
    assert r["reason"] == "quiescent"
    assert r["recv"] == r["expected"]
    assert _recoveries(r["metrics"]) == 1


def test_ft_pingpong_survives_permanent_detection_window(fault_seed):
    """A crash with no restart: peers must *detect* the failure (fire
    the down verdict) and the machine must still drain to quiescence
    rather than retransmitting into the dead PE forever."""
    plan = crashy_plan(fault_seed, crash_pe=1,
                       crash_at=_crash_at(fault_seed), restart_after=None)
    r = run_ft_pingpong(rounds=30, faults=plan)
    assert r["reason"] == "quiescent"
    assert r["metrics"]["ft.failures_detected"]["total"] >= 1
    assert _recoveries(r["metrics"]) == 0
    # The survivor observed a correct prefix of the fault-free sequence.
    survivor = r["recv"][0]
    assert survivor == r["expected"][0][:len(survivor)]


@pytest.mark.parametrize("seed", range(5))
def test_crash_recovery_trace_deterministic(seed):
    """Same seed -> byte-identical trace through the whole crash,
    detection and recovery sequence (satellite: crash-fault determinism
    in the fuzz harness)."""
    plan_a = crashy_plan(seed, crash_pe=1, crash_at=_crash_at(seed))
    plan_b = crashy_plan(seed, crash_pe=1, crash_at=_crash_at(seed))
    a = run_ft_pingpong(rounds=12, faults=plan_a, trace=True)
    b = run_ft_pingpong(rounds=12, faults=plan_b, trace=True)
    assert trace_bytes(a["tracer"]) == trace_bytes(b["tracer"])


@pytest.mark.parametrize("seed", range(3))
def test_ft_trace_records_failure_and_recovery(seed):
    plan = crashy_plan(seed, crash_pe=1, crash_at=_crash_at(seed))
    r = run_ft_pingpong(rounds=12, faults=plan, trace="memory")
    kinds = {e.kind for e in r["tracer"].events}
    assert "ft_failure" in kinds
    assert "ft_recover" in kinds
    assert "ft_checkpoint" in kinds
