"""Crash-fault seed sweep: the fuzz harness extended with whole-PE
crashes (tentpole acceptance + the ``make fuzz`` satellite).

Every seed names one deterministic hostile schedule — link faults (drop
+ duplication) *and* one mid-run PE crash whose time is derived from the
seed, so the sweep covers crashes in the cold-start region, mid-run, and
near the natural end of the workload.  The recovery protocol must give
results identical to the fault-free run, and the whole failure/recovery
sequence must replay byte-identically for the same seed.
"""

from __future__ import annotations

import pytest

from tests.faults.harness import (
    crashy_plan,
    run_ft_all2all,
    run_ft_pingpong,
    trace_bytes,
)


def _crash_at(seed: int) -> float:
    """A seed-derived crash time spread over [80us, 1.3ms] — early
    crashes hit the pre-first-checkpoint (cold recovery) window, late
    ones land after most traffic has drained."""
    return (80 + 97 * (seed % 13)) * 1e-6


def _recoveries(metrics: dict) -> float:
    return metrics["ft.recoveries"]["total"]


def test_ft_pingpong_survives_crash(fault_seed, sim_backend):
    plan = crashy_plan(fault_seed, crash_pe=1, crash_at=_crash_at(fault_seed))
    r = run_ft_pingpong(rounds=30, faults=plan, backend=sim_backend)
    assert r["reason"] == "quiescent"
    assert r["recv"] == r["expected"]
    assert _recoveries(r["metrics"]) == 1


def test_ft_all2all_survives_crash(fault_seed, sim_backend):
    crash_pe = fault_seed % 4
    plan = crashy_plan(fault_seed, crash_pe=crash_pe,
                       crash_at=_crash_at(fault_seed))
    r = run_ft_all2all(num_pes=4, count=5, faults=plan, backend=sim_backend)
    assert r["reason"] == "quiescent"
    assert r["recv"] == r["expected"]
    assert _recoveries(r["metrics"]) == 1


def test_ft_pingpong_survives_permanent_detection_window(fault_seed):
    """A crash with no restart: peers must *detect* the failure (fire
    the down verdict) and the machine must still drain to quiescence
    rather than retransmitting into the dead PE forever."""
    plan = crashy_plan(fault_seed, crash_pe=1,
                       crash_at=_crash_at(fault_seed), restart_after=None)
    r = run_ft_pingpong(rounds=30, faults=plan)
    assert r["reason"] == "quiescent"
    assert r["metrics"]["ft.failures_detected"]["total"] >= 1
    assert _recoveries(r["metrics"]) == 0
    # The survivor observed a correct prefix of the fault-free sequence.
    survivor = r["recv"][0]
    assert survivor == r["expected"][0][:len(survivor)]


@pytest.mark.parametrize("seed", range(5))
def test_crash_recovery_trace_deterministic(seed):
    """Same seed -> byte-identical trace through the whole crash,
    detection and recovery sequence (satellite: crash-fault determinism
    in the fuzz harness)."""
    plan_a = crashy_plan(seed, crash_pe=1, crash_at=_crash_at(seed))
    plan_b = crashy_plan(seed, crash_pe=1, crash_at=_crash_at(seed))
    a = run_ft_pingpong(rounds=12, faults=plan_a, trace=True)
    b = run_ft_pingpong(rounds=12, faults=plan_b, trace=True)
    assert trace_bytes(a["tracer"]) == trace_bytes(b["tracer"])


@pytest.mark.parametrize("seed", range(3))
def test_ft_trace_records_failure_and_recovery(seed):
    plan = crashy_plan(seed, crash_pe=1, crash_at=_crash_at(seed))
    r = run_ft_pingpong(rounds=12, faults=plan, trace="memory")
    kinds = {e.kind for e in r["tracer"].events}
    assert "ft_failure" in kinds
    assert "ft_recover" in kinds
    assert "ft_checkpoint" in kinds
