"""The schedule-fuzzing seed sweep (tentpole part 4).

Every test takes a ``fault_seed`` parameter which ``conftest.py``
parametrizes over ``range(--seeds)`` (default 25).  Each seed drives a
hostile network — drop 0.2, plus duplication, delay, reorder and
corruption — under which the reliability layer must still give every
workload exactly-once, per-sender-FIFO delivery and correct quiescence.

The sweep also runs per machine layer: the simulator legs keep their
full-determinism assertions; the mp legs (reduced seed count, see
``conftest.MP_SWEEP_SEEDS``) run the same workloads over real sockets
with the hub injecting the same seeded fault plan, asserting the
delivery and conservation invariants.
"""

from __future__ import annotations

import pytest

from repro.sim.machine import Machine
from tests.faults.conftest import MP_TIMEOUT, mp_sweep_guard
from tests.faults.harness import (
    hostile_plan,
    run_broadcast,
    run_pingpong,
    run_quiescence,
    trace_bytes,
)
from tests.faults import workers_mp


def _run_mp(num_pes, fn, *args, **kwargs):
    kwargs.setdefault("timeout", MP_TIMEOUT)
    m = Machine(num_pes, machine_backend="mp", reliable=True, **kwargs)
    try:
        m.launch(fn, *args)
        reason = m.run()
        return reason, m.results()
    finally:
        m.shutdown()


def test_pingpong_exactly_once(fault_seed, sim_backend, machine_backend):
    if machine_backend == "mp":
        mp_sweep_guard(machine_backend, fault_seed, sim_backend)
        reason, res = _run_mp(2, workers_mp.w_fuzz_pingpong, 8,
                              faults=hostile_plan(fault_seed))
        assert reason == "quiescent"
        assert res[0] == list(range(1, 16, 2))
        assert res[1] == list(range(0, 16, 2))
        return
    r = run_pingpong(rounds=8, faults=hostile_plan(fault_seed),
                     reliable=True, backend=sim_backend)
    assert r["reason"] == "quiescent"
    assert r["recv"] == r["expected"]
    # the protocol must fully drain: nothing left awaiting an ack
    stats = r["rel_stats"]
    assert stats[0].delivered + stats[1].delivered == 16


def test_broadcast_exactly_once_in_order(fault_seed, sim_backend,
                                         machine_backend):
    if machine_backend == "mp":
        mp_sweep_guard(machine_backend, fault_seed, sim_backend)
        reason, res = _run_mp(4, workers_mp.w_fuzz_broadcast, 6,
                              faults=hostile_plan(fault_seed))
        assert reason == "quiescent"
        for pe in range(1, 4):
            assert res[pe] == list(range(6)), f"PE {pe}: {res[pe]}"
        return
    r = run_broadcast(num_pes=4, count=6, faults=hostile_plan(fault_seed),
                      reliable=True, backend=sim_backend)
    assert r["reason"] == "quiescent"
    for pe in range(1, 4):
        assert r["recv"][pe] == r["expected"], f"PE {pe}: {r['recv'][pe]}"


def test_quiescence_correct_under_faults(fault_seed, sim_backend,
                                         machine_backend):
    if machine_backend == "mp":
        mp_sweep_guard(machine_backend, fault_seed, sim_backend)
        # Machine-wide conservation: the relay tally across all real
        # processes must equal the exactly-once total — a drop leaves it
        # short, a duplicate overshoots.
        reason, res = _run_mp(4, workers_mp.w_fuzz_relay, 2, 4,
                              faults=hostile_plan(fault_seed))
        assert reason == "quiescent"
        assert sum(res) == 4 * 2 * (4 + 1), res
        return
    r = run_quiescence(num_pes=4, seeds_per_pe=2, ttl=4,
                       faults=hostile_plan(fault_seed), reliable=True,
                       backend=sim_backend)
    assert r["reason"] == "quiescent"
    assert r["total_handled"] == r["expected_total"], r["handled"]
    assert r["declared"] == 1


@pytest.mark.parametrize("seed", range(5))
def test_pingpong_trace_identical_for_same_seed(seed):
    """Same seed -> byte-identical trace (full determinism, not just the
    same answers).  A fixed handful of seeds keeps the sweep quick."""
    a = run_pingpong(rounds=6, faults=hostile_plan(seed),
                     reliable=True, trace=True)
    b = run_pingpong(rounds=6, faults=hostile_plan(seed),
                     reliable=True, trace=True)
    assert trace_bytes(a["tracer"]) == trace_bytes(b["tracer"])
