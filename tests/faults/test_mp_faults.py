"""Real faults for real processes: mp-layer-specific robustness tests.

The parametrized sweeps in ``test_fuzz_workloads.py`` and
``test_ft_crash.py`` run the shared invariants on every machine layer;
this file pins the behaviours only the multiprocess layer has — real
SIGKILLs, structured unscheduled-death reporting, the message-pool
default rule on the mp construction path, and epoch bookkeeping across
a respawn.
"""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError, WorkerDied
from repro.ft.config import FTConfig
from repro.machine.base import (
    machine_backend_available,
    machine_backend_unavailable_reason,
)
from repro.sim.machine import Machine
from repro.sim.network import CrashSpec, FaultPlan

from tests.faults import workers_mp

pytestmark = [
    pytest.mark.skipif(
        not machine_backend_available("mp"),
        reason=f"mp layer unavailable: {machine_backend_unavailable_reason('mp')}",
    ),
]

MP_TIMEOUT = 120.0


def test_unscheduled_worker_death_is_structured():
    """A worker dying outside any crash schedule (torn socket / EOF)
    must degrade into a ``WorkerDied`` carrying the PE id and
    flight-recorder evidence — not an opaque ``SimulationError``."""
    m = Machine(3, machine_backend="mp", timeout=MP_TIMEOUT)
    m.launch(workers_mp.w_suicide, 1)
    with pytest.raises(WorkerDied) as exc_info:
        m.run()
    err = exc_info.value
    assert err.pe == 1
    assert isinstance(err, SimulationError)  # stays catchable as before
    msg = str(err)
    assert "died unexpectedly" in msg
    # The flight recorder names every PE's last health snapshot.
    assert "pe0:" in msg and "pe2:" in msg
    m.shutdown()


def test_sigkill_midrun_recovers_to_fault_free_results():
    """The acceptance crash: SIGKILL a real worker process mid-run; the
    heartbeat ring detects it, the hub respawns a fresh process, and
    buddy-checkpoint recovery finishes with application results
    identical to a fault-free run."""
    rounds = 40
    expected = [
        list(range(1, 2 * rounds, 2)),  # PE 0 sees the odd balls
        list(range(0, 2 * rounds, 2)),  # PE 1 the even ones
    ]

    # Fault-free baseline on the same layer.
    m = Machine(2, machine_backend="mp", reliable=True, ft=FTConfig(),
                metrics=True, timeout=MP_TIMEOUT)
    m.launch(workers_mp.w_ft_pingpong, rounds, 8, 0.002)
    m.run()
    baseline = m.results()
    m.shutdown()
    assert baseline == expected

    # Same workload, now with a real mid-run SIGKILL + respawn.
    plan = FaultPlan(seed=11, drop=0.05, duplicate=0.05,
                     crashes=[CrashSpec(pe=1, at=0.12, restart_after=0.05)])
    m = Machine(2, machine_backend="mp", faults=plan, reliable=True,
                ft=FTConfig(), metrics=True, timeout=MP_TIMEOUT)
    m.launch(workers_mp.w_ft_pingpong, rounds, 8, 0.002)
    assert m.run() == "quiescent"
    crashed = m.results()
    assert crashed == baseline == expected
    # Epoch bookkeeping: PE 1 really was respawned (restart-with-amnesia
    # bumps the incarnation number); PE 0 never died.
    assert m._epochs[1] >= 1
    assert m._epochs[0] == 0
    m.shutdown()
    met = m.metrics_snapshot()
    assert met["ft.recoveries"]["total"] >= 1


def test_permanent_crash_detected_and_drains():
    """A SIGKILL with no restart: survivors must fire the down verdict
    and the machine must still drain to quiescence instead of
    retransmitting into the dead PE forever."""
    plan = FaultPlan(seed=5,
                     crashes=[CrashSpec(pe=1, at=0.08, restart_after=None)])
    m = Machine(2, machine_backend="mp", faults=plan, reliable=True,
                ft=FTConfig(), metrics=True, timeout=MP_TIMEOUT)
    # Long enough that the crash lands mid-run (~0.48 s of sleeps).
    m.launch(workers_mp.w_ft_pingpong, 120, 8, 0.004)
    assert m.run() == "quiescent"
    m.shutdown()
    met = m.metrics_snapshot()
    assert met["ft.failures_detected"]["total"] >= 1
    assert met.get("ft.recoveries", {}).get("total", 0) == 0


def test_mp_pool_default_rule():
    """Satellite: the simulator's knob-resolution rule applies on the mp
    construction path too — pooling defaults *off* under an unreliable
    fault plan (fault-injected payloads outlive the handler via
    duplicates/delays), stays on otherwise, and an explicit pool=True
    always wins."""
    plan = FaultPlan(seed=1, drop=0.2, duplicate=0.15)

    m = Machine(2, machine_backend="mp")
    assert m.msg_pooling is True
    m.shutdown()

    m = Machine(2, machine_backend="mp", faults=plan)  # unreliable faults
    assert m.msg_pooling is False
    m.shutdown()

    m = Machine(2, machine_backend="mp", faults=plan, reliable=True)
    assert m.msg_pooling is True
    m.shutdown()

    m = Machine(2, machine_backend="mp", faults=plan, pool=True)
    assert m.msg_pooling is True
    m.shutdown()
