"""Unit tests for the whole-PE failure model beneath the ft layer: the
node down state, machine-driven crash/restart injection, the structured
:class:`RetryExhaustedError`, and timer hygiene on close/shutdown."""

from __future__ import annotations

import pytest

from repro import CrashSpec, FaultPlan, FaultSpec, FTConfig, Machine, api
from repro.core.errors import (
    RetryExhaustedError,
    SimulationError,
)
from repro.machine.cmi import ReliableConfig


def _drop_all_data():
    """A plan whose 0 -> 1 link black-holes everything: a pending packet
    from PE 0 is never acked, so its retransmission timer stays armed."""
    return FaultPlan(0, links={(0, 1): FaultSpec(drop=1.0)})


class TestNodeDownState:
    def test_deliveries_to_a_dead_pe_vanish(self):
        with Machine(2) as m:
            got = []

            def main():
                if api.CmiMyPe() == 0:
                    h = api.CmiRegisterHandler(got.append, "t.sink")
                    api.CmiSyncSend(1, api.CmiNew(h, "x"))
                    api.CmiSyncSend(1, api.CmiNew(h, "y"))

            node1 = m.node(1)
            node1.fail()
            m.launch_on(0, main)
            m.run()
            assert got == []
            assert node1.dropped_while_down == 2
            assert len(node1.inbox) == 0

    def test_fail_and_restart_guards_and_epoch(self):
        with Machine(2) as m:
            node = m.node(1)
            assert node.up and node.epoch == 0
            with pytest.raises(SimulationError):
                node.restart()  # not down
            node.fail()
            assert not node.up
            assert node.crashed_at == m.now
            with pytest.raises(SimulationError):
                node.fail()  # already down
            node.restart()
            assert node.up and node.epoch == 1

    def test_crash_clears_software_state(self):
        with Machine(2) as m:
            node = m.node(1)
            key = node.alloc(16)
            node.memory[key][0] = 7
            node.fail()
            assert node.memory == {}
            assert node.runtime is None
            assert node._interceptors is None


class TestCrashInjectionWithoutFt:
    def test_permanent_crash_kills_the_pe_mid_run(self):
        """No ft, no reliability: the victim's deliveries just stop."""
        plan = FaultPlan(0, crashes=[CrashSpec(1, 60e-6, None)])
        with Machine(2, faults=plan) as m:
            recv = []

            def main():
                me = api.CmiMyPe()

                def on_msg(msg):
                    recv.append(msg.payload)

                h = api.CmiRegisterHandler(on_msg, "t.tick")
                if me == 0:
                    for i in range(6):
                        api.CmiSyncSend(1, api.CmiNew(h, i))
                        api.CmiCharge(20e-6)
                else:
                    api.CsdScheduler(-1)

            m.launch(main)
            m.run()
            assert not m.node(1).up
            assert 0 < len(recv) < 6
            assert m.node(1).dropped_while_down > 0

    def test_restart_respawns_main_with_amnesia(self):
        plan = FaultPlan(0, crashes=[CrashSpec(1, 50e-6, 30e-6)])
        with Machine(2, faults=plan) as m:
            boots = []

            def main():
                boots.append((api.CmiMyPe(), api.CftRestarting()))

            m.launch(main)
            m.run()
            # PE 1's main ran twice: epoch 0, then the post-restart
            # incarnation which can tell it is a reboot.
            assert boots == [(0, False), (1, False), (1, True)]
            assert m.node(1).epoch == 1

    def test_reliable_sender_raises_structured_retry_exhausted(self):
        """Without a failure detector, a dead peer surfaces as a
        RetryExhaustedError carrying the full give-up context."""
        plan = FaultPlan(0, crashes=[CrashSpec(1, 30e-6, None)])
        rel = ReliableConfig(rto=40e-6, max_retries=3)
        with Machine(2, faults=plan, reliable=rel) as m:

            def main():
                me = api.CmiMyPe()
                h = api.CmiRegisterHandler(lambda msg: None, "t.noop")
                if me == 0:
                    api.CmiCharge(60e-6)  # outlive the victim
                    api.CmiSyncSend(1, api.CmiNew(h, "hello"))
                api.CsdScheduler(-1)

            m.launch(main)
            with pytest.raises(RetryExhaustedError) as exc:
                m.run()
            err = exc.value
            assert err.src == 0
            assert err.dst == 1
            assert err.seq == 0
            assert err.retries == 3
            assert err.elapsed > 0
            assert err.stats is not None and err.stats.retransmits == 3
            assert "PE 1" in str(err)


class TestCloseCancelsTimers:
    def test_rel_close_mid_retransmit_disarms_everything(self):
        """Closing the reliable layer while a retransmission is in flight
        must cancel its timer: the machine then reaches quiescence
        instead of retransmitting into a black hole forever."""
        with Machine(2, faults=_drop_all_data(), reliable=True) as m:

            def main():
                me = api.CmiMyPe()
                h = api.CmiRegisterHandler(lambda msg: None, "t.noop")
                if me == 0:
                    api.CmiSyncSend(1, api.CmiNew(h, "doomed"))

            m.launch(main)
            rel = m.runtime(0).reliable
            m.run(until=2e-3)
            assert rel.in_flight == 1
            assert rel.stats.retransmits > 0
            sent = rel.stats.retransmits
            pendings = list(rel._pending.values())
            rel.close()
            assert rel.in_flight == 0
            assert all(p.timer is None for p in pendings)
            # Nothing left to fire: the run drains instead of hanging.
            assert m.run() == "quiescent"
            assert rel.stats.retransmits == sent

    def test_machine_shutdown_closes_protocol_layers(self):
        plan = FaultPlan(0, links={(0, 1): FaultSpec(drop=1.0)},
                         crashes=[CrashSpec(1, 10.0)])  # keeps ft armed
        m = Machine(2, faults=plan, reliable=True, ft=FTConfig())
        try:

            def main():
                me = api.CmiMyPe()
                h = api.CmiRegisterHandler(lambda msg: None, "t.noop")
                if me == 0:
                    api.CmiSyncSend(1, api.CmiNew(h, "doomed"))

            m.launch(main)
            m.run(until=1e-3)
            rel = m.runtime(0).reliable
            agents = [m.runtime(pe).ft for pe in range(2)]
            assert rel.in_flight == 1  # genuinely mid-retransmit
            assert any(a._hb_timer is not None for a in agents)
        finally:
            m.shutdown()
        assert rel.in_flight == 0
        for a in agents:
            assert a._hb_timer is None
            assert a._monitor_timer is None
            assert a._ckpt_timer is None
            assert a._ctl_pending == {}
        assert m.engine.pending_events == 0
