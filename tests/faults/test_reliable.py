"""Unit tests for the CMI reliable-delivery layer."""

from __future__ import annotations

import pytest

from repro import FaultPlan, FaultSpec, Machine, ReliableConfig, api
from repro.core.errors import RetryExhaustedError
from repro.sim.models import GENERIC


def _one_way(faults, reliable, payloads=("a", "b", "c")):
    """PE 0 sends ``payloads`` to PE 1; returns (received, machine stats)."""
    with Machine(2, model=GENERIC, faults=faults, reliable=reliable) as m:
        got = []

        def main():
            me = api.CmiMyPe()

            def on_msg(msg):
                got.append(msg.payload)
                if len(got) == len(payloads):
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "t.msg")
            if me == 0:
                for p in payloads:
                    api.CmiSyncSend(1, api.CmiNew(h, p))
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        reason = m.run()
        rel = [m.runtime(pe).reliable for pe in range(2)]
        return got, reason, rel


def test_clean_network_delivers_with_zero_retransmits():
    got, reason, rel = _one_way(None, True)
    assert got == ["a", "b", "c"]
    assert reason == "quiescent"
    assert rel[0].stats.retransmits == 0
    assert rel[0].stats.acks_received == 3
    assert rel[1].stats.delivered == 3
    assert rel[0].in_flight == 0


def test_dropped_data_is_retransmitted():
    plan = FaultPlan(11, links={(0, 1): FaultSpec(drop=0.5)})
    got, reason, rel = _one_way(plan, True)
    assert got == ["a", "b", "c"]
    assert rel[0].stats.retransmits > 0
    assert rel[1].stats.delivered == 3
    assert rel[0].in_flight == 0


def test_lost_acks_cause_dup_suppression():
    """Drops only on the 1->0 (ack) direction: every data packet arrives,
    but lost acks force retransmits whose copies the receiver must drop."""
    plan = FaultPlan(13, links={(1, 0): FaultSpec(drop=0.6)})
    got, reason, rel = _one_way(plan, True, payloads=tuple(range(8)))
    assert got == list(range(8))
    assert rel[0].stats.retransmits > 0
    assert rel[1].stats.dup_dropped > 0
    assert rel[1].stats.delivered == 8


def test_corrupt_data_detected_and_recovered():
    plan = FaultPlan(17, links={(0, 1): FaultSpec(corrupt=0.5)})
    got, reason, rel = _one_way(plan, True, payloads=tuple(range(6)))
    assert got == list(range(6))
    assert rel[1].stats.corrupt_dropped > 0
    assert rel[1].stats.delivered == 6


def test_dead_link_raises_retry_exhausted():
    plan = FaultPlan(5, links={(0, 1): FaultSpec(drop=1.0)})
    cfg = ReliableConfig(max_retries=4)
    with pytest.raises(RetryExhaustedError):
        with Machine(2, model=GENERIC, faults=plan, reliable=cfg) as m:
            def main():
                me = api.CmiMyPe()
                h = api.CmiRegisterHandler(lambda msg: None, "t.msg")
                if me == 0:
                    api.CmiSyncSend(1, api.CmiNew(h, "doomed"))
                api.CsdScheduler(-1)

            m.launch(main)
            m.run()


def test_retry_exhaustion_is_deterministic():
    """The giveup happens at the same virtual time with the same stats on
    every run of the same seed."""
    def run_once():
        plan = FaultPlan(5, links={(0, 1): FaultSpec(drop=1.0)})
        cfg = ReliableConfig(max_retries=3)
        m = Machine(2, model=GENERIC, faults=plan, reliable=cfg)
        try:
            def main():
                me = api.CmiMyPe()
                h = api.CmiRegisterHandler(lambda msg: None, "t.msg")
                if me == 0:
                    api.CmiSyncSend(1, api.CmiNew(h, "doomed"))
                api.CsdScheduler(-1)

            m.launch(main)
            with pytest.raises(RetryExhaustedError):
                m.run()
            return (m.now, m.runtime(0).reliable.stats.retransmits,
                    m.fault_plan.stats.drops)
        finally:
            m.shutdown()

    assert run_once() == run_once()


def test_reliability_preserves_per_sender_order_under_reorder():
    plan = FaultPlan(23, links={(0, 1): FaultSpec(reorder=0.6,
                                                  reorder_max=200e-6)})
    got, reason, rel = _one_way(plan, True, payloads=tuple(range(12)))
    assert got == list(range(12))
    assert rel[1].stats.held_out_of_order > 0


def test_enable_reliability_is_idempotent():
    with Machine(2, model=GENERIC, reliable=True) as m:
        rel = m.runtime(0).reliable
        assert m.runtime(0).enable_reliability() is rel
