"""Trace well-formedness under the schedule-fuzzing harness.

Whatever hostile schedule the network serves — drops, duplicates,
reorders, corruption — the *trace* the runtime emits must stay well
formed: begin/end events strictly paired, durations non-negative, idle
markers alternating, per-PE time monotone.  The observability layer is
only trustworthy if these invariants hold on every schedule, not just
the happy path, so each property runs across the full seed sweep.
"""

from __future__ import annotations

from collections import defaultdict

from tests.faults.harness import (
    hostile_plan,
    run_broadcast,
    run_pingpong,
    run_quiescence,
)


def _traced_runs(fault_seed):
    """The three fuzz workloads, traced, under one hostile seed."""
    faults = hostile_plan(fault_seed)
    yield run_pingpong(rounds=6, faults=faults, reliable=True,
                       trace=True)["tracer"]
    faults = hostile_plan(fault_seed)
    yield run_broadcast(num_pes=4, count=4, faults=faults, reliable=True,
                        trace=True)["tracer"]
    faults = hostile_plan(fault_seed)
    yield run_quiescence(num_pes=4, seeds_per_pe=1, ttl=3, faults=faults,
                         reliable=True, trace=True)["tracer"]


def test_handler_begin_end_strictly_paired(fault_seed):
    """Per PE, handler_begin/handler_end nest like brackets: depth never
    goes negative, every begin is closed, and each span's duration is
    non-negative."""
    for tracer in _traced_runs(fault_seed):
        depth = defaultdict(int)
        begin_stack = defaultdict(list)
        for ev in tracer.events:
            if ev.kind == "handler_begin":
                depth[ev.pe] += 1
                begin_stack[ev.pe].append(ev.time)
            elif ev.kind == "handler_end":
                depth[ev.pe] -= 1
                assert depth[ev.pe] >= 0, \
                    f"pe {ev.pe}: handler_end without begin at t={ev.time}"
                t0 = begin_stack[ev.pe].pop()
                assert ev.time >= t0, \
                    f"pe {ev.pe}: negative handler duration {ev.time - t0}"
        for pe, d in depth.items():
            assert d == 0, f"pe {pe}: {d} handler_begin(s) never closed"


def test_idle_markers_alternate_per_pe(fault_seed):
    """idle_begin/idle_end alternate strictly per PE (the scheduler only
    emits them on the 0<->1 idle-depth transitions), and idle spans have
    non-negative duration."""
    for tracer in _traced_runs(fault_seed):
        idle_since = {}
        for ev in tracer.events:
            if ev.kind == "idle_begin":
                assert ev.pe not in idle_since, \
                    f"pe {ev.pe}: nested idle_begin at t={ev.time}"
                idle_since[ev.pe] = ev.time
            elif ev.kind == "idle_end":
                assert ev.pe in idle_since, \
                    f"pe {ev.pe}: idle_end without idle_begin at t={ev.time}"
                assert ev.time >= idle_since.pop(ev.pe)


def test_per_pe_timestamps_monotone(fault_seed):
    """Events on one PE appear in non-decreasing virtual-time order."""
    for tracer in _traced_runs(fault_seed):
        last = defaultdict(lambda: float("-inf"))
        for ev in tracer.events:
            assert ev.time >= last[ev.pe], (
                f"pe {ev.pe}: time went backwards "
                f"{last[ev.pe]} -> {ev.time} at {ev.kind}"
            )
            last[ev.pe] = ev.time
