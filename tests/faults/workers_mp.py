"""Module-level SPMD workloads for the mp legs of the fault sweeps.

The multiprocess layer ships launch specs to worker processes by
(picklable) reference, so the closure-based runners in ``harness.py``
cannot cross the machine boundary.  These are the same workloads
rewritten in the conformance-worker idiom: module-level functions that
communicate results exclusively through their return values
(``machine.results()``).

The mp legs assert *invariants* — delivery multiset/sequence equality
under the reliable layer, machine-wide conservation, fault-free-
identical recovery results — rather than the simulator's byte-identical
traces: real sockets and real SIGKILLs do not replay deterministically.
"""

from __future__ import annotations

import time

from repro.core import api


def w_fuzz_pingpong(rounds):
    """PE 0 and PE 1 bounce one numbered ball ``2 * rounds`` hops; under
    exactly-once, per-sender-FIFO delivery each PE observes exactly the
    even (resp. odd) numbers in increasing order.  Returns this PE's
    receive sequence."""
    me = api.CmiMyPe()
    other = 1 - me
    mine = []

    def on_ball(msg):
        n = msg.payload
        mine.append(n)
        if n + 1 < 2 * rounds:
            api.CmiSyncSend(other, api.CmiNew(h_ball, n + 1))
        if len(mine) == rounds:
            api.CsdExitScheduler()

    h_ball = api.CmiRegisterHandler(on_ball, "fuzz.ball")
    if me == 0:
        api.CmiSyncSend(1, api.CmiNew(h_ball, 0))
    api.CsdScheduler(-1)
    return list(mine)


def w_fuzz_broadcast(count):
    """PE 0 broadcasts ``count`` numbered messages; every other PE must
    receive exactly ``0 .. count-1`` in order and returns its sequence."""
    me = api.CmiMyPe()
    mine = []

    def on_msg(msg):
        mine.append(msg.payload)
        if len(mine) == count:
            api.CsdExitScheduler()

    h = api.CmiRegisterHandler(on_msg, "fuzz.bcast")
    if me == 0:
        for i in range(count):
            api.CmiSyncBroadcast(api.CmiNew(h, i))
        return None
    api.CsdScheduler(-1)
    return list(mine)


def w_fuzz_relay(seeds_per_pe, ttl):
    """Every PE injects ``seeds_per_pe`` relays that hop the ring ``ttl``
    further times; every delivery acks PE 0, which broadcasts a stop once
    the full tally (``num_pes * seeds_per_pe * (ttl + 1)``) is in.

    A dropped relay (undetected loss) hangs the tally short; a duplicate
    overshoots it — the conservation invariant is ``sum(returned
    handled counts) == expected total``."""
    me = api.CmiMyPe()
    n = api.CmiNumPes()
    expected_total = n * seeds_per_pe * (ttl + 1)
    state = {"handled": 0, "acks": 0}

    def on_relay(msg):
        state["handled"] += 1
        remaining = msg.payload
        api.CmiSyncSend(0, api.CmiNew(h_ack, None, size=8))
        if remaining > 0:
            api.CmiSyncSend((me + 1) % n, api.CmiNew(h_relay, remaining - 1))

    def on_ack(_msg):
        state["acks"] += 1
        if state["acks"] >= expected_total:
            api.CmiSyncBroadcastAll(api.CmiNew(h_stop, None, size=8))

    def on_stop(_msg):
        api.CsdExitScheduler()

    h_relay = api.CmiRegisterHandler(on_relay, "fuzz.relay")
    h_ack = api.CmiRegisterHandler(on_ack, "fuzz.relay-ack")
    h_stop = api.CmiRegisterHandler(on_stop, "fuzz.relay-stop")
    for _ in range(seeds_per_pe):
        api.CmiSyncSend((me + 1) % n, api.CmiNew(h_relay, ttl))
    api.CsdScheduler(-1)
    return state["handled"]


def w_suicide(victim_pe):
    """The victim SIGKILLs its own process mid-run — an *unscheduled*
    death (no CrashSpec, no ft): the hub must surface a structured
    ``WorkerDied`` naming the PE, not an opaque hang or traceback."""
    import os
    import signal

    me = api.CmiMyPe()
    if me == victim_pe:
        time.sleep(0.2)
        os.kill(os.getpid(), signal.SIGKILL)
    api.CsdScheduler(-1)


def w_ft_pingpong(rounds, checkpoint_every=8, sleep_s=0.002):
    """The crash-surviving ping-pong written against the ``Cft*`` API
    (the mp twin of ``harness.run_ft_pingpong``).  ``sleep_s`` stretches
    each handler so a wall-clock ``CrashSpec`` lands mid-run rather than
    after the natural drain.  Returns this PE's receive sequence, which
    must equal the fault-free run's exactly."""
    me = api.CmiMyPe()
    other = 1 - me
    mine = []

    def on_ball(msg):
        n = msg.payload
        mine.append(n)
        if sleep_s:
            time.sleep(sleep_s)
        if n + 1 < 2 * rounds:
            api.CmiSyncSend(other, api.CmiNew(h_ball, n + 1))
        if checkpoint_every and len(mine) % checkpoint_every == 0:
            api.CftCheckpoint()
        if len(mine) == rounds:
            api.CsdExitScheduler()

    h_ball = api.CmiRegisterHandler(on_ball, "ft.ball")
    api.CftInit(lambda: list(mine),
                lambda state: mine.__setitem__(slice(None), state))

    def init_sends():
        if me == 0:
            api.CmiSyncSend(1, api.CmiNew(h_ball, 0))

    if api.CftRestarting():
        if not api.CftRecover():
            # Cold start: no checkpoint existed.  Redo the fault-free
            # initialization; replay + dedup reconcile anything peers
            # already saw.
            mine.clear()
            init_sends()
    else:
        init_sends()
    api.CsdScheduler(-1)
    return list(mine)


def w_ft_all2all(count, checkpoint_every=6, sleep_s=0.002):
    """Crash-surviving all-to-all (the mp twin of
    ``harness.run_ft_all2all``): every PE sends ``count`` numbered
    messages to every other PE, checkpoints its spontaneous
    initialization sends, and exits once ``count * (n - 1)`` arrived.
    Returns ``{src: [i, ...]}`` which must match the fault-free run."""
    me, n = api.CmiMyPe(), api.CmiNumPes()
    mine = {src: [] for src in range(n) if src != me}
    state = {"seen": 0}
    total = count * (n - 1)

    def on_msg(msg):
        src, i = msg.payload
        mine[src].append(i)
        state["seen"] += 1
        if sleep_s:
            time.sleep(sleep_s)
        if checkpoint_every and state["seen"] % checkpoint_every == 0:
            api.CftCheckpoint()
        if state["seen"] == total:
            api.CsdExitScheduler()

    h = api.CmiRegisterHandler(on_msg, "ft.a2a")

    def pack():
        return ({src: list(v) for src, v in mine.items()}, state["seen"])

    def unpack(snapshot):
        blobs, seen = snapshot
        for src, v in blobs.items():
            mine[src][:] = v
        state["seen"] = seen

    def init_sends():
        for step in range(1, n):
            dst = (me + step) % n
            for i in range(count):
                api.CmiSyncSend(dst, api.CmiNew(h, (me, i)))

    api.CftInit(pack, unpack)
    if api.CftRestarting():
        if not api.CftRecover():
            for v in mine.values():
                v.clear()
            state["seen"] = 0
            init_sends()
            api.CftCheckpoint()
    else:
        init_sends()
        api.CftCheckpoint()
    api.CsdScheduler(-1)
    return {src: list(v) for src, v in mine.items()}
