"""Importable test helpers (fixtures live in ``conftest.py``)."""

from __future__ import annotations

from typing import Any, Callable, List

from repro.sim.machine import Machine
from repro.sim.models import GENERIC, MachineModel

__all__ = ["run_on", "run_spmd_collect"]


def run_on(num_pes: int, fn: Callable[[], Any], *,
           model: MachineModel = GENERIC, pe: int = 0,
           **machine_kwargs: Any) -> Any:
    """Run ``fn`` on a single PE of a fresh machine; return its result."""
    with Machine(num_pes, model=model, **machine_kwargs) as m:
        t = m.launch_on(pe, fn)
        m.run()
        assert t.finished, "main did not finish (deadlock?)"
        if t.error is not None:
            raise t.error
        return t.result


def run_spmd_collect(num_pes: int, fn: Callable[[], Any], *,
                     model: MachineModel = GENERIC,
                     **machine_kwargs: Any) -> List[Any]:
    """SPMD-launch ``fn`` on every PE; return per-PE results."""
    with Machine(num_pes, model=model, **machine_kwargs) as m:
        m.launch(fn)
        m.run()
        return m.results()
