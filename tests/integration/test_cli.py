"""Tests for the figure-regeneration CLI (``python -m repro.bench``)."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import FIGURES, main


def test_figures_map_covers_the_five_machines():
    assert set(FIGURES) == {"atm_hp", "t3d", "myrinet_fm", "sp1", "paragon"}


def test_single_model_run(capsys):
    assert main(["t3d", "--sizes", "128", "--reps", "1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "128B" in out
    assert "native" in out and "converse" in out


def test_myrinet_includes_queued_series(capsys):
    main(["myrinet_fm", "--sizes", "128", "--reps", "1"])
    out = capsys.readouterr().out
    assert "queued" in out


def test_default_runs_all_five(capsys):
    main(["--sizes", "64", "--reps", "1"])
    out = capsys.readouterr().out
    for fig in ("Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8"):
        assert fig in out


def test_bad_model_rejected():
    with pytest.raises(SystemExit):
        main(["cm5"])
