"""Every example must run clean end to end (they self-validate)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "fmm_tree", "molecular_dynamics",
            "interop_phases", "coordination_language"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert "OK" in proc.stdout
