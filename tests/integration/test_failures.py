"""Failure injection: errors in simulated code must surface promptly at
``run()`` and never wedge or leak the machine."""

from __future__ import annotations

import threading

import pytest

from repro.core import api
from repro.core.errors import UnknownHandlerError
from repro.core.message import Message
from repro.langs.charm import Chare, Charm
from repro.langs.tsm import TSM
from repro.sim.machine import Machine


def test_error_in_main_propagates_and_machine_still_shuts_down():
    before = threading.active_count()
    m = Machine(4)

    def bad():
        if api.CmiMyPe() == 2:
            raise ValueError("pe2 exploded")
        api.CsdScheduler(-1)

    m.launch(bad)
    with pytest.raises(ValueError, match="pe2 exploded"):
        m.run()
    m.shutdown()
    assert threading.active_count() <= before + 1


def test_error_in_handler_propagates():
    with Machine(2) as m:
        def receiver():
            def h(msg):
                raise KeyError("handler blew up")

            api.CmiRegisterHandler(h, "h")
            api.CsdScheduler(1)

        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            api.CmiSyncSend(0, Message(hid, None, size=0))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        with pytest.raises(KeyError, match="handler blew up"):
            m.run()


def test_error_in_cth_thread_propagates():
    with Machine(1) as m:
        def main():
            def thread_body(arg):
                raise RuntimeError("thread died")

            t = api.CthCreate(thread_body, None)
            api.CthResume(t)

        m.launch_on(0, main)
        with pytest.raises(RuntimeError, match="thread died"):
            m.run()


def test_error_in_tsm_thread_propagates():
    with Machine(1) as m:
        TSM.attach(m)

        def main():
            TSM.get().create(lambda: 1 / 0)
            api.CsdScheduler(-1)

        m.launch_on(0, main)
        with pytest.raises(ZeroDivisionError):
            m.run()


def test_error_in_chare_entry_propagates():
    class Bomb(Chare):
        def __init__(self):
            pass

        def fuse(self):
            raise ArithmeticError("boom")

    with Machine(2) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                ch.create(Bomb, on_pe=1).fuse()
            api.CsdScheduler(-1)

        m.launch(main)
        with pytest.raises(ArithmeticError, match="boom"):
            m.run()


def test_first_failure_wins_and_reports_once():
    with Machine(4) as m:
        def bad():
            api.CmiCharge(api.CmiMyPe() * 1e-6)
            raise OSError(f"pe{api.CmiMyPe()}")

        m.launch(bad)
        with pytest.raises(OSError, match="pe0"):
            m.run()


def test_unknown_handler_names_the_index():
    with Machine(2) as m:
        def receiver():
            api.CsdScheduler(1)

        def sender():
            api.CmiSyncSend(0, Message(4242, None, size=0))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        with pytest.raises(UnknownHandlerError, match="4242"):
            m.run()


def test_machine_usable_as_context_manager_despite_failure():
    before = threading.active_count()
    with pytest.raises(ValueError):
        with Machine(3) as m:
            m.launch(lambda: (_ for _ in ()).throw(ValueError("inside")))
            m.run()
    assert threading.active_count() <= before + 1


def test_run_after_failure_can_continue_with_remaining_work():
    """A failure aborts run(), but the machine is still inspectable and
    shut down cleanly (no hidden corruption)."""
    m = Machine(2)

    def good():
        api.CmiCharge(10e-6)
        return "ok"

    def bad():
        raise RuntimeError("x")

    t_good = m.launch_on(0, good)
    m.launch_on(1, bad)
    with pytest.raises(RuntimeError):
        m.run()
    # The engine stopped at the failure; state is frozen but readable.
    assert m.now >= 0.0
    m.shutdown()


def test_many_machines_sequentially_no_leaks():
    before = threading.active_count()
    for i in range(25):
        with Machine(3, seed=i) as m:
            m.launch(lambda: api.CmiCharge(1e-6))
            m.run()
    assert threading.active_count() <= before + 1
