"""Integration tests: the paper's headline — multiple paradigms in one
program, interoperating through the shared Converse core."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.langs.charm import Chare, Charm
from repro.langs.mdthreads import MDT
from repro.langs.nx import NX
from repro.langs.pvm import PVM
from repro.langs.sm import SM
from repro.langs.tsm import TSM
from repro.sim.machine import Machine
from repro.sim.models import MYRINET_FM


def test_spm_and_message_driven_interleave():
    """An SM (SPM) module and a Charm module coexist: the SPM main
    explicitly donates cycles to run deposited concurrent work (section
    3.1.2 footnote's interaction pattern)."""
    with Machine(2) as m:
        SM.attach(m)
        Charm.attach(m)
        results = {}

        class Accumulator(Chare):
            def __init__(self):
                self.total = 0

            def add(self, k):
                self.total += k
                results["total"] = self.total

        def main():
            sm = SM.get()
            ch = Charm.get()
            me = sm.my_pe
            if me == 0:
                # SPM phase: classic blocking exchange.
                sm.send(1, 1, "spm-data")
                # Concurrent phase: deposit chare work...
                acc = ch.create(Accumulator, on_pe=0)
                for i in range(1, 4):
                    acc.add(i)
                # ... and explicitly run the scheduler to execute it.
                api.CsdScheduleUntilIdle()
                # SPM phase resumes.
                reply = sm.recv(tag=2)[2]
                return results["total"], reply
            data = sm.recv(tag=1)[2]
            sm.send(0, 2, data + "/ack")

        t = m.launch_on(0, main)
        m.launch_on(1, main)
        m.run()
        assert t.result == (6, "spm-data/ack")


def test_pvm_module_reused_from_tsm_threads():
    """A tSM-threaded application calls into a PVM-written library —
    cross-language software reuse (section 4, point 2)."""
    with Machine(4) as m:
        PVM.attach(m)
        TSM.attach(m)
        out = {}

        def pvm_library_allsum(value):
            # "Library" written purely against PVM.
            return PVM.get().reduce(lambda a, b: a + b, value)

        def main():
            tsm = TSM.get()
            me = tsm.my_pe

            def app_thread():
                total = pvm_library_allsum(me + 1)
                out[me] = total
                if me == 0:
                    api.CsdExitAll()

            tsm.create(app_thread)
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert out[0] == 10


def test_three_paradigms_pipeline():
    """NX collectives -> Charm objects -> MDT threads, one data item
    flowing through all three paradigms."""
    with Machine(2, model=MYRINET_FM) as m:
        NX.attach(m)
        Charm.attach(m)
        MDT.attach(m)
        trace = []

        class Stage2(Chare):
            def __init__(self):
                pass

            def process(self, value):
                trace.append(("charm", value))
                mdt = MDT.get()

                def stage3():
                    got = MDT.get().receive(3)
                    trace.append(("mdt", got))
                    api.CsdExitAll()

                tid = mdt.spawn(stage3)
                mdt.send(tid, 3, value * 2)

        def main():
            nx = NX.get()
            me = nx.mynode()
            # Stage 1: an NX global sum (SPM collective).
            total = nx.gisum(me + 5)
            if me == 0:
                trace.append(("nx", total))
                ch = Charm.get()
                s2 = ch.create(Stage2, on_pe=1)
                s2.process(total)
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert trace == [("nx", 11), ("charm", 11), ("mdt", 22)]


def test_languages_share_one_scheduler():
    """Messages of three languages pass through the same Csd queue on one
    PE and are dispatched by one loop — the unified scheduler claim."""
    with Machine(1, trace=True) as m:
        SM.attach(m)
        TSM.attach(m)
        Charm.attach(m)
        log = []

        class C(Chare):
            def __init__(self):
                pass

            def go(self):
                log.append("charm")

        def main():
            tsm = TSM.get()
            ch = Charm.get()

            def thread_body():
                log.append("tsm-thread")

            tsm.create(thread_body)
            ch.create(C, on_pe=0).go()
            api.CsdScheduleUntilIdle()
            return log

        t = m.launch_on(0, main)
        m.run()
        assert set(t.result) == {"tsm-thread", "charm"}
        # All dispatches flowed through the single scheduler's queue.
        dequeues = [e for e in m.tracer.events if e.kind == "dequeue"]
        assert len(dequeues) >= 3


def test_handler_tables_stay_consistent_with_all_languages():
    from repro.core.handlers import HandlerTable

    with Machine(3) as m:
        SM.attach(m)
        TSM.attach(m)
        PVM.attach(m)
        NX.attach(m)
        Charm.attach(m)
        MDT.attach(m)
        assert HandlerTable.check_consistent([rt.handlers for rt in m.runtimes])


def test_paper_footnote_interaction_pattern():
    """Footnote 1 verbatim: SPM computes, invokes concurrent function f
    which deposits messages, SPM runs the scheduler, results come back by
    function call before the scheduler returns."""
    with Machine(2) as m:
        Charm.attach(m)
        SM.attach(m)
        result_cell = {}

        class Worker(Chare):
            def __init__(self):
                pass

            def work(self, xs, reply_proxy):
                reply_proxy.deliver(sum(xs))

        class Collector(Chare):
            def __init__(self):
                pass

            def deliver(self, s):
                result_cell["sum"] = s
                api.CsdExitScheduler()  # hand control back to the SPM main

        def f(ch, xs):
            """The concurrent-module function: deposits messages only."""
            col = ch.create(Collector, on_pe=0)
            w = ch.create(Worker, on_pe=1)
            w.work(xs, col)

        def main():
            me = api.CmiMyPe()
            if me == 0:
                f(Charm.get(), [1, 2, 3, 4])
                api.CsdScheduler(-1)     # execute the deposited work
                return result_cell["sum"]  # result arrived via callback
            api.CsdScheduler(-1)

        t = m.launch_on(0, main)
        m.launch_on(1, main)
        m.run()
        assert t.result == 10
