"""Tests for the benchmark reporting helpers (the paper-vs-measured
tables the harness prints)."""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.reporting import (
    banner,
    comparison_rows,
    emit_report,
    expectation_block,
    format_size,
    format_us,
    ratio,
    series_table,
)


def test_format_size():
    assert format_size(16) == "16B"
    assert format_size(1000) == "1000B"
    assert format_size(1024) == "1KB"
    assert format_size(16384) == "16KB"
    assert format_size(1536) == "1536B"  # not a whole KB


def test_format_us_widths():
    assert format_us(3.14159).strip() == "3.14"
    assert format_us(123456.7).strip() == "123457"


def test_banner_contains_title():
    b = banner("My Title")
    assert "My Title" in b
    assert b.count("=") >= 128


def test_expectation_block_prefixes_lines():
    block = expectation_block(["first", "second"])
    assert block.splitlines()[0] == "  paper | first"
    assert block.splitlines()[1] == "  paper | second"


def test_series_table_alignment_and_content():
    table = series_table([16, 1024], {"native": [1.0, 2.0], "converse": [3.0, 4.0]})
    lines = table.splitlines()
    assert "native" in lines[0] and "converse" in lines[0]
    assert "16B" in table and "1KB" in table
    assert "3.00" in table and "4.00" in table
    assert "us one-way" in lines[-1]


def test_comparison_rows():
    out = comparison_rows(
        {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.5, "y": 4.25}},
        ["x", "y"],
    )
    assert "3.50" in out and "4.25" in out
    assert out.splitlines()[0].strip().startswith("variant")


def test_ratio_handles_zero():
    assert ratio(4.0, 2.0) == 2.0
    assert ratio(1.0, 0.0) == float("inf")


def test_emit_report_writes_file(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    emit_report("unit_test_report", "hello table")
    saved = tmp_path / "benchmarks" / "reports" / "unit_test_report.txt"
    assert saved.read_text() == "hello table\n"
