"""The simulator vs the closed form: measured round-trip latencies must
equal the analytic cost decomposition exactly (the simulation *is* the
model, so any drift is a bug in one of them)."""

from __future__ import annotations

import pytest

from repro.bench.roundtrip import figure_series, roundtrip
from repro.sim.models import ALL_MODELS, GENERIC, MYRINET_FM

SIZES = [16, 128, 1024, 8192, 65536]


@pytest.mark.parametrize("model", list(ALL_MODELS.values()), ids=lambda m: m.name)
def test_native_matches_one_way_formula(model):
    res = roundtrip(model, "native", SIZES, reps=2)
    for size, us in zip(res.sizes, res.us):
        expect = model.one_way(size, converse=False) * 1e6
        assert us == pytest.approx(expect, rel=1e-9), f"size {size}"


@pytest.mark.parametrize("model", list(ALL_MODELS.values()), ids=lambda m: m.name)
def test_converse_matches_one_way_formula(model):
    res = roundtrip(model, "converse", SIZES, reps=2)
    for size, us in zip(res.sizes, res.us):
        expect = model.one_way(size) * 1e6
        assert us == pytest.approx(expect, rel=1e-9), f"size {size}"


def test_queued_matches_formula():
    res = roundtrip(MYRINET_FM, "queued", SIZES, reps=2)
    for size, us in zip(res.sizes, res.us):
        expect = MYRINET_FM.one_way(size, queued=True) * 1e6
        assert us == pytest.approx(expect, rel=1e-9)


def test_reps_do_not_change_the_average():
    a = roundtrip(GENERIC, "converse", [256], reps=1).us[0]
    b = roundtrip(GENERIC, "converse", [256], reps=7).us[0]
    assert a == pytest.approx(b, rel=1e-9)


def test_figure_series_shapes():
    series = figure_series(MYRINET_FM, sizes=SIZES, reps=2, include_queued=True)
    assert set(series) == {"native", "converse", "queued"}
    for size in SIZES:
        nat = series["native"].as_dict()[size]
        conv = series["converse"].as_dict()[size]
        qd = series["queued"].as_dict()[size]
        assert nat < conv < qd


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        roundtrip(GENERIC, "warp", SIZES)
