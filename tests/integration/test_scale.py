"""Scale smoke tests: larger machines, many threads, deep protocols."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.message import Message
from repro.langs.mpi import MPI
from repro.langs.tsm import TSM
from repro.machine.emi_groups import world_group
from repro.sim.machine import Machine
from repro.sim.models import T3D


def test_64_pe_allreduce():
    with Machine(64, model=T3D) as m:
        def main():
            g = world_group(m)
            return api.CmiPgrpReduce(g, 1, lambda a, b: a + b)

        m.launch(main)
        m.run()
        assert all(r == 64 for r in m.results())


def test_64_pe_ring_pipeline():
    with Machine(64, model=T3D) as m:
        def main():
            me, num = api.CmiMyPe(), api.CmiNumPes()
            hop = {}

            def h(msg):
                count = msg.payload
                if count < 3 * num:
                    api.CmiSyncSend((me + 1) % num, Message(hid, count + 1, size=8))
                else:
                    hop["end"] = count

            hid = api.CmiRegisterHandler(h, "ring")
            if me == 0:
                api.CmiSyncSend(1, Message(hid, 1, size=8))
            # The token visits every PE exactly 3 times (counts 1..192).
            api.CsdScheduler(3)
            return hop.get("end")

        m.launch(main)
        m.run()
        ends = [r for r in m.results() if r is not None]
        assert ends == [192]


def test_hundred_threads_on_one_pe():
    with Machine(1) as m:
        TSM.attach(m)
        done = []

        def main():
            tsm = TSM.get()

            def worker(i):
                _, _, v = tsm.receive(tag=i)
                done.append((i, v))
                if len(done) == 100:
                    api.CsdExitScheduler()

            for i in range(100):
                tsm.create(worker, i)
            # Feed them in reverse order to exercise the waiter matching.
            for i in reversed(range(100)):
                tsm.send(0, i, i * i)
            api.CsdScheduler(-1)

        m.launch_on(0, main)
        m.run()
        assert sorted(done) == [(i, i * i) for i in range(100)]


def test_32_pe_mpi_alltoall():
    with Machine(32, model=T3D) as m:
        MPI.attach(m)

        def main():
            comm = MPI.get().COMM_WORLD
            out = comm.alltoall([comm.rank * 100 + r for r in range(comm.size)])
            return out

        m.launch(main)
        m.run()
        results = m.results()
        for r, got in enumerate(results):
            assert got == [src * 100 + r for src in range(32)]


def test_thousand_messages_fanin():
    with Machine(8, model=T3D) as m:
        def main():
            me = api.CmiMyPe()
            state = {"n": 0}

            def h(msg):
                state["n"] += 1
                if state["n"] == 7 * 150:
                    api.CsdExitAll()

            hid = api.CmiRegisterHandler(h, "sink")
            if me != 0:
                for _ in range(150):
                    api.CmiSyncSend(0, Message(hid, None, size=64))
            count = api.CsdScheduler(-1)
            return state["n"]

        m.launch(main)
        m.run()
        assert m.results()[0] == 1050
