"""Unit tests for the benchmark workload generators themselves, so the
ablation benchmarks rest on verified ground."""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    BranchAndBound,
    InteropWorkload,
    SeedTreeWorkload,
)


# ----------------------------------------------------------------------
# branch & bound
# ----------------------------------------------------------------------

def test_bnb_tree_bounds_are_exact_maxima():
    wl = BranchAndBound(depth=6, seed=5)
    for i in range(1, wl.nleaves):
        assert wl.bounds[i] == max(wl.bounds[2 * i], wl.bounds[2 * i + 1])
    assert wl.bounds[1] == max(wl.leaf_values)


def test_bnb_every_strategy_finds_the_optimum():
    wl = BranchAndBound(depth=8, grain_us=1.0, seed=9)
    best = max(wl.leaf_values)
    for strategy in ("fifo", "lifo", "int", "bitvector"):
        r = wl.run(strategy)
        assert r.best == pytest.approx(best), strategy


def test_bnb_best_first_prunes_most():
    wl = BranchAndBound(depth=9, grain_us=1.0, seed=4)
    res = {s: wl.run(s) for s in ("fifo", "int")}
    assert res["int"].expansions < res["fifo"].expansions
    # Work is conserved: every enqueued node is expanded or pruned, and
    # only expanded internals enqueue children (root + 2 per internal).
    for r in res.values():
        processed = r.expansions + r.pruned
        assert processed % 2 == 1          # 1 + 2 * internal expansions
        assert processed <= 2 * wl.nleaves - 1
    # FIFO (breadth-first) prunes nothing below the last level reached
    # before the optimum tightened; best-first skips whole subtrees.
    assert res["int"].expansions + res["int"].pruned < \
        res["fifo"].expansions + res["fifo"].pruned


def test_bnb_deterministic():
    wl = BranchAndBound(depth=7, seed=13)
    a, b = wl.run("int"), wl.run("int")
    assert (a.expansions, a.pruned, a.best) == (b.expansions, b.pruned, b.best)


def test_bnb_path_bits_prefer_better_child():
    wl = BranchAndBound(depth=5, seed=1)
    # The best leaf's path should be all-zero bits (always the better child).
    best_leaf = max(range(wl.nleaves), key=lambda i: wl.leaf_values[i])
    assert wl._path_bits(wl.nleaves + best_leaf).strip("0") == ""


# ----------------------------------------------------------------------
# seed tree
# ----------------------------------------------------------------------

def test_seed_tree_task_count():
    wl = SeedTreeWorkload(num_pes=4, depth=5, fanout=2)
    assert wl.total_tasks == 63
    assert SeedTreeWorkload(num_pes=2, depth=3, fanout=3).total_tasks == 40


def test_seed_tree_runs_all_tasks_and_reports():
    wl = SeedTreeWorkload(num_pes=4, depth=5, fanout=2, grain_us=10.0)
    r = wl.run("spray")
    assert sum(r.rooted) == wl.total_tasks
    assert r.makespan_us > 0
    assert len(r.busy_us) == 4
    assert 0 < r.efficiency <= 1.0
    assert r.imbalance >= 1.0


def test_seed_tree_direct_is_serial():
    wl = SeedTreeWorkload(num_pes=4, depth=5, fanout=2, grain_us=10.0)
    r = wl.run("direct")
    # All work on PE 0: makespan >= total work time.
    assert r.busy_us[0] == max(r.busy_us)
    assert r.makespan_us >= wl.total_tasks * wl.grain_us


# ----------------------------------------------------------------------
# interop
# ----------------------------------------------------------------------

def test_interop_variants_do_the_same_work():
    wl = InteropWorkload(num_pes=2, rounds=5, compute_us=20.0,
                         backlog=10, backlog_grain_us=10.0)
    phased = wl.run("phased")
    overlapped = wl.run("overlapped")
    assert phased.backlog_msgs == overlapped.backlog_msgs == 10
    assert phased.total_us > 0 and overlapped.total_us > 0
    # Overlap can never beat the stencil critical path.
    assert overlapped.total_us >= overlapped.stencil_us * 0.999


def test_interop_unknown_variant_rejected():
    wl = InteropWorkload(num_pes=2, rounds=1)
    with pytest.raises(ValueError):
        wl.run("quantum")
