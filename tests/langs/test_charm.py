"""Tests for the Charm-style message-driven object runtime."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import CharmError
from repro.langs.charm import Chare, Charm, ChareProxy
from repro.sim.machine import Machine


def run_charm(num_pes, fn, **kw):
    with Machine(num_pes, **kw) as m:
        Charm.attach(m)
        m.launch(fn)
        m.run()
        return m, m.results()


class Echo(Chare):
    def __init__(self, label):
        self.label = label
        self.calls = []

    def poke(self, value):
        self.calls.append(value)

    def reply_to(self, proxy):
        proxy.poke((self.mype, self.label))


class Exiter(Chare):
    def __init__(self):
        pass

    def stop(self):
        self.charm.exit_all()


def test_create_on_explicit_pe_and_invoke():
    def main():
        ch = Charm.get()
        if ch.my_pe == 0:
            p = ch.create(Echo, "remote", on_pe=1)
            for i in range(3):
                p.poke(i)
            e = ch.create(Exiter, on_pe=1)
            e.stop()
        api.CsdScheduler(-1)
        return Charm.get().local_chares

    m, results = run_charm(2, main)
    chares = list(results[1].values())
    echo = next(c for c in chares if isinstance(c, Echo))
    assert echo.calls == [0, 1, 2]
    assert echo.mype == 1


def test_seed_creation_through_cld():
    def main():
        ch = Charm.get()
        if ch.my_pe == 0:
            for i in range(8):
                ch.create(Echo, f"seed{i}")  # spray will spread them
            ch.create(Exiter, on_pe=0).stop()
        api.CsdScheduler(-1)
        return len(Charm.get().local_chares)

    m, results = run_charm(4, main, ldb="spray")
    assert sum(results) == 9  # 8 echoes + 1 exiter
    assert max(results) < 9   # actually spread


def test_invocations_race_ahead_of_seed_are_buffered():
    """Method sends issued immediately after create arrive before the
    seed roots; the home PE buffers and forwards them."""
    def main():
        ch = Charm.get()
        if ch.my_pe == 0:
            p = ch.create(Echo, "racy")       # via balancer (may move)
            p.poke("a")                        # races the seed
            p.poke("b")
            # Exit only once every routed message has landed.
            ch.start_quiescence(lambda: Charm.get().exit_all())
        api.CsdScheduler(-1)
        return [c for c in Charm.get().local_chares.values()
                if isinstance(c, Echo)]

    m, results = run_charm(3, main, ldb="random")
    echoes = [c for r in results for c in r]
    assert len(echoes) == 1
    assert echoes[0].calls == ["a", "b"]


def test_proxy_is_location_independent_data():
    def main():
        ch = Charm.get()
        me = ch.my_pe
        out = []
        if me == 0:
            class Target(Echo):
                def poke(self, value):
                    out.append(value)
                    api.CsdExitAll()

            # Construct locally; ship the proxy to PE 1 inside a message.
            t = ch.create(Target, "t", on_pe=0)
            forwarder = ch.create(Echo, "fwd", on_pe=1)
            forwarder.reply_to(t)
        api.CsdScheduler(-1)
        return out

    m, results = run_charm(2, main)
    assert results[0] == [(1, "fwd")]


def test_entry_prio_orders_within_queue():
    """Invocations queued together dispatch in priority order when the
    machine uses a priority queue (section 2.3)."""
    def main():
        ch = Charm.get()
        if ch.my_pe != 0:
            return api.CsdScheduler(-1)
        order = []

        class Ordered(Chare):
            def __init__(self):
                pass

            def step(self, k):
                order.append(k)

        p = ch.create(Ordered, on_pe=0)
        api.CsdScheduler(1)  # let the creation land first
        p.step("low", prio=10)
        p.step("high", prio=-10)
        p.step("mid", prio=0)
        api.CsdScheduleUntilIdle()
        return order

    m, results = run_charm(1, main, queue="int")
    assert results[0] == ["high", "mid", "low"]


def test_group_chares_one_branch_per_pe():
    class Branch(Chare):
        instances = []

        def __init__(self, tag):
            self.tag = tag
            Branch.instances.append(self)
            self.hits = 0

        def hit(self):
            self.hits += 1

        def hit_and_stop(self):
            self.hits += 1
            if self.mype == 0:
                self.charm.exit_all()

    Branch.instances = []

    def main():
        ch = Charm.get()
        if ch.my_pe == 0:
            g = ch.create_group(Branch, "g1")
            g.hit()               # broadcast
            g[2].hit()            # single branch
            g.hit_and_stop()      # broadcast, stops via PE0's branch
        api.CsdScheduler(-1)

    m, _ = run_charm(3, main)
    by_pe = {b.mype: b for b in Branch.instances}
    assert len(by_pe) == 3
    assert by_pe[0].hits == 2
    assert by_pe[1].hits == 2
    assert by_pe[2].hits == 3


def test_contribute_reduction_fires_on_pe0():
    with Machine(4) as m:
        Charm.attach(m)

        done = {}

        def wrapped():
            ch = Charm.get()
            ch.contribute("sum", ch.my_pe + 1, lambda a, b: a + b,
                          lambda total: (done.__setitem__("total", total),
                                         api.CsdExitAll()))
            api.CsdScheduler(-1)

        m.launch(wrapped)
        m.run()
        assert done["total"] == 10


def test_unknown_entry_method_raises():
    def main():
        ch = Charm.get()
        if ch.my_pe == 0:
            p = ch.create(Echo, "x", on_pe=0)
            p.no_such_method()
        api.CsdScheduler(-1)

    with Machine(1) as m:
        Charm.attach(m)
        m.launch(main)
        with pytest.raises(CharmError, match="no entry method"):
            m.run()


def test_non_chare_class_rejected():
    def main():
        ch = Charm.get()
        try:
            ch.create(dict)  # type: ignore[arg-type]
        except CharmError:
            return "rejected"

    with Machine(1) as m:
        Charm.attach(m)
        t = m.launch_on(0, main)
        m.run()
        assert t.result == "rejected"


def test_quiescence_detection_fires_callback():
    def main():
        ch = Charm.get()
        fired = []
        if ch.my_pe == 0:
            ch.start_quiescence(lambda: (fired.append(api.CmiTimer()),
                                         api.CsdExitAll()))
            p = ch.create(Echo, "busy", on_pe=1)
            for i in range(5):
                p.poke(i)
        api.CsdScheduler(-1)
        return fired

    m, results = run_charm(2, main)
    assert len(results[0]) == 1
    assert results[0][0] > 0  # fired after real traffic


def test_proxy_equality_and_hash():
    a = ChareProxy((1, 2))
    b = ChareProxy((1, 2))
    c = ChareProxy((1, 3))
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert len({a, b, c}) == 2
