"""Tests for Charm++-style chare arrays."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import CharmError
from repro.langs.charm import ArrayProxy, Chare, Charm
from repro.sim.machine import Machine


class Elem(Chare):
    registry = []

    def __init__(self, scale):
        self.scale = scale
        self.value = self.thisIndex * scale
        Elem.registry.append(self)

    def bump(self, k):
        self.value += k

    def contribute_value(self, tag):
        self.charm.array_contribute(
            self, tag, self.value, lambda a, b: a + b, Elem._done
        )

    @staticmethod
    def _done(total):
        Elem.total = total
        api.CsdExitAll()


def _fresh():
    Elem.registry = []
    Elem.total = None


def test_elements_constructed_round_robin_with_index():
    _fresh()
    with Machine(3) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                arr = ch.create_array(Elem, 8, 10)
                api.CsdScheduler(1)  # our own loopback create broadcast
                return arr
            api.CsdScheduler(1)

        ts = m.launch(main)
        m.run()
        arr = ts[0].result
        assert isinstance(arr, ArrayProxy) and len(arr) == 8
        by_index = {e.thisIndex: e for e in Elem.registry}
        assert sorted(by_index) == list(range(8))
        for i, e in by_index.items():
            assert e.mype == i % 3
            assert e.value == i * 10
            assert e.thisProxy.index == i


def test_broadcast_and_indexed_invocation():
    _fresh()
    with Machine(2) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                arr = ch.create_array(Elem, 6, 1)
                arr.bump(100)        # broadcast to all elements
                arr[3].bump(1000)    # one element
                ch.start_quiescence(lambda: Charm.get().exit_all())
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        values = {e.thisIndex: e.value for e in Elem.registry}
        assert values == {0: 100, 1: 101, 2: 102, 3: 1103, 4: 104, 5: 105}


def test_array_reduction_over_all_elements():
    _fresh()
    with Machine(4) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                arr = ch.create_array(Elem, 10, 2)
                arr.contribute_value("sum1")
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        # sum of i*2 for i in 0..9 = 90
        assert Elem.total == 90


def test_out_of_range_index_rejected():
    _fresh()
    with Machine(1) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            arr = ch.create_array(Elem, 4, 1)
            try:
                arr[4]
            except CharmError:
                return "range"

        t = m.launch_on(0, main)
        m.run()
        assert t.result == "range"


def test_invalid_array_creation_rejected():
    _fresh()
    with Machine(1) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            out = []
            try:
                ch.create_array(dict, 4)  # type: ignore[arg-type]
            except CharmError:
                out.append("cls")
            try:
                ch.create_array(Elem, 0)
            except CharmError:
                out.append("n")
            return out

        t = m.launch_on(0, main)
        m.run()
        assert t.result == ["cls", "n"]


def test_elements_can_message_each_other():
    _fresh()

    class Ring(Chare):
        done = []

        def __init__(self):
            pass

        def token(self, hops, path):
            path = path + [self.thisIndex]
            if hops == 0:
                Ring.done.append(path)
                api.CsdExitAll()
                return
            nxt = (self.thisIndex + 1) % len(self.thisArray)
            self.thisArray[nxt].token(hops - 1, path)

    with Machine(3) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                arr = ch.create_array(Ring, 5)
                arr[0].token(7, [])
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert Ring.done == [[0, 1, 2, 3, 4, 0, 1, 2]]


def test_more_elements_than_pes_and_fewer():
    _fresh()
    for n, pes in ((3, 8), (8, 3)):
        Elem.registry = []
        with Machine(pes) as m:
            Charm.attach(m)

            def main():
                ch = Charm.get()
                if ch.my_pe == 0:
                    ch.create_array(Elem, n, 1)
                api.CsdScheduler(1)

            m.launch(main)
            m.run()
            assert len(Elem.registry) == n
