"""Edge cases for Charm branch-office groups and proxies: invocations
racing creation, per-branch vs broadcast ordering, reduction trees."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.langs.charm import Chare, Charm, GroupProxy
from repro.sim.machine import Machine


class Branch(Chare):
    instances = []

    def __init__(self, payload=None):
        self.payload = payload
        self.log = []
        Branch.instances.append(self)

    def record(self, item):
        self.log.append(item)


def _fresh():
    Branch.instances = []


def test_group_invoke_racing_create_is_buffered():
    """A proxy shipped ahead of the create broadcast: invocations from a
    third PE may land before the branch exists and must be buffered."""
    _fresh()
    with Machine(3) as m:
        Charm.attach(m)
        proxy_box = {}

        def creator():
            ch = Charm.get()
            g = ch.create_group(Branch, "b")
            proxy_box["g"] = g
            api.CsdScheduler(-1)

        def racer():
            # Fire at the group before its create can possibly have
            # reached PE 2 (we only know the gid via shared test state,
            # standing in for an out-of-band channel).
            while "g" not in proxy_box:
                api.CmiCharge(1e-7)
            proxy_box["g"][2].record("raced")
            api.CsdExitAll()

        m.launch_on(0, creator)
        m.launch_on(1, racer)
        m.launch_schedulers(pes=[2])
        m.run()
        by_pe = {b.mype: b for b in Branch.instances}
        assert by_pe[2].log == ["raced"]


def test_broadcast_then_unicast_order_per_branch():
    _fresh()
    with Machine(2) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                g = ch.create_group(Branch)
                g.record("bcast1")
                g[1].record("uni")
                g.record("bcast2")
                ch.start_quiescence(lambda: Charm.get().exit_all())
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        by_pe = {b.mype: b for b in Branch.instances}
        # Same-channel FIFO: PE1 sees the three in send order.
        assert by_pe[1].log == ["bcast1", "uni", "bcast2"]
        assert by_pe[0].log == ["bcast1", "bcast2"]


def test_group_proxy_indexing_and_repr():
    g = GroupProxy((0, 1))
    g2 = g[3]
    assert g.pe is None and g2.pe == 3
    assert g2.gid == (0, 1)
    assert "pe3" in repr(g2) and "all" in repr(g)


def test_contribute_with_proxy_target():
    """Reduction target as (proxy, method): the result arrives as an
    entry-method invocation on the target chare."""
    _fresh()
    with Machine(4) as m:
        Charm.attach(m)

        class Sink(Chare):
            got = []

            def __init__(self):
                pass

            def deliver(self, total):
                Sink.got.append(total)
                self.charm.exit_all()

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                sink = ch.create(Sink, on_pe=3)
                m._sink = sink
                api.CmiCharge(1e-6)
            else:
                api.CmiCharge(2e-6)
            ch.contribute("t", 2 ** ch.my_pe, lambda a, b: a | b,
                          (m._sink, "deliver"))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert Sink.got == [0b1111]


def test_two_groups_do_not_interfere():
    _fresh()
    with Machine(2) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                g1 = ch.create_group(Branch, "one")
                g2 = ch.create_group(Branch, "two")
                g1.record("to-one")
                g2.record("to-two")
                ch.start_quiescence(lambda: Charm.get().exit_all())
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        ones = [b for b in Branch.instances if b.payload == "one"]
        twos = [b for b in Branch.instances if b.payload == "two"]
        assert all(b.log == ["to-one"] for b in ones)
        assert all(b.log == ["to-two"] for b in twos)
        assert len(ones) == len(twos) == 2
