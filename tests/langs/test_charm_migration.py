"""Tests for chare migration and quasi-dynamic rebalancing (the
section-3.3.1 footnote libraries)."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import CharmError
from repro.langs.charm import Chare, Charm
from repro.loadbalance.quasidynamic import plan_lpt, rebalance
from repro.sim.machine import Machine


class Counter(Chare):
    def __init__(self):
        self.count = 0
        self.homes = [self.mype]

    def bump(self):
        self.count += 1

    def note_pe(self):
        self.homes.append(self.mype)


def _find(machine, cid):
    for rt in machine.runtimes:
        obj = rt.lang_instances["charm"].local_chares.get(cid)
        if obj is not None:
            return rt.my_pe, obj
    return None, None


def test_migrate_moves_state_and_updates_directory():
    with Machine(3) as m:
        Charm.attach(m)
        box = {}

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                p = ch.create(Counter, on_pe=0)
                box["proxy"] = p
                api.CsdScheduler(1)      # let it construct
                for _ in range(3):
                    p.bump()
                api.CsdScheduleUntilIdle()
                ch.migrate(p.cid, 2)
                api.CsdScheduler(1)  # consume PE2's rooted note
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        pe, obj = _find(m, box["proxy"].cid)
        assert pe == 2
        assert obj.count == 3
        assert obj.mype == 2
        # Home directory points at the new location.
        home_charm = m.runtime(0).lang_instances["charm"]
        assert home_charm._locations[box["proxy"].cid] == 2


def test_invocations_follow_migrated_chare():
    with Machine(3) as m:
        Charm.attach(m)
        box = {}

        def owner():
            ch = Charm.get()
            p = ch.create(Counter, on_pe=0)
            box["proxy"] = p
            api.CsdScheduler(1)
            ch.migrate(p.cid, 1)
            api.CsdScheduler(-1)

        def caller():
            api.CmiCharge(100e-6)  # after the migration
            p = box["proxy"]
            for _ in range(4):
                p.bump()
            api.CsdScheduler(-1)

        m.launch_on(0, owner)
        m.launch_on(2, caller)
        m.launch_schedulers(pes=[1])
        m.run()
        pe, obj = _find(m, box["proxy"].cid)
        assert pe == 1
        assert obj.count == 4


def test_forwarding_chain_after_double_migration():
    with Machine(4) as m:
        Charm.attach(m)
        box = {}

        def main():
            ch = Charm.get()
            me = ch.my_pe
            if me == 0:
                p = ch.create(Counter, on_pe=0)
                box["proxy"] = p
                api.CsdScheduler(1)
                ch.migrate(p.cid, 1)
            elif me == 3:
                api.CmiCharge(50e-6)
                # Old-location invocation: chases 0 -> 1 (-> 2 later).
                box["proxy"].bump()
            api.CsdScheduler(-1)

        m.launch(main)

        # Second hop happens mid-run, from PE 1.
        def second_hop():
            api.CmiCharge(150e-6)
            charm = Charm.get()
            if box["proxy"].cid in charm.local_chares:
                charm.migrate(box["proxy"].cid, 2)

        m.node(1).spawn(second_hop, name="hop2")
        m.run()
        pe, obj = _find(m, box["proxy"].cid)
        assert pe == 2
        assert obj.count == 1  # the chased invocation landed exactly once


def test_migrate_nonresident_rejected():
    with Machine(2) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            try:
                ch.migrate((0, 99), 1)
            except CharmError as e:
                return "not resident" in str(e)

        t = m.launch_on(0, main)
        m.run()
        assert t.result is True


def test_migrate_to_self_is_noop():
    with Machine(2) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            p = ch.create(Counter, on_pe=0)
            api.CsdScheduler(1)
            ch.migrate(p.cid, 0)
            return p.cid in ch.local_chares

        t = m.launch_on(0, main)
        m.run()
        assert t.result is True


def test_plan_lpt_balances_hot_chares():
    with Machine(4) as m:
        Charm.attach(m)
        proxies = []

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                # Eight chares, all on PE 0, with very uneven activity.
                for i in range(8):
                    p = ch.create(Counter, on_pe=0)
                    proxies.append(p)
                api.CsdScheduler(8)
                for i, p in enumerate(proxies):
                    for _ in range(2 ** i):
                        p.bump()
                api.CsdScheduleUntilIdle()

        m.launch_on(0, main)
        m.run()
        plan = plan_lpt(m)
        assert plan.imbalance_before == pytest.approx(4.0)  # all on 1 of 4
        # The single heaviest chare (2^7 bumps + 1) lower-bounds the
        # makespan; LPT hits that bound here and halves the imbalance.
        assert max(plan.predicted) == pytest.approx(129.0)
        assert plan.imbalance_after < plan.imbalance_before / 1.8
        assert plan.moves  # something moves


def test_rebalance_executes_and_work_continues():
    with Machine(4) as m:
        Charm.attach(m)
        proxies = []

        def phase1():
            ch = Charm.get()
            if ch.my_pe == 0:
                for i in range(8):
                    proxies.append(ch.create(Counter, on_pe=0))
                api.CsdScheduler(8)
                for i, p in enumerate(proxies):
                    for _ in range(i + 1):
                        p.bump()
                api.CsdScheduleUntilIdle()

        m.launch_on(0, phase1)
        m.run()
        plan = rebalance(m)
        assert plan.moves
        # Phase 2: invocations through the *old* proxies still land.
        def phase2():
            for p in proxies:
                p.note_pe()
            api.CsdScheduleUntilIdle()

        m.launch_on(0, phase2)
        m.launch_schedulers(pes=range(1, 4))
        m.run()
        pes = set()
        total = 0
        for rt in m.runtimes:
            charm = rt.lang_instances["charm"]
            for cid, obj in charm.local_chares.items():
                pes.add(rt.my_pe)
                total += 1
                assert obj.homes[-1] == rt.my_pe  # note_pe ran post-move
        assert total == 8
        assert len(pes) >= 3  # spread across the machine
