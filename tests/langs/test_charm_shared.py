"""Tests for Charm's information-sharing abstractions on Converse."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import LanguageError
from repro.langs.charm_shared import SharedVars
from repro.sim.machine import Machine


def run_shared(num_pes, fn, **kw):
    with Machine(num_pes, **kw) as m:
        SharedVars.attach(m)
        m.launch(fn)
        m.run()
        return m.results()


# ----------------------------------------------------------------------
# read-only / write-once
# ----------------------------------------------------------------------

def test_readonly_visible_everywhere_and_locally_immediately():
    def main():
        sv = SharedVars.get()
        if sv.my_pe == 0:
            sv.readonly_create("params", {"dt": 0.01, "n": 64})
            local = sv.readonly_get("params")  # immediate on the creator
            api.CsdSchedulePoll()
            return local
        api.CsdScheduler(1)  # receive the broadcast
        return sv.readonly_get("params")

    results = run_shared(3, main)
    assert all(r == {"dt": 0.01, "n": 64} for r in results)


def test_readonly_double_init_rejected():
    def main():
        sv = SharedVars.get()
        sv.readonly_create("x", 1)
        try:
            sv.readonly_create("x", 2)
        except LanguageError:
            return "once"

    assert run_shared(1, main) == ["once"]


def test_readonly_unset_read_rejected():
    def main():
        sv = SharedVars.get()
        try:
            sv.readonly_get("ghost")
        except LanguageError:
            return "unset"

    assert run_shared(1, main) == ["unset"]


def test_writeonce_id_travels():
    def main():
        sv = SharedVars.get()
        if sv.my_pe == 0:
            vid = sv.writeonce_create([1, 2, 3])
            assert sv.writeonce_get(vid) == [1, 2, 3]
            return vid
        api.CsdScheduler(1)
        return None

    with Machine(2) as m:
        SharedVars.attach(m)
        ts = m.launch(main)
        m.run()
        vid = ts[0].result

        def reader():
            return SharedVars.get().writeonce_get(vid)

        t = m.launch_on(1, reader)
        m.run()
        assert t.result == [1, 2, 3]


# ----------------------------------------------------------------------
# accumulator
# ----------------------------------------------------------------------

def test_accumulator_adds_are_local_and_collect_combines():
    with Machine(4) as m:
        SharedVars.attach(m)
        box = {}
        totals = []

        # Phase 1: create (the broadcast reaches every inbox).
        def create():
            box["acc"] = SharedVars.get().new_accumulator(
                lambda a, b: a + b, init=100
            )

        m.launch_on(0, create)
        m.run()

        # Phase 2: everyone contributes — with zero message traffic.
        def add():
            sv = SharedVars.get()
            api.CsdSchedulePoll()  # consume the create broadcast
            sent_before = sv.runtime.node.stats.msgs_sent
            for _ in range(3):
                box["acc"].add(sv.my_pe + 1)
            return sv.runtime.node.stats.msgs_sent - sent_before

        adders = m.launch(add)
        m.run()
        assert [t.result for t in adders] == [0, 0, 0, 0]

        # Phase 3: collect over the tree.
        def collect():
            box["acc"].collect(lambda t: (totals.append(t), api.CsdExitAll()))
            api.CsdScheduler(-1)

        m.launch_on(0, collect)
        m.launch_schedulers(pes=range(1, 4))
        m.run()
        # 100 (init) + 3*(1+2+3+4) = 130
        assert totals == [130]


def test_accumulator_collect_resets_partials():
    with Machine(2) as m:
        SharedVars.attach(m)
        totals = []

        def main():
            sv = SharedVars.get()
            if sv.my_pe == 0:
                acc = sv.new_accumulator(lambda a, b: a + b)
                api.CsdScheduler(0) if False else None
                acc.add(5)
                acc.collect(lambda t: totals.append(t))
                api.CsdScheduler(2)
                acc.add(7)
                acc.collect(lambda t: (totals.append(t), api.CsdExitAll()))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert totals == [5, 7]  # the 5 did not leak into round two


# ----------------------------------------------------------------------
# monotonic
# ----------------------------------------------------------------------

def test_monotonic_improvements_propagate_and_stale_ignored():
    with Machine(3) as m:
        SharedVars.attach(m)
        seen = {}

        def main():
            sv = SharedVars.get()
            me = sv.my_pe
            if me == 0:
                mono = sv.new_monotonic(max, init=0)
                m._mono = mono
                api.CmiCharge(1e-6)
                assert mono.update(10) is True
                assert mono.update(5) is False   # not an improvement
                api.CsdScheduler(-1)
            else:
                api.CsdScheduler(2)  # create + improve broadcasts
                mono = m._mono
                seen[me] = mono.value
                if me == 1:
                    mono.update(20)
                if len(seen) == 2:
                    api.CsdExitAll()
                api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert seen == {1: 10, 2: 10}
        # PE1's later improvement reached everyone.
        values = {
            pe: m.runtime(pe).lang_instances["charm_shared"]._mono_read(m._mono.vid)
            for pe in range(3)
        }
        assert values == {0: 20, 1: 20, 2: 20}


def test_monotonic_min_direction():
    def main():
        sv = SharedVars.get()
        mono = sv.new_monotonic(min, init=1000)
        assert mono.update(50)
        assert not mono.update(60)
        return mono.value

    assert run_shared(1, main) == [50]


# ----------------------------------------------------------------------
# distributed table
# ----------------------------------------------------------------------

def test_table_insert_find_delete_across_pes():
    with Machine(4) as m:
        SharedVars.attach(m)
        found = {}

        def main():
            sv = SharedVars.get()
            me = sv.my_pe
            if me == 0:
                tbl = sv.new_table()
                for k in range(8):
                    tbl.insert(f"key{k}", k * k)

                def after_find(v):
                    found["hit"] = v
                    tbl.find("nope", after_miss)

                def after_miss(v):
                    found["miss"] = v
                    tbl.delete("key3", after_delete)

                def after_delete(v):
                    found["deleted"] = v
                    tbl.find("key3", after_refind)

                def after_refind(v):
                    found["refind"] = v
                    api.CsdExitAll()

                tbl.find("key3", after_find)
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert found == {"hit": 9, "miss": None, "deleted": 9, "refind": None}
        # Entries really are sharded across PEs (not all on one).
        shard_sizes = [
            sum(len(s) for s in rt.lang_instances["charm_shared"]._tables.values())
            for rt in m.runtimes
        ]
        assert sum(shard_sizes) == 7  # 8 inserted, 1 deleted
        assert max(shard_sizes) < 7 or len([s for s in shard_sizes if s]) > 1


def test_table_local_owner_shortcut():
    def main():
        sv = SharedVars.get()
        tbl = sv.new_table()
        got = []
        tbl.insert("k", 42)         # single PE: always local
        tbl.find("k", got.append)
        return got

    assert run_shared(1, main) == [[42]]
