"""Tests for the shared language-runtime plumbing."""

from __future__ import annotations

import pytest

from repro.core.errors import LanguageError
from repro.langs.common import LanguageRuntime
from repro.langs.sm import SM
from repro.langs.tsm import TSM
from repro.sim.machine import Machine


class ToyLang(LanguageRuntime):
    """A minimal runtime used only by these tests."""

    lang_name = "toy"

    def __init__(self, runtime, flavor="plain"):
        super().__init__(runtime)
        self.flavor = flavor
        self.handler_id = runtime.register_handler(lambda m: None, "toy.h")


def test_attach_builds_one_instance_per_pe():
    with Machine(3) as m:
        insts = ToyLang.attach(m)
        assert len(insts) == 3
        assert [i.my_pe for i in insts] == [0, 1, 2]
        assert all(i.num_pes == 3 for i in insts)


def test_attach_kwargs_forwarded():
    with Machine(2) as m:
        insts = ToyLang.attach(m, flavor="spicy")
        assert all(i.flavor == "spicy" for i in insts)


def test_attach_idempotent_preserves_instances():
    with Machine(2) as m:
        first = ToyLang.attach(m)
        second = ToyLang.attach(m)
        assert first == second


def test_handler_ids_consistent_across_pes():
    with Machine(4) as m:
        insts = ToyLang.attach(m)
        assert len({i.handler_id for i in insts}) == 1


def test_multiple_languages_coexist_per_runtime():
    with Machine(2) as m:
        SM.attach(m)
        TSM.attach(m)
        ToyLang.attach(m)
        rt = m.runtime(0)
        assert set(rt.lang_instances) >= {"sm", "tsm", "toy"}


def test_get_requires_attach_and_tasklet_context():
    with Machine(1) as m:
        def main():
            try:
                ToyLang.get()
            except LanguageError as e:
                return "not attached" in str(e)

        t = m.launch_on(0, main)
        m.run()
        assert t.result is True

    from repro.core.errors import NotInTaskletError

    with pytest.raises(NotInTaskletError):
        ToyLang.get()
