"""Tests for the DP data-parallel layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import LanguageError
from repro.langs.dp import DP
from repro.sim.machine import Machine


def run_dp(num_pes, fn, **kw):
    with Machine(num_pes, **kw) as m:
        DP.attach(m)
        m.launch(fn)
        m.run()
        return m.results()


def test_block_distribution_covers_everything():
    def main():
        dp = DP.get()
        x = dp.array(103, init=1.0)
        return x.lo, x.hi, len(x)

    results = run_dp(4, main)
    spans = [(lo, hi) for lo, hi, _ in results]
    assert spans[0][0] == 0 and spans[-1][1] == 103
    for (a, b), (c, d) in zip(spans, spans[1:]):
        assert b == c
    assert sum(n for _, _, n in results) == 103


def test_init_variants():
    def main():
        dp = DP.get()
        zeros = dp.array(8)
        fives = dp.array(8, init=5.0)
        idx = dp.array(8, init=lambda i: i * 2.0)
        return zeros.local.tolist(), fives.local.tolist(), idx.local.tolist()

    results = run_dp(2, main)
    assert results[0][0] == [0.0] * 4
    assert results[1][1] == [5.0] * 4
    assert results[0][2] == [0.0, 2.0, 4.0, 6.0]
    assert results[1][2] == [8.0, 10.0, 12.0, 14.0]


def test_map_and_arith_match_numpy():
    def main():
        dp = DP.get()
        x = dp.array(64, init=lambda i: i.astype(float))
        y = (x * 2.0 + 1.0) - x
        z = y.map(np.sqrt)
        return z.gather(0)

    results = run_dp(4, main)
    full = results[0]
    expect = np.sqrt(np.arange(64.0) + 1.0)
    assert np.allclose(full, expect)
    assert results[1] is None


def test_reduce_sum_matches_numpy():
    def main():
        dp = DP.get()
        x = dp.array(100, init=lambda i: i.astype(float))
        return x.reduce()

    results = run_dp(4, main)
    assert all(r == pytest.approx(4950.0) for r in results)


def test_reduce_custom_op():
    def main():
        dp = DP.get()
        x = dp.array(16, init=lambda i: (i % 7).astype(float))
        return x.reduce(op=max)

    assert all(r == 6.0 for r in run_dp(4, main))


def test_shift_positive_and_negative():
    def main():
        dp = DP.get()
        x = dp.array(12, init=lambda i: i.astype(float))
        right = x.shift(1)           # result[i] = x[i+1]
        left = x.shift(-2, fill=-1)  # result[i] = x[i-2]
        return right.gather(0), left.gather(0)

    results = run_dp(3, main)
    r, l = results[0]
    assert r.tolist() == [float(i + 1) for i in range(11)] + [0.0]
    assert l.tolist() == [-1.0, -1.0] + [float(i) for i in range(10)]


def test_shift_zero_is_copy():
    def main():
        dp = DP.get()
        x = dp.array(8, init=lambda i: i.astype(float))
        return x.shift(0).gather(0)

    full = run_dp(2, main)[0]
    assert full.tolist() == [float(i) for i in range(8)]


def test_shift_too_far_rejected():
    def main():
        dp = DP.get()
        x = dp.array(8)
        try:
            x.shift(5)  # block size is 4 on 2 PEs
        except LanguageError:
            return "rejected"
        return "accepted"

    assert run_dp(2, main) == ["rejected"] * 2


def test_conformance_checked():
    def main():
        dp = DP.get()
        a = dp.array(8)
        b = dp.array(10)
        try:
            _ = a + b
        except LanguageError:
            return "conform"

    assert run_dp(2, main) == ["conform"] * 2


def test_from_full_distributes():
    def main():
        dp = DP.get()
        x = dp.from_full(np.arange(10.0))
        return x.local.tolist()

    results = run_dp(2, main)
    assert results[0] == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert results[1] == [5.0, 6.0, 7.0, 8.0, 9.0]


def test_stencil_jacobi_iteration():
    """A realistic DP composition: one Jacobi smoothing sweep equals the
    replicated NumPy computation."""
    def main():
        dp = DP.get()
        n = 32
        x = dp.array(n, init=lambda i: np.sin(i.astype(float)))
        left = x.shift(-1)
        right = x.shift(1)
        smoothed = (left + x + right) * (1.0 / 3.0)
        return smoothed.gather(0)

    results = run_dp(4, main)
    full = results[0]
    ref = np.sin(np.arange(32.0))
    padded = np.concatenate([[0.0], ref, [0.0]])
    expect = (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0
    assert np.allclose(full, expect)
