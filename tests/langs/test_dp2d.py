"""Tests for the 2-D data-parallel arrays."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import LanguageError
from repro.langs.dp import DP
from repro.sim.machine import Machine


def run_dp(num_pes, fn, **kw):
    with Machine(num_pes, **kw) as m:
        DP.attach(m)
        m.launch(fn)
        m.run()
        return m.results()


def test_row_block_distribution():
    def main():
        dp = DP.get()
        a = dp.array2d(10, 6, init=1.0)
        return a.lo, a.hi, a.local.shape

    results = run_dp(3, main)
    assert results[0] == (0, 3, (3, 6))
    assert results[1] == (3, 6, (3, 6))
    assert results[2] == (6, 10, (4, 6))


def test_init_function_of_global_indices():
    def main():
        dp = DP.get()
        a = dp.array2d(6, 4, init=lambda i, j: i * 10 + j)
        return a.gather(0)

    full = run_dp(3, main)[0]
    i, j = np.meshgrid(np.arange(6), np.arange(4), indexing="ij")
    assert np.array_equal(full, (i * 10 + j).astype(float))


def test_elementwise_and_reduce_match_numpy():
    rng = np.random.default_rng(3)
    base = rng.random((8, 5))

    def main():
        dp = DP.get()
        a = dp.from_full2d(base)
        b = (a * 2.0 + 1.0) - a
        return b.reduce(), b.map(np.sqrt).gather(0)

    results = run_dp(4, main)
    total, full = results[0]
    assert total == pytest.approx(float((base + 1.0).sum()))
    assert np.allclose(full, np.sqrt(base + 1.0))


def test_reduce_custom_op():
    base = np.arange(24.0).reshape(6, 4)

    def main():
        dp = DP.get()
        return dp.from_full2d(base).reduce(op=max)

    assert all(r == 23.0 for r in run_dp(3, main))


def test_row_halo_exchanges_boundary_rows():
    base = np.arange(16.0).reshape(4, 4)

    def main():
        dp = DP.get()
        a = dp.from_full2d(base)
        north, south = a.row_halo(fill=-1.0)
        return dp.my_pe, north.tolist(), south.tolist()

    results = dict((pe, (n, s)) for pe, n, s in run_dp(2, main))
    # PE0 owns rows 0-1; its south ghost is row 2, north is the fill.
    assert results[0] == ([-1.0] * 4, base[2].tolist())
    # PE1 owns rows 2-3; its north ghost is row 1.
    assert results[1] == (base[1].tolist(), [-1.0] * 4)


def test_stencil5_matches_numpy_reference():
    rng = np.random.default_rng(11)
    base = rng.random((9, 7))

    def main():
        dp = DP.get()
        a = dp.from_full2d(base)
        return a.stencil5(fill=0.0).gather(0)

    full = run_dp(3, main)[0]
    framed = np.zeros((11, 9))
    framed[1:-1, 1:-1] = base
    expect = 0.25 * (framed[:-2, 1:-1] + framed[2:, 1:-1]
                     + framed[1:-1, :-2] + framed[1:-1, 2:])
    assert np.allclose(full, expect)


def test_iterated_stencil_equals_serial_jacobi():
    base = np.zeros((8, 8))
    base[0, :] = 1.0

    def main():
        dp = DP.get()
        a = dp.from_full2d(base)
        for _ in range(5):
            a = a.stencil5()
        return a.gather(0)

    full = run_dp(4, main)[0]
    ref = base.copy()
    for _ in range(5):
        framed = np.zeros((10, 10))
        framed[1:-1, 1:-1] = ref
        ref = 0.25 * (framed[:-2, 1:-1] + framed[2:, 1:-1]
                      + framed[1:-1, :-2] + framed[1:-1, 2:])
    assert np.allclose(full, ref)


def test_conformance_checked():
    def main():
        dp = DP.get()
        a = dp.array2d(6, 4)
        b = dp.array2d(6, 5)
        try:
            _ = a + b
        except LanguageError:
            return "conform"

    assert run_dp(2, main) == ["conform"] * 2


def test_halo_with_too_few_rows_rejected():
    def main():
        dp = DP.get()
        a = dp.array2d(2, 4)
        try:
            a.row_halo()
        except LanguageError:
            return "rows"

    assert run_dp(4, main) == ["rows"] * 4


def test_from_full2d_rejects_wrong_ndim():
    def main():
        dp = DP.get()
        try:
            dp.from_full2d(np.zeros(5))
        except LanguageError:
            return "ndim"

    assert run_dp(1, main) == ["ndim"]
