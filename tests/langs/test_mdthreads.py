"""Tests for MDT — the section-4 coordination language — including the
paper's ~100-lines-of-runtime claim."""

from __future__ import annotations

import inspect

import pytest

from repro.core import api
from repro.core.errors import LanguageError
from repro.langs import mdthreads
from repro.langs.mdthreads import MDT
from repro.sim.machine import Machine


def run_mdt(num_pes, fn, **kw):
    with Machine(num_pes, **kw) as m:
        MDT.attach(m)
        m.launch(fn)
        m.run()
        return m.results()


def _driver_pe0(body):
    """Standard harness: PE0 spawns `body` as the driver thread; every PE
    runs the scheduler until the driver calls CsdExitAll."""
    def main():
        mdt = MDT.get()
        if mdt.my_pe == 0:
            mdt.spawn(body)
        api.CsdScheduler(-1)

    return main


def test_local_spawn_send_receive():
    out = []

    def child():
        m = MDT.get()
        out.append(m.receive(1))
        api.CsdExitAll()

    def driver():
        m = MDT.get()
        tid = m.spawn(child)
        m.send(tid, 1, "hello")

    run_mdt(1, _driver_pe0(driver))
    assert out == ["hello"]


def test_remote_spawn_and_reply():
    out = []

    def worker():
        m = MDT.get()
        val = m.receive(10)
        m.send(val, 11, ("worked on", m.my_pe))

    def driver():
        m = MDT.get()
        tid = m.spawn(worker, on_pe=1)
        assert tid[0] == 1
        m.send(tid, 10, m.self_tid())
        out.append(m.receive(11))
        api.CsdExitAll()

    run_mdt(2, _driver_pe0(driver))
    assert out == [("worked on", 1)]


def test_messages_queue_until_receive():
    out = []

    def child():
        m = MDT.get()
        # Sender fired three messages before we first receive.
        for _ in range(3):
            out.append(m.receive(2))
        api.CsdExitAll()

    def driver():
        m = MDT.get()
        tid = m.spawn(child)
        for i in range(3):
            m.send(tid, 2, i)

    run_mdt(1, _driver_pe0(driver))
    assert out == [0, 1, 2]


def test_receive_filters_by_tag():
    out = []

    def child():
        m = MDT.get()
        out.append(m.receive(5))
        out.append(m.receive(4))
        api.CsdExitAll()

    def driver():
        m = MDT.get()
        tid = m.spawn(child)
        m.send(tid, 4, "four")
        m.send(tid, 5, "five")

    run_mdt(1, _driver_pe0(driver))
    assert out == ["five", "four"]


def test_self_tid_outside_thread_rejected():
    def main():
        m = MDT.get()
        try:
            m.self_tid()
        except LanguageError:
            return "outside"

    with Machine(1) as mach:
        MDT.attach(mach)
        t = mach.launch_on(0, main)
        mach.run()
        assert t.result == "outside"


def test_send_to_dead_thread_raises():
    def short_lived():
        pass

    with Machine(1) as mach:
        MDT.attach(mach)

        def main():
            m = MDT.get()
            tid = m.spawn(short_lived)
            api.CsdScheduler(1)  # thread runs and dies
            try:
                m.send(tid, 1, "x")
            except LanguageError:
                return "dead"

        t = mach.launch_on(0, main)
        mach.run()
        assert t.result == "dead"


def test_tids_unique_across_spawners():
    seen = []

    def child():
        MDT.get().receive(99)  # parked forever; we only test ids

    def driver():
        m = MDT.get()
        seen.append(m.spawn(child, on_pe=1))
        seen.append(m.spawn(child, on_pe=1))
        seen.append(m.spawn(child))
        api.CsdExitAll()

    run_mdt(2, _driver_pe0(driver))
    assert len(set(seen)) == 3
    assert seen[0][0] == seen[1][0] == 1


def test_live_threads_tracked():
    def child():
        MDT.get().receive(1)

    def main():
        m = MDT.get()
        tid = m.spawn(child)
        api.CsdScheduler(1)
        alive = m.live_threads
        m.send(tid, 1, None)
        api.CsdScheduleUntilIdle()
        return alive, m.live_threads

    with Machine(1) as mach:
        MDT.attach(mach)
        t = mach.launch_on(0, main)
        mach.run()
        assert t.result == (1, 0)


def test_runtime_is_about_100_lines():
    """Section 4: 'The entire runtime for this language consists of about
    100 lines of C code.'  Hold the Python analogue to the same order:
    executable lines (no blanks, comments or docstrings) <= 130."""
    src = inspect.getsource(mdthreads)
    import ast
    import io
    import tokenize

    # Strip comments/docstrings via tokenize, count remaining code lines.
    code_lines = set()
    toks = tokenize.generate_tokens(io.StringIO(src).readline)
    prev_end = None
    for tok in toks:
        if tok.type in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                        tokenize.INDENT, tokenize.DEDENT, tokenize.ENCODING,
                        tokenize.ENDMARKER):
            continue
        if tok.type == tokenize.STRING:
            # Heuristic: module/class/function docstrings start a line.
            line_start = src.splitlines()[tok.start[0] - 1].lstrip()
            if line_start.startswith(('"""', "'''", 'r"""', "f'''")):
                continue
        for ln in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(ln)
    count = len(code_lines)
    assert count <= 130, (
        f"MDT runtime grew to {count} executable lines; the point of the "
        "coordination-language claim is that Converse primitives make it "
        "tiny — keep it that way"
    )
    assert count >= 60, "suspiciously small; did the counter break?"
