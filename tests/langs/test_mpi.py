"""Tests for the mini-MPI built on the MMI — the paper's claim that
"it is possible to provide an efficient MPI-style retrieval on top of
this interface" (section 3.1.3)."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import LanguageError
from repro.langs.mpi import ANY_SOURCE, ANY_TAG, MPI, Status
from repro.sim.machine import Machine


def run_mpi(num_pes, fn, **kw):
    with Machine(num_pes, **kw) as m:
        MPI.attach(m)
        m.launch(fn)
        m.run()
        return m.results()


# ----------------------------------------------------------------------
# point-to-point
# ----------------------------------------------------------------------

def test_rank_and_size():
    def main():
        comm = MPI.get().COMM_WORLD
        return comm.rank, comm.size

    assert run_mpi(3, main) == [(0, 3), (1, 3), (2, 3)]


def test_send_recv_pickleable_objects():
    def main():
        comm = MPI.get().COMM_WORLD
        if comm.rank == 0:
            comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
        elif comm.rank == 1:
            return comm.recv(source=0, tag=11)

    assert run_mpi(2, main)[1] == {"a": 7, "b": 3.14}


def test_recv_with_status_envelope():
    def main():
        comm = MPI.get().COMM_WORLD
        if comm.rank == 0:
            comm.send(b"12345", dest=1, tag=9)
        else:
            st = Status()
            data = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=st)
            return data, st.source, st.tag, st.count

    assert run_mpi(2, main)[1] == (b"12345", 0, 9, 5)


def test_pairwise_ordering_guarantee():
    """MPI's delivery-order promise: same (src, dst, tag-match) messages
    receive in send order."""
    def main():
        comm = MPI.get().COMM_WORLD
        if comm.rank == 0:
            for i in range(10):
                comm.send(i, dest=1, tag=5)
        else:
            return [comm.recv(source=0, tag=5) for _ in range(10)]

    assert run_mpi(2, main)[1] == list(range(10))


def test_tag_and_source_selectivity():
    def main():
        comm = MPI.get().COMM_WORLD
        me = comm.rank
        if me in (0, 1):
            comm.send(f"r{me}t1", dest=2, tag=1)
            comm.send(f"r{me}t2", dest=2, tag=2)
        else:
            a = comm.recv(source=1, tag=2)
            b = comm.recv(source=ANY_SOURCE, tag=1)
            c = comm.recv(source=0, tag=ANY_TAG)
            d = comm.recv()
            return a, sorted([b, c, d])

    a, rest = run_mpi(3, main)[2]
    assert a == "r1t2"
    assert sorted(rest) == sorted(["r0t1", "r0t2", "r1t1"])


def test_isend_irecv_wait_test():
    def main():
        comm = MPI.get().COMM_WORLD
        if comm.rank == 0:
            req = comm.isend([1, 2, 3], dest=1, tag=4)
            req.wait()
            return req.test()
        req = comm.irecv(source=0, tag=4)
        data = req.wait()
        return data, req.test()

    results = run_mpi(2, main)
    assert results[0] is True
    assert results[1] == ([1, 2, 3], True)


def test_probe_and_iprobe():
    def main():
        comm = MPI.get().COMM_WORLD
        if comm.rank == 0:
            api.CmiCharge(50e-6)
            miss = comm.iprobe(tag=99)
            st = comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            # probe does not consume:
            data = comm.recv(source=st.source, tag=st.tag)
            return miss, st.tag, data
        comm.send("probed", dest=0, tag=3)

    assert run_mpi(2, main)[0] == (None, 3, "probed")


def test_bad_tag_rejected():
    def main():
        comm = MPI.get().COMM_WORLD
        try:
            comm.send(1, dest=0, tag=-5)
        except LanguageError:
            return "bad"

    assert run_mpi(1, main) == ["bad"]


# ----------------------------------------------------------------------
# collectives
# ----------------------------------------------------------------------

def test_bcast_from_each_root():
    def main():
        comm = MPI.get().COMM_WORLD
        out = []
        for root in range(comm.size):
            value = f"from{root}" if comm.rank == root else None
            out.append(comm.bcast(value, root=root))
        return out

    results = run_mpi(4, main)
    assert all(r == ["from0", "from1", "from2", "from3"] for r in results)


def test_reduce_and_allreduce():
    def main():
        comm = MPI.get().COMM_WORLD
        s = comm.reduce(comm.rank + 1, lambda a, b: a + b, root=2)
        total = comm.allreduce(comm.rank + 1, lambda a, b: a + b)
        return s, total

    results = run_mpi(4, main)
    assert [r[0] for r in results] == [None, None, 10, None]
    assert all(r[1] == 10 for r in results)


def test_gather_scatter_roundtrip():
    def main():
        comm = MPI.get().COMM_WORLD
        gathered = comm.gather(comm.rank * 10, root=0)
        out = comm.scatter(
            [x + 1 for x in gathered] if comm.rank == 0 else None, root=0
        )
        return gathered, out

    results = run_mpi(4, main)
    assert results[0][0] == [0, 10, 20, 30]
    assert all(r[0] is None for r in results[1:])
    assert [r[1] for r in results] == [1, 11, 21, 31]


def test_alltoall():
    def main():
        comm = MPI.get().COMM_WORLD
        values = [f"{comm.rank}->{r}" for r in range(comm.size)]
        return comm.alltoall(values)

    results = run_mpi(3, main)
    for r, got in enumerate(results):
        assert got == [f"{src}->{r}" for src in range(3)]


def test_barrier_synchronizes():
    def main():
        comm = MPI.get().COMM_WORLD
        api.CmiCharge(comm.rank * 20e-6)
        comm.barrier()
        return api.CmiTimer()

    times = run_mpi(4, main)
    assert min(times) >= 60e-6


def test_scatter_wrong_count_rejected():
    def main():
        comm = MPI.get().COMM_WORLD
        try:
            comm.scatter([1], root=0)
        except LanguageError:
            return "count"

    with Machine(2) as m:
        MPI.attach(m)
        t = m.launch_on(0, main)
        m.launch_schedulers(pes=[1])
        m.run()
        assert t.result == "count"


# ----------------------------------------------------------------------
# communicators
# ----------------------------------------------------------------------

def test_split_into_even_odd():
    def main():
        world = MPI.get().COMM_WORLD
        sub = world.split(color=world.rank % 2, key=world.rank)
        total = sub.allreduce(world.rank, lambda a, b: a + b)
        return sub.rank, sub.size, total

    results = run_mpi(4, main)
    assert results[0] == (0, 2, 2)   # evens: 0 + 2
    assert results[1] == (0, 2, 4)   # odds: 1 + 3
    assert results[2] == (1, 2, 2)
    assert results[3] == (1, 2, 4)


def test_split_opt_out_with_negative_color():
    def main():
        world = MPI.get().COMM_WORLD
        sub = world.split(color=-1 if world.rank == 1 else 0)
        if sub is None:
            return None
        return sub.size

    results = run_mpi(3, main)
    assert results == [2, None, 2]


def test_contexts_isolate_equal_tags():
    """The same tag on two communicators never cross-matches — the MPI
    *context* property."""
    def main():
        world = MPI.get().COMM_WORLD
        sub = world.split(color=0, key=world.rank)  # same membership
        if world.rank == 0:
            world.send("world-msg", dest=1, tag=7)
            sub.send("sub-msg", dest=1, tag=7)
        elif world.rank == 1:
            from_sub = sub.recv(source=0, tag=7)
            from_world = world.recv(source=0, tag=7)
            return from_sub, from_world

    assert run_mpi(2, main)[1] == ("sub-msg", "world-msg")
