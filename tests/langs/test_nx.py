"""Tests for the NXLib subset: typed send/recv, async ids, global ops."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import NxError
from repro.langs.nx import NX, NX_ANY
from repro.sim.machine import Machine


def run_nx(num_pes, fn, **kw):
    with Machine(num_pes, **kw) as m:
        NX.attach(m)
        m.launch(fn)
        m.run()
        return m.results()


def test_identity():
    def main():
        nx = NX.get()
        return nx.mynode(), nx.numnodes()

    assert run_nx(2, main) == [(0, 2), (1, 2)]


def test_csend_crecv_typed():
    def main():
        nx = NX.get()
        if nx.mynode() == 0:
            nx.csend(5, b"typed", 1)
        else:
            data = nx.crecv(5)
            return data, nx.infocount(), nx.infonode()

    assert run_nx(2, main)[1] == (b"typed", 5, 0)


def test_crecv_wildcard_any_type():
    def main():
        nx = NX.get()
        if nx.mynode() == 0:
            return nx.crecv(NX_ANY)
        nx.csend(77, "whatever", 0)

    assert run_nx(2, main)[0] == "whatever"


def test_crecv_selects_by_type():
    def main():
        nx = NX.get()
        if nx.mynode() == 0:
            nx.csend(1, "first", 1)
            nx.csend(2, "second", 1)
        else:
            b = nx.crecv(2)
            a = nx.crecv(1)
            return a, b

    assert run_nx(2, main)[1] == ("first", "second")


def test_csend_minus_one_broadcasts():
    def main():
        nx = NX.get()
        if nx.mynode() == 0:
            nx.csend(4, "cast", -1)
            return None
        return nx.crecv(4)

    assert run_nx(3, main) == [None, "cast", "cast"]


def test_isend_msgwait():
    def main():
        nx = NX.get()
        if nx.mynode() == 0:
            mid = nx.isend(3, b"async", 1)
            nx.msgwait(mid)
            return nx.msgdone(mid)
        return nx.crecv(3)

    results = run_nx(2, main)
    assert results == [True, b"async"]


def test_isend_broadcast_rejected():
    def main():
        nx = NX.get()
        try:
            nx.isend(1, b"", -1)
        except NxError:
            return "no"

    assert run_nx(1, main) == ["no"]


def test_irecv_posted_before_arrival():
    def main():
        nx = NX.get()
        if nx.mynode() == 0:
            h = nx.irecv(6)
            pre = h.done
            data = nx.msgwait(h)
            return pre, data, h.mtype, h.source
        api.CmiCharge(50e-6)
        nx.csend(6, "prearranged", 0)

    assert run_nx(2, main)[0] == (False, "prearranged", 6, 1)


def test_irecv_after_arrival_completes_immediately():
    def main():
        nx = NX.get()
        if nx.mynode() == 0:
            api.CmiCharge(100e-6)
            nx.iprobe(NX_ANY)  # drain arrivals into the mailbox
            h = nx.irecv(2)
            return h.done, h.data
        nx.csend(2, "already here", 0)

    assert run_nx(2, main)[0] == (True, "already here")


def test_iprobe():
    def main():
        nx = NX.get()
        if nx.mynode() == 0:
            api.CmiCharge(100e-6)
            return nx.iprobe(8), nx.iprobe(9)
        nx.csend(8, None, 0)

    assert run_nx(2, main)[0] == (True, False)


def test_gsync_barrier():
    def main():
        nx = NX.get()
        api.CmiCharge(nx.mynode() * 25e-6)
        nx.gsync()
        return api.CmiTimer()

    times = run_nx(3, main)
    assert min(times) >= 50e-6


@pytest.mark.parametrize("op,values,expected", [
    ("gisum", [1, 2, 3, 4], 10),
    ("gdsum", [0.5, 1.5, 2.0, 3.0], 7.0),
    ("gprod", [1, 2, 3, 4], 24),
    ("ghigh", [5, 2, 9, 1], 9),
    ("glow", [5, 2, 9, 1], 1),
])
def test_global_operations(op, values, expected):
    def main():
        nx = NX.get()
        return getattr(nx, op)(values[nx.mynode()])

    results = run_nx(4, main)
    assert all(r == pytest.approx(expected) for r in results)


def test_bad_type_rejected():
    def main():
        nx = NX.get()
        try:
            nx.csend(-1, None, 0)
        except NxError:
            return "bad"

    assert run_nx(1, main) == ["bad"]
