"""Tests for the PVM subset: SPM mode, threaded mode, collectives."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import PvmError
from repro.langs.pvm import PVM, PVM_ANY
from repro.sim.machine import Machine


def run_pvm(num_pes, fn, **kw):
    with Machine(num_pes, **kw) as m:
        PVM.attach(m)
        m.launch(fn)
        m.run()
        return m.results()


def test_mytid_and_ntasks():
    def main():
        pvm = PVM.get()
        return pvm.mytid(), pvm.ntasks()

    assert run_pvm(3, main) == [(0, 3), (1, 3), (2, 3)]


def test_send_recv_with_envelope():
    def main():
        pvm = PVM.get()
        if pvm.mytid() == 0:
            pvm.send(1, 42, [1, 2, 3])
        else:
            msg = pvm.recv(tid=0, tag=42)
            return msg.tag, msg.source, msg.data

    assert run_pvm(2, main)[1] == (42, 0, [1, 2, 3])


def test_recv_wildcards():
    def main():
        pvm = PVM.get()
        me = pvm.mytid()
        if me == 0:
            got = [pvm.recv().tag for _ in range(2)]
            return sorted(got)
        pvm.send(0, me * 100, None)

    assert run_pvm(3, main)[0] == [100, 200]


def test_nrecv_nonblocking():
    def main():
        pvm = PVM.get()
        if pvm.mytid() == 0:
            miss = pvm.nrecv()
            hit = pvm.recv(tag=1)
            return miss is None, hit.data
        pvm.send(0, 1, "late")

    assert run_pvm(2, main)[0] == (True, "late")


def test_probe():
    def main():
        pvm = PVM.get()
        if pvm.mytid() == 0:
            api.CmiCharge(100e-6)
            return pvm.probe(tag=6), pvm.probe(tag=7)
        pvm.send(0, 6, b"abc", size=3)

    assert run_pvm(2, main)[0] == (3, -1)


def test_mcast_to_explicit_list():
    def main():
        pvm = PVM.get()
        if pvm.mytid() == 0:
            pvm.mcast([1, 3], 9, "group")
            return "sent"
        if pvm.mytid() in (1, 3):
            return pvm.recv(tag=9).data
        return "idle"

    assert run_pvm(4, main) == ["sent", "group", "idle", "group"]


def test_bcast_all_excludes_sender():
    def main():
        pvm = PVM.get()
        if pvm.mytid() == 2:
            pvm.bcast_all(3, "shout")
            return None
        return pvm.recv(tag=3).data

    assert run_pvm(3, main) == ["shout", "shout", None]


def test_barrier_synchronizes_all():
    def main():
        pvm = PVM.get()
        api.CmiCharge(pvm.mytid() * 20e-6)
        pvm.barrier()
        return api.CmiTimer()

    times = run_pvm(4, main)
    assert min(times) >= 60e-6


def test_reduce_and_gather():
    def main():
        pvm = PVM.get()
        total = pvm.reduce(lambda a, b: a + b, pvm.mytid())
        roots = pvm.gather(f"pe{pvm.mytid()}", root=2)
        return total, roots

    results = run_pvm(4, main)
    assert all(r[0] == 6 for r in results)
    assert results[2][1] == ["pe0", "pe1", "pe2", "pe3"]
    assert results[0][1] is None


def test_threaded_mode_recv_suspends_thread_only():
    """pvm.recv inside a spawned thread leaves the PE free to run other
    work — the multithreaded PVM mode of the paper."""
    def main():
        pvm = PVM.get()
        me = pvm.mytid()
        log = []
        if me == 0:
            def pvm_module():
                msg = pvm.recv(tid=1, tag=1)
                log.append(("got", msg.data))
                api.CsdExitAll()

            def other_work():
                log.append("other work ran while pvm waited")

            pvm.spawn(pvm_module)
            pvm.spawn(other_work)
            api.CsdScheduler(-1)
            return log
        else:
            def sender():
                api.CmiCharge(200e-6)  # arrive late on purpose
                pvm.send(0, 1, "finally")

            pvm.spawn(sender)
            api.CsdScheduler(-1)

    log = run_pvm(2, main)[0]
    assert log[0] == "other work ran while pvm waited"
    assert log[1] == ("got", "finally")


def test_bad_tag_rejected():
    def main():
        pvm = PVM.get()
        try:
            pvm.send(0, -3, None)
        except PvmError:
            return "bad"

    assert run_pvm(1, main) == ["bad"]


def test_stats():
    def main():
        pvm = PVM.get()
        if pvm.mytid() == 0:
            pvm.send(1, 1, "x")
            return pvm.stats_sent
        pvm.recv(tag=1)
        return pvm.stats_received

    assert run_pvm(2, main) == [1, 1]
