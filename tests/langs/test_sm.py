"""Tests for the SM simple messaging layer (SPM paradigm)."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import LanguageError
from repro.langs.sm import SM, SM_ANY
from repro.sim.machine import Machine


def run_sm(num_pes, fn, **kw):
    with Machine(num_pes, **kw) as m:
        SM.attach(m)
        m.launch(fn)
        m.run()
        return m.results()


def test_send_recv_basic():
    def main():
        sm = SM.get()
        if sm.my_pe == 0:
            sm.send(1, 7, {"payload": 42})
        else:
            tag, src, data = sm.recv(tag=7)
            return tag, src, data

    results = run_sm(2, main)
    assert results[1] == (7, 0, {"payload": 42})


def test_recv_filters_by_tag():
    def main():
        sm = SM.get()
        if sm.my_pe == 0:
            sm.send(1, 1, "first-sent")
            sm.send(1, 2, "wanted")
        else:
            tag, src, data = sm.recv(tag=2)
            later = sm.recv(tag=1)
            return data, later[2]

    results = run_sm(2, main)
    assert results[1] == ("wanted", "first-sent")


def test_recv_filters_by_source():
    def main():
        sm = SM.get()
        me = sm.my_pe
        if me in (0, 1):
            sm.send(2, 5, f"from{me}")
        else:
            a = sm.recv(tag=5, source=1)
            b = sm.recv(tag=5, source=0)
            return a[2], b[2]

    results = run_sm(3, main)
    assert results[2] == ("from1", "from0")


def test_wildcard_recv_any():
    def main():
        sm = SM.get()
        if sm.my_pe == 0:
            got = [sm.recv()[1] for _ in range(3)]
            return sorted(got)
        sm.send(0, sm.my_pe * 10, sm.my_pe)

    results = run_sm(4, main)
    assert results[0] == [1, 2, 3]


def test_try_recv_nonblocking():
    def main():
        sm = SM.get()
        if sm.my_pe == 0:
            empty = sm.try_recv()
            tag, src, data = sm.recv(tag=3)
            return empty, data
        sm.send(0, 3, "x")

    results = run_sm(2, main)
    assert results[0] == (None, "x")


def test_probe_sees_arrived_messages():
    def main():
        sm = SM.get()
        if sm.my_pe == 0:
            api.CmiCharge(100e-6)  # let the message land
            size = sm.probe(tag=9)
            absent = sm.probe(tag=10)
            got = sm.recv(tag=9)
            return size, absent
        sm.send(0, 9, b"12345", size=5)

    results = run_sm(2, main)
    assert results[0] == (5, -1)


def test_broadcast_excluding_self():
    def main():
        sm = SM.get()
        if sm.my_pe == 0:
            sm.broadcast(4, "all hands")
            return "sent"
        return sm.recv(tag=4)[2]

    results = run_sm(3, main)
    assert results == ["sent", "all hands", "all hands"]


def test_broadcast_including_self():
    def main():
        sm = SM.get()
        if sm.my_pe == 0:
            sm.broadcast(4, "inc", include_self=True)
        return sm.recv(tag=4)[2]

    assert run_sm(3, main) == ["inc", "inc", "inc"]


def test_tag_type_checked():
    def main():
        sm = SM.get()
        try:
            sm.send(0, "bad", 1)  # type: ignore[arg-type]
        except LanguageError:
            return "checked"

    assert run_sm(1, main) == ["checked"]


def test_get_before_attach_raises():
    with Machine(1) as m:
        def main():
            try:
                SM.get()
            except LanguageError as e:
                return "not attached" in str(e)

        t = m.launch_on(0, main)
        m.run()
        assert t.result is True


def test_spm_blocking_recv_buffers_other_handlers():
    """While SM blocks, a Converse message for another handler is
    side-buffered, not executed — the no-concurrency guarantee."""
    with Machine(2) as m:
        SM.attach(m)
        intruder_ran = []

        def receiver():
            sm = SM.get()
            hid = api.CmiRegisterHandler(lambda msg: intruder_ran.append(1), "in")
            data = sm.recv(tag=1)[2]
            ran_during = list(intruder_ran)
            api.CsdScheduler(1)  # now deliver the buffered intruder
            return data, ran_during, list(intruder_ran)

        def sender():
            sm = SM.get()
            hid = api.CmiRegisterHandler(lambda msg: None, "in")
            from repro.core.message import Message

            api.CmiSyncSend(0, Message(hid, None, size=0))  # intruder first
            sm.send(0, 1, "real")

        t = m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        data, during, after = t.result
        assert data == "real"
        assert during == []      # nothing ran while blocked
        assert after == [1]      # delivered later by the scheduler


def test_ring_pipeline_many_pes():
    def main():
        sm = SM.get()
        me, num = sm.my_pe, sm.num_pes
        if me == 0:
            sm.send(1, 0, [0])
            path = sm.recv(tag=0)[2]
            return path
        path = sm.recv(tag=0)[2]
        sm.send((me + 1) % num, 0, path + [me])

    results = run_sm(6, main)
    assert results[0] == [0, 1, 2, 3, 4, 5]


def test_stats_counters():
    def main():
        sm = SM.get()
        if sm.my_pe == 0:
            sm.send(1, 1, "a")
            sm.send(1, 2, "b")
            return sm.sends
        sm.recv(tag=1)
        sm.recv(tag=2)
        return sm.receives

    assert run_sm(2, main) == [2, 2]
