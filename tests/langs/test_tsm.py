"""Tests for tSM — threaded simple messaging (implicit control regime)."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import LanguageError
from repro.langs.tsm import TSM, TSM_ANY
from repro.sim.machine import Machine


def run_tsm(num_pes, fn, **kw):
    with Machine(num_pes, **kw) as m:
        TSM.attach(m)
        m.launch(fn)
        m.run()
        return m.results()


def test_thread_receive_blocks_thread_not_pe():
    """While one tSM thread waits, other threads on the PE keep going."""
    def main():
        tsm = TSM.get()
        if tsm.my_pe != 0:
            return api.CsdScheduler(-1)
        log = []

        def blocked():
            tsm.receive(tag=99)  # never satisfied in this test window
            log.append("unreachable")

        def runner():
            log.append("runner ran")
            api.CsdExitScheduler()

        tsm.create(blocked)
        tsm.create(runner)
        api.CsdScheduler(-1)
        return log

    assert run_tsm(1, main) == [["runner ran"]]


def test_cross_pe_threaded_pingpong():
    def main():
        tsm = TSM.get()
        me = tsm.my_pe
        out = []

        if me == 0:
            def ping():
                tsm.send(1, 1, "ping")
                _, _, data = tsm.receive(tag=2)
                out.append(data)
                api.CsdExitAll()

            tsm.create(ping)
        else:
            def pong():
                _, src, data = tsm.receive(tag=1)
                tsm.send(src, 2, data + "/pong")

            tsm.create(pong)
        api.CsdScheduler(-1)
        return out

    results = run_tsm(2, main)
    assert results[0] == ["ping/pong"]


def test_receive_wildcards_and_tags_interleave():
    def main():
        tsm = TSM.get()
        me = tsm.my_pe
        out = []
        if me == 0:
            def collector():
                for _ in range(3):
                    tag, src, data = tsm.receive(tag=TSM_ANY)
                    out.append((tag, data))
                api.CsdExitAll()

            tsm.create(collector)
        else:
            def sender():
                tsm.send(0, me * 10, f"d{me}")

            tsm.create(sender)
        api.CsdScheduler(-1)
        return sorted(out)

    results = run_tsm(4, main)
    assert results[0] == [(10, "d1"), (20, "d2"), (30, "d3")]


def test_many_threads_same_tag_each_get_one():
    def main():
        tsm = TSM.get()
        me = tsm.my_pe
        got = []
        if me == 0:
            def worker(i):
                _, _, data = tsm.receive(tag=5)
                got.append((i, data))
                if len(got) == 3:
                    api.CsdExitAll()

            for i in range(3):
                tsm.create(worker, i)
        else:
            def feed():
                for j in range(3):
                    tsm.send(0, 5, f"job{j}")

            tsm.create(feed)
        api.CsdScheduler(-1)
        return got

    results = run_tsm(2, main)
    got = results[0]
    assert sorted(d for _, d in got) == ["job0", "job1", "job2"]
    assert len({i for i, _ in got}) == 3  # three distinct threads


def test_receive_outside_thread_rejected():
    def main():
        tsm = TSM.get()
        try:
            tsm.receive(tag=1)
        except LanguageError as e:
            return "outside" in str(e)

    assert run_tsm(1, main) == [True]


def test_already_arrived_message_returns_without_suspend():
    def main():
        tsm = TSM.get()
        out = []

        def t1():
            tsm.send(0, 3, "early")  # loopback to self PE
            # Let the scheduler deliver the loopback.
            api.CthYield() if False else None
            tsm.mailbox  # noqa: B018

        def t2():
            _, _, d = tsm.receive(tag=3)
            out.append(d)
            api.CsdExitScheduler()

        tsm.create(t1)
        tsm.create(t2)
        api.CsdScheduler(-1)
        return out

    assert run_tsm(1, main) == [["early"]]


def test_probe_reflects_mailbox():
    def main():
        tsm = TSM.get()
        out = []

        def prober():
            out.append(tsm.probe(tag=8))   # nothing yet... or arrived
            _, _, d = tsm.receive(tag=8)
            out.append(tsm.probe(tag=8))   # consumed
            api.CsdExitScheduler()

        tsm.send(0, 8, b"xyz")  # self-send via loopback
        tsm.create(prober)
        api.CsdScheduler(-1)
        return out

    out = run_tsm(1, main)[0]
    assert out[-1] == -1


def test_blocked_threads_counter():
    def main():
        tsm = TSM.get()

        def blocked():
            tsm.receive(tag=12345)

        tsm.create(blocked)
        api.CsdScheduler(1)  # run the thread until it blocks
        n = tsm.blocked_threads
        api.CsdSchedulePoll()
        return n

    assert run_tsm(1, main) == [1]
