"""Unit tests for the Cld seed load balancers."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import LoadBalanceError
from repro.core.message import Message
from repro.loadbalance.strategies import BALANCERS, make_balancer
from repro.sim.machine import Machine
from repro.sim.models import GENERIC


def _run_seed_burst(ldb: str, num_pes: int = 4, seeds: int = 32, seed: int = 3):
    """Fire `seeds` trivial seeds from PE0; return (machine stats)."""
    with Machine(num_pes, model=GENERIC, ldb=ldb, seed=seed) as m:
        ran = {pe: 0 for pe in range(num_pes)}

        def register():
            def work(msg):
                ran[api.CmiMyPe()] += 1
            return api.CmiRegisterHandler(work, "seedwork")

        hids = {}

        def main():
            hids[api.CmiMyPe()] = register()
            if api.CmiMyPe() == 0:
                for _ in range(seeds):
                    api.CldEnqueue(Message(hids[0], None, size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        rooted = [rt.cld.stats.rooted for rt in m.runtimes]
        created = [rt.cld.stats.created for rt in m.runtimes]
        return ran, rooted, created


def test_registry_names():
    assert set(BALANCERS) == {"direct", "random", "spray", "neighbor", "central"}


def test_unknown_strategy_rejected():
    with pytest.raises(LoadBalanceError):
        with Machine(2, ldb="magic"):
            pass


def test_direct_keeps_all_seeds_local():
    ran, rooted, created = _run_seed_burst("direct")
    assert ran[0] == 32 and sum(ran.values()) == 32
    assert rooted == [32, 0, 0, 0]
    assert created == [32, 0, 0, 0]


def test_spray_round_robins_evenly():
    ran, rooted, _ = _run_seed_burst("spray")
    assert sum(ran.values()) == 32
    assert all(v == 8 for v in ran.values())
    assert all(r == 8 for r in rooted)


def test_random_spreads_and_conserves():
    ran, rooted, _ = _run_seed_burst("random", seeds=64)
    assert sum(ran.values()) == 64
    assert sum(rooted) == 64
    # With 64 seeds over 4 PEs, at least three PEs should see work.
    assert sum(1 for v in ran.values() if v > 0) >= 3


def test_random_deterministic_per_seed():
    a = _run_seed_burst("random", seed=11)
    b = _run_seed_burst("random", seed=11)
    c = _run_seed_burst("random", seed=12)
    assert a == b
    assert a != c


def test_central_places_on_least_loaded():
    ran, rooted, _ = _run_seed_burst("central", seeds=40)
    assert sum(ran.values()) == 40
    # The manager never hoards: spread within a reasonable band.
    assert max(rooted) - min(rooted) <= 20


def test_neighbor_keeps_light_load_local():
    """Below the threshold, the neighbour strategy never forwards."""
    with Machine(4, ldb="neighbor") as m:
        def main():
            hid = api.CmiRegisterHandler(lambda msg: None, "w")
            if api.CmiMyPe() == 0:
                api.CldEnqueue(Message(hid, None, size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert m.runtime(0).cld.stats.rooted == 1
        assert m.runtime(0).cld.stats.forwarded == 0


def test_neighbor_sheds_heavy_load():
    ran, rooted, _ = _run_seed_burst("neighbor", seeds=48)
    assert sum(ran.values()) == 48
    # Spilling to ring neighbours: PEs 1 and 3 (PE0's neighbours) get work.
    assert ran[1] > 0 or ran[3] > 0


def test_seed_priority_preserved_through_balancer():
    """A seed's priority survives forwarding, and seeds queued together
    on one PE execute in priority order."""
    with Machine(2, ldb="spray", queue="int") as m:
        order = []
        prios_seen = []

        def main():
            def work(msg):
                order.append(msg.payload)
                prios_seen.append(msg.prio)

            hid = api.CmiRegisterHandler(work, "w")
            if api.CmiMyPe() == 0:
                # Spray alternates PE1, PE0, PE1, PE0: the two PE0 seeds
                # root locally *before* the scheduler runs, so they sit
                # in the queue together and must reorder by priority.
                for i, prio in [(0, 9), (1, 7), (2, 5), (3, 2)]:
                    api.CldEnqueue(Message(hid, (i, prio), size=8, prio=prio))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        # Priorities travelled intact with their seeds.
        assert {p for _, p in order} == {9, 7, 5, 2}
        assert all(p == msg_p for (_, p), msg_p in zip(order, prios_seen))
        # PE0's co-queued seeds (prios 7 and 2) ran lowest-first.
        pe0 = [p for i, p in order if i in (1, 3)]
        assert pe0 == [2, 7]


def test_stats_conservation_invariant():
    """created == rooted + in-flight(0 at quiescence) machine-wide, and
    every forwarded seed was received somewhere."""
    for ldb in BALANCERS:
        ran, rooted, created = _run_seed_burst(ldb, seeds=20)
        assert sum(created) == 20
        assert sum(rooted) == 20
        assert sum(ran.values()) == 20
