"""Unit tests for the Cld seed load balancers."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import LoadBalanceError
from repro.core.message import Message
from repro.loadbalance.strategies import BALANCERS, make_balancer
from repro.sim.machine import Machine
from repro.sim.models import GENERIC


def _run_seed_burst(ldb: str, num_pes: int = 4, seeds: int = 32, seed: int = 3):
    """Fire `seeds` trivial seeds from PE0; return (machine stats)."""
    with Machine(num_pes, model=GENERIC, ldb=ldb, seed=seed) as m:
        ran = {pe: 0 for pe in range(num_pes)}

        def register():
            def work(msg):
                ran[api.CmiMyPe()] += 1
            return api.CmiRegisterHandler(work, "seedwork")

        hids = {}

        def main():
            hids[api.CmiMyPe()] = register()
            if api.CmiMyPe() == 0:
                for _ in range(seeds):
                    api.CldEnqueue(Message(hids[0], None, size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        rooted = [rt.cld.stats.rooted for rt in m.runtimes]
        created = [rt.cld.stats.created for rt in m.runtimes]
        return ran, rooted, created


def test_registry_names():
    assert set(BALANCERS) == {
        "direct", "random", "spray", "neighbor", "central",
        "adaptive", "steal",
    }


def test_unknown_strategy_rejected():
    with pytest.raises(LoadBalanceError):
        with Machine(2, ldb="magic"):
            pass


def test_direct_keeps_all_seeds_local():
    ran, rooted, created = _run_seed_burst("direct")
    assert ran[0] == 32 and sum(ran.values()) == 32
    assert rooted == [32, 0, 0, 0]
    assert created == [32, 0, 0, 0]


def test_spray_round_robins_evenly():
    ran, rooted, _ = _run_seed_burst("spray")
    assert sum(ran.values()) == 32
    assert all(v == 8 for v in ran.values())
    assert all(r == 8 for r in rooted)


def test_random_spreads_and_conserves():
    ran, rooted, _ = _run_seed_burst("random", seeds=64)
    assert sum(ran.values()) == 64
    assert sum(rooted) == 64
    # With 64 seeds over 4 PEs, at least three PEs should see work.
    assert sum(1 for v in ran.values() if v > 0) >= 3


def test_random_deterministic_per_seed():
    a = _run_seed_burst("random", seed=11)
    b = _run_seed_burst("random", seed=11)
    c = _run_seed_burst("random", seed=12)
    assert a == b
    assert a != c


def test_central_places_on_least_loaded():
    ran, rooted, _ = _run_seed_burst("central", seeds=40)
    assert sum(ran.values()) == 40
    # The manager never hoards: spread within a reasonable band.
    assert max(rooted) - min(rooted) <= 20


def test_neighbor_keeps_light_load_local():
    """Below the threshold, the neighbour strategy never forwards."""
    with Machine(4, ldb="neighbor") as m:
        def main():
            hid = api.CmiRegisterHandler(lambda msg: None, "w")
            if api.CmiMyPe() == 0:
                api.CldEnqueue(Message(hid, None, size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert m.runtime(0).cld.stats.rooted == 1
        assert m.runtime(0).cld.stats.forwarded == 0


def test_neighbor_sheds_heavy_load():
    ran, rooted, _ = _run_seed_burst("neighbor", seeds=48)
    assert sum(ran.values()) == 48
    # Spilling to ring neighbours: PEs 1 and 3 (PE0's neighbours) get work.
    assert ran[1] > 0 or ran[3] > 0


def test_seed_priority_preserved_through_balancer():
    """A seed's priority survives forwarding, and seeds queued together
    on one PE execute in priority order."""
    with Machine(2, ldb="spray", queue="int") as m:
        order = []
        prios_seen = []

        def main():
            def work(msg):
                order.append(msg.payload)
                prios_seen.append(msg.prio)

            hid = api.CmiRegisterHandler(work, "w")
            if api.CmiMyPe() == 0:
                # Spray alternates PE1, PE0, PE1, PE0: the two PE0 seeds
                # root locally *before* the scheduler runs, so they sit
                # in the queue together and must reorder by priority.
                for i, prio in [(0, 9), (1, 7), (2, 5), (3, 2)]:
                    api.CldEnqueue(Message(hid, (i, prio), size=8, prio=prio))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        # Priorities travelled intact with their seeds.
        assert {p for _, p in order} == {9, 7, 5, 2}
        assert all(p == msg_p for (_, p), msg_p in zip(order, prios_seen))
        # PE0's co-queued seeds (prios 7 and 2) ran lowest-first.
        pe0 = [p for i, p in order if i in (1, 3)]
        assert pe0 == [2, 7]


def test_stats_conservation_invariant():
    """created == rooted + in-flight(0 at quiescence) machine-wide, and
    every forwarded seed was received somewhere."""
    for ldb in BALANCERS:
        ran, rooted, created = _run_seed_burst(ldb, seeds=20)
        assert sum(created) == 20
        assert sum(rooted) == 20
        assert sum(ran.values()) == 20


# ----------------------------------------------------------------------
# telemetry: the gossip table and its failure modes
# ----------------------------------------------------------------------

def test_remote_load_without_telemetry_raises_clear_error():
    """A strategy that never declared ``needs_remote_load`` has no
    gossip table; asking for a peer's load must fail loudly with a
    LoadBalanceError that names the fix — not the opaque AttributeError
    the old live reach-through produced on process-per-PE layers."""
    with Machine(2, ldb="direct") as m:
        m.launch(lambda: api.CsdScheduler(-1))
        m.run()
        cld = m.runtime(0).cld
        assert cld._gossip is None
        with pytest.raises(LoadBalanceError) as err:
            cld.load_of(1)
        assert "needs_remote_load" in str(err.value)
        assert "direct" in str(err.value)


def test_zero_cost_when_balancing_off():
    """Need-based cost audit: with a non-migrating strategy there is no
    gossip object, no gossip handler, and no idle-steal hook — the fast
    paths pay nothing for telemetry nobody reads."""
    with Machine(2, ldb="direct") as m:
        m.launch(lambda: api.CsdScheduler(-1))
        m.run()
        for rt in m.runtimes:
            assert rt.cld._gossip is None
            assert rt.idle_steal is None
            assert "cld.gossip" not in rt.handlers._names
            assert "cld.steal.req" not in rt.handlers._names


def test_migrating_strategies_install_their_hooks():
    with Machine(2, ldb="steal") as m:
        m.launch(lambda: api.CsdScheduler(-1))
        m.run()
        for rt in m.runtimes:
            assert rt.cld._gossip is not None
            assert rt.idle_steal is not None
            assert "cld.gossip" in rt.handlers._names


def _run_charged_burst(ldb: str, num_pes: int = 4, seeds: int = 128,
                       grain_s: float = 50e-6, seed: int = 5):
    """Like ``_run_seed_burst`` but each seed charges virtual time, so
    PE 0 stays visibly loaded long enough for periodic rebalancing and
    idle-driven stealing to engage."""
    with Machine(num_pes, model=GENERIC, ldb=ldb, seed=seed) as m:
        ran = {pe: 0 for pe in range(num_pes)}

        def main():
            def work(msg):
                ran[api.CmiMyPe()] += 1
                api.CmiCharge(grain_s)

            hid = api.CmiRegisterHandler(work, "hotwork")
            if api.CmiMyPe() == 0:
                for _ in range(seeds):
                    api.CldEnqueue(Message(hid, None, size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        rooted = [rt.cld.stats.rooted for rt in m.runtimes]
        created = [rt.cld.stats.created for rt in m.runtimes]
        return m, ran, rooted, created


def test_adaptive_sheds_hot_pe():
    """A single-PE burst must not stay put: the periodic rebalance pass
    migrates queued seeds off the overloaded PE, conservation holds, and
    every PE ends up with real work."""
    m, ran, rooted, created = _run_charged_burst("adaptive")
    assert sum(created) == 128 and sum(rooted) == 128
    assert sum(ran.values()) == 128
    assert rooted[0] < 128, "adaptive never migrated anything"
    assert all(v > 0 for v in ran.values()), f"idle PEs left: {ran}"
    assert sum(rt.cld.migrated for rt in m.runtimes) > 0


def test_steal_pulls_work_to_idle_pes():
    """Idle PEs must actually steal: non-zero wins, stolen-seed count
    matches the migration the stats recorded, conservation holds."""
    m, ran, rooted, created = _run_charged_burst("steal")
    assert sum(created) == 128 and sum(rooted) == 128
    assert sum(ran.values()) == 128
    won = sum(rt.cld.steals_won for rt in m.runtimes)
    stolen = sum(rt.cld.seeds_stolen for rt in m.runtimes)
    assert won > 0 and stolen > 0
    assert rooted[0] < 128, "no seed ever left the hot PE"
    assert sum(1 for v in ran.values() if v > 0) >= 2


def test_gossip_stays_low_rate():
    """Telemetry must cost a small fraction of the seed traffic: the
    periodic broadcast count stays well below the seed count, and every
    timer disarms at quiescence (the run terminating proves that)."""
    m, ran, _, _ = _run_charged_burst("adaptive", seeds=128)
    broadcasts = sum(rt.cld._gossip.broadcasts for rt in m.runtimes)
    assert 0 < broadcasts < 128


def test_central_pending_drains_to_zero_at_quiescence():
    """Regression for the only-ever-increments in-flight estimate: after
    a 10k-seed burst the manager's pending table must have drained to
    zero via root acks (before the fix it still held all 10 000, and
    placement quality decayed with every seed)."""
    with Machine(4, model=GENERIC, ldb="central", seed=3) as m:
        def main():
            hid = api.CmiRegisterHandler(lambda msg: None, "w")
            if api.CmiMyPe() == 0:
                for _ in range(10_000):
                    api.CldEnqueue(Message(hid, None, size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        pending = m.runtime(0).cld._pending
        assert pending == {}, (
            f"manager estimate did not decay: {sum(pending.values())} "
            f"seeds still 'in flight' at quiescence"
        )
        rooted = [rt.cld.stats.rooted for rt in m.runtimes]
        assert sum(rooted) == 10_000
        # With an honest estimate the manager spreads the burst instead
        # of letting stale history drive placement to one victim.
        assert max(rooted) - min(rooted) <= 10_000 // 4
