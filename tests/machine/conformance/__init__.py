"""Cross-backend CMI conformance battery.

Every machine layer registered in :mod:`repro.machine.base` must pass
these tests identically — they are the operational definition of
"speaks CMI".  Worker mains live in :mod:`tests.machine.conformance.workers`
as module-level functions so the multiprocess layer can pickle them.
"""
