"""Backend parametrization for the conformance battery.

``machine_backend`` yields every *registered* machine layer name: the
simulator always, and each additional layer either live (when the
platform supports it) or as an explicit skip that names the reason —
a silently shrinking test matrix is itself a conformance bug.
"""

from __future__ import annotations

import pytest

from repro.machine.base import (
    MACHINE_LAYERS,
    machine_backend_unavailable_reason,
)
from repro.sim.machine import Machine

# Generous wall-clock ceiling for the multiprocess layer: conformance
# programs exchange tens of messages, so hitting this means a hang,
# not a slow machine.
MP_TIMEOUT = 60.0


def _backend_params():
    params = []
    for name in MACHINE_LAYERS:
        reason = machine_backend_unavailable_reason(name)
        marks = [pytest.mark.skip(reason=f"machine layer {name!r} unavailable: {reason}")] if reason else []
        params.append(pytest.param(name, marks=marks, id=name))
    return params


@pytest.fixture(params=_backend_params())
def machine_backend(request):
    """Name of the machine layer under test ('sim', 'mp', ...)."""
    return request.param


@pytest.fixture
def spmd(machine_backend):
    """Run one SPMD worker function on ``num_pes`` PEs of the layer
    under test and return the per-PE result list."""

    def _run(num_pes, fn, *args, **machine_kwargs):
        if machine_backend == "mp":
            machine_kwargs.setdefault("timeout", MP_TIMEOUT)
        machine = Machine(num_pes, machine_backend=machine_backend, **machine_kwargs)
        try:
            machine.launch(fn, *args)
            machine.run()
            return machine.results()
        finally:
            machine.shutdown()

    return _run
