"""Cld (seed load balancing) conformance: every strategy must honour the
same seed contract on every machine layer.

The contract, per strategy and backend:

* **No seed lost or duplicated** — the multiset of seed tags that ran,
  unioned over all PEs, equals the created tag set exactly once each.
* **Conservation** — machine-wide ``sum(created) == sum(rooted)`` at
  quiescence, even for strategies that migrate already-rooted seeds
  (adaptive rebalancing, work stealing) — a migrated seed's final root
  is counted exactly once, on its final PE.
* **Per-PE consistency** — each PE's rooted count equals the number of
  seeds that actually ran there.

Placement itself is *not* part of the cross-backend contract: the mp
layer schedules against wall-clock timers, so where a seed lands can
legitimately differ from the simulator.  Determinism of placement is
asserted on the simulator only, where the whole machine is a
deterministic discrete-event program.
"""

from __future__ import annotations

import pytest

from repro.loadbalance.strategies import BALANCERS

from tests.machine.conformance import workers as w

pytestmark = pytest.mark.conformance

SEEDS = 48
GRAIN_S = 20e-6

# Every registered strategy must pass; new strategies are covered the
# moment they are registered.
STRATEGIES = sorted(BALANCERS)


@pytest.mark.parametrize("ldb", STRATEGIES)
def test_seed_multiset_and_conservation(spmd, ldb):
    results = spmd(4, w.w_cld_seed_burst, SEEDS, GRAIN_S, ldb=ldb)
    ran_per_pe = [tags for tags, _stats in results]
    stats = [s for _tags, s in results]

    all_ran = sorted(tag for tags in ran_per_pe for tag in tags)
    assert all_ran == list(range(SEEDS)), (
        f"[{ldb}] seed loss/duplication: ran {all_ran}"
    )

    created = sum(s[0] for s in stats)
    rooted = sum(s[2] for s in stats)
    assert created == SEEDS
    assert rooted == SEEDS, (
        f"[{ldb}] conservation broken: created={created} rooted={rooted} "
        f"(per-PE stats {stats})"
    )

    for pe, (tags, s) in enumerate(results):
        assert s[2] == len(tags), (
            f"[{ldb}] PE {pe} rooted {s[2]} seeds but ran {len(tags)}"
        )


@pytest.mark.parametrize("ldb", STRATEGIES)
def test_sim_placement_is_deterministic(spmd, machine_backend, ldb):
    if machine_backend != "sim":
        pytest.skip("placement determinism is a simulator-only guarantee")
    a = spmd(4, w.w_cld_seed_burst, SEEDS, GRAIN_S, ldb=ldb, seed=11)
    b = spmd(4, w.w_cld_seed_burst, SEEDS, GRAIN_S, ldb=ldb, seed=11)
    assert [tags for tags, _ in a] == [tags for tags, _ in b], (
        f"[{ldb}] same machine seed produced different placements"
    )


def test_distributing_strategies_spread_on_every_backend(spmd):
    """Not a placement assertion, a *liveness* one: under spray the
    burst must not all sit on PE 0 (the point of the module), and that
    must hold on every layer."""
    results = spmd(4, w.w_cld_seed_burst, SEEDS, GRAIN_S, ldb="spray")
    occupied = sum(1 for tags, _ in results if tags)
    assert occupied >= 2, f"spray left everything on one PE: {results}"
