"""The CMI contract battery, run identically against every machine layer.

Each test makes *portable* assertions only — nothing about virtual time,
delivery interleaving beyond what the MMI guarantees, or layer
internals.  A layer that passes this file "speaks CMI".
"""

from __future__ import annotations

import pytest

from repro.sim.machine import Machine

from tests.machine.conformance import workers as w
from tests.machine.conformance.conftest import MP_TIMEOUT

pytestmark = pytest.mark.conformance


def test_handler_dispatch_by_index(spmd):
    results = spmd(2, w.w_handler_dispatch)
    assert results[0] is None
    assert sorted(results[1]["a"]) == [b"for-a", b"for-a-2"]
    assert results[1]["b"] == [b"for-b"]


def test_pingpong_round_trips(spmd):
    assert spmd(2, w.w_pingpong, 10, 64) == [10, 10]


def test_pingpong_large_payload(spmd):
    assert spmd(2, w.w_pingpong, 3, 256 * 1024) == [3, 3]


def test_multi_sender_delivery_multiset(spmd):
    # The MMI guarantees delivery of every message, not an order; the
    # received multiset must equal the union of the sent multisets.
    results = spmd(4, w.w_multi_sender, 5)
    sent = sorted(x for sender in results[1:] for x in sender)
    assert results[0] == sent
    assert len(sent) == 15


def test_broadcast_reaches_everyone_else(spmd):
    # CmiSyncBroadcast: N-1 copies, none at the root — and the root does
    # not block (it returns without ever entering the scheduler).
    assert spmd(4, w.w_broadcast, False) == [0, 1, 1, 1]


def test_broadcast_all_includes_root(spmd):
    assert spmd(4, w.w_broadcast, True) == [1, 1, 1, 1]


def test_self_send_loops_back(spmd):
    results = spmd(3, w.w_self_send)
    assert results == [(pe, b"to-myself") for pe in range(3)]


def test_async_send_handle_completion(spmd):
    results = spmd(2, w.w_async_send, 5)
    assert results[0] == {"count": 5, "done_at_reply": True}
    assert results[1] == 5


def test_quiescence_with_no_traffic(spmd):
    assert spmd(4, w.w_quiescence_idle, 100) == [100, 101, 102, 103]


def test_quiescence_after_ring_traffic(spmd):
    results = spmd(3, w.w_quiescence_ring, 4)
    assert sum(results) == 12  # every hop counted exactly once


def test_quiescence_waits_for_timers(spmd):
    # A pending Ccd callback is work; detecting quiescence before it
    # fires would be a protocol bug on any layer.
    assert spmd(2, w.w_ccd_timer) == [1, 0]


def test_immediate_messages_delivered(spmd):
    assert spmd(2, w.w_immediate, 5) == [None, 5]


def test_set_handler_retargets_dispatch(spmd):
    assert spmd(2, w.w_set_handler_retarget) == [None, ["b"]]


def test_printf_lines(machine_backend):
    kwargs = {"timeout": MP_TIMEOUT} if machine_backend == "mp" else {}
    machine = Machine(3, machine_backend=machine_backend, **kwargs)
    try:
        machine.launch(w.w_printf, "conform")
        machine.run()
        assert machine.results() == [0, 1, 2]
        assert sorted(machine.console.lines()) == [
            f"conform from pe {pe} of 3\n" for pe in range(3)
        ]
    finally:
        machine.shutdown()


def test_run_returns_quiescent(machine_backend):
    kwargs = {"timeout": MP_TIMEOUT} if machine_backend == "mp" else {}
    machine = Machine(2, machine_backend=machine_backend, **kwargs)
    try:
        machine.launch(w.w_quiescence_idle, 0)
        assert machine.run() == "quiescent"
    finally:
        machine.shutdown()


def test_shutdown_hygiene(machine_backend):
    # Shutdown is idempotent, safe before run(), and leaves no threads
    # behind (the autouse no_thread_leaks fixture enforces the latter).
    kwargs = {"timeout": MP_TIMEOUT} if machine_backend == "mp" else {}
    m = Machine(2, machine_backend=machine_backend, **kwargs)
    m.shutdown()
    m.shutdown()

    m2 = Machine(2, machine_backend=machine_backend, **kwargs)
    try:
        m2.launch(w.w_quiescence_idle, 0)
        m2.run()
    finally:
        m2.shutdown()
    m2.shutdown()


def test_context_manager(machine_backend):
    kwargs = {"timeout": MP_TIMEOUT} if machine_backend == "mp" else {}
    with Machine(2, machine_backend=machine_backend, **kwargs) as m:
        m.launch(w.w_quiescence_idle, 7)
        m.run()
        assert m.results() == [7, 8]
