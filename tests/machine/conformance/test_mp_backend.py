"""Multiprocess-layer specifics: things the contract battery cannot
express portably — real parallelism, wall-clock timeouts, worker-crash
propagation, and scope fencing of simulator-only calls."""

from __future__ import annotations

import os
import time

import pytest

from repro.core.errors import SimulationError
from repro.machine.base import (
    machine_backend_available,
    machine_backend_unavailable_reason,
)
from repro.sim.machine import Machine

from tests.machine.conformance import workers as w

pytestmark = [
    pytest.mark.conformance,
    pytest.mark.skipif(
        not machine_backend_available("mp"),
        reason=f"mp layer unavailable: {machine_backend_unavailable_reason('mp')}",
    ),
]


def test_measured_parallelism():
    """ISSUE acceptance: pingpong-style programs on the mp layer must
    actually use more than one core.  CPU-burning mains on 2 PEs must
    accumulate measurably more CPU time than the wall clock — only
    possible with real (not time-sliced GIL) concurrency."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip("needs >= 2 cores to demonstrate parallelism")
    burn = 0.4
    m = Machine(2, machine_backend="mp", timeout=60.0)
    try:
        m.launch(w.w_burn, burn)
        t0 = time.monotonic()
        m.run()
        wall = time.monotonic() - t0
        assert m.results() == [0, 1]
        m.shutdown()  # workers report CPU totals on shutdown
        cpu = sum(m.worker_cpu_seconds().values())
        # 2 PEs x burn seconds of pure CPU; utilization strictly above
        # one core proves >1 core ran simultaneously.
        assert cpu >= 2 * burn
        assert cpu / wall > 1.2, f"cpu={cpu:.2f}s wall={wall:.2f}s"
    finally:
        m.shutdown()


def test_hang_hits_timeout_and_cleans_up():
    m = Machine(2, machine_backend="mp", timeout=3.0)
    try:
        m.launch(w.w_hang)
        with pytest.raises(SimulationError, match="timed out"):
            m.run()
    finally:
        m.shutdown()
    # run() already shut the machine down; every worker process is gone.
    assert all(not p.is_alive() for p in m._procs)


def test_worker_exception_propagates():
    m = Machine(2, machine_backend="mp", timeout=30.0)
    try:
        m.launch(w.w_raise, 1)
        with pytest.raises(SimulationError, match="deliberate worker failure"):
            m.run()
    finally:
        m.shutdown()


def test_single_run_per_machine():
    m = Machine(2, machine_backend="mp", timeout=30.0)
    try:
        m.launch(w.w_quiescence_idle, 0)
        m.run()
        with pytest.raises(SimulationError, match="single run"):
            m.run()
    finally:
        m.shutdown()


def test_late_launch_rejected():
    m = Machine(2, machine_backend="mp", timeout=30.0)
    try:
        m.launch(w.w_quiescence_idle, 0)
        m.run()
        with pytest.raises(SimulationError, match="launches before run"):
            m.launch(w.w_quiescence_idle, 0)
    finally:
        m.shutdown()


def test_virtual_time_horizons_rejected():
    m = Machine(2, machine_backend="mp", timeout=30.0)
    try:
        m.launch(w.w_quiescence_idle, 0)
        with pytest.raises(SimulationError, match="virtual-time"):
            m.run(until=1.0)
    finally:
        m.shutdown()


def test_unpicklable_launch_args_rejected_eagerly():
    m = Machine(2, machine_backend="mp", timeout=30.0)
    try:
        with pytest.raises(SimulationError, match="picklable"):
            m.launch(w.w_quiescence_idle, lambda: None)
    finally:
        m.shutdown()


def test_launch_schedulers_with_stop_broadcast():
    """The implicit control regime: every PE sits in a scheduler loop;
    a single launched main drives them all down via the ring worker."""
    m = Machine(2, machine_backend="mp", timeout=30.0)
    try:
        m.launch(w.w_quiescence_ring, 2)
        m.run()
        assert sum(m.results()) == 4
    finally:
        m.shutdown()


def test_results_before_run_raises():
    m = Machine(2, machine_backend="mp", timeout=30.0)
    try:
        m.launch(w.w_quiescence_idle, 0)
        with pytest.raises(SimulationError, match="has not finished"):
            m.results()
    finally:
        m.shutdown()
