"""Cross-backend observability conformance.

The tool chain is part of the portability claim: the *same* workload,
traced and metered on the simulator and on the multiprocess layer, must
produce (a) metrics whose handler-invocation multisets agree and (b) a
merged mp trace that satisfies the same well-formedness and
critical-path invariants a simulator trace does — consumed by the
*unchanged* analysis pipelines.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.errors import SimulationError
from repro.machine.base import (
    machine_backend_available,
    machine_backend_unavailable_reason,
)
from repro.sim.machine import Machine
from repro.tracing import critical_path, summarize
from repro.tracing.merge import load_spool, merge_spools, spool_path
from repro.tracing.tracer import CountingTracer, MemoryTracer

from tests.machine.conformance import workers as w

pytestmark = [
    pytest.mark.conformance,
    pytest.mark.skipif(
        not machine_backend_available("mp"),
        reason=f"mp layer unavailable: {machine_backend_unavailable_reason('mp')}",
    ),
]

PES = 4
LAPS = 3
MP_TIMEOUT = 60.0


def _run_obs_ring(machine_backend, **kwargs):
    if machine_backend == "mp":
        kwargs.setdefault("timeout", MP_TIMEOUT)
    m = Machine(PES, machine_backend=machine_backend, **kwargs)
    try:
        m.launch(w.w_obs_ring, LAPS)
        m.run()
        assert m.results() == [LAPS] * PES
        m.shutdown()  # mp finalizes trace/metrics at shutdown
        return m
    finally:
        m.shutdown()


# ----------------------------------------------------------------------
# metrics: sim and mp agree on the invocation multiset
# ----------------------------------------------------------------------
def test_handler_counts_match_across_backends():
    sim = _run_obs_ring("sim", metrics=True).metrics_snapshot()
    mp = _run_obs_ring("mp", metrics=True).metrics_snapshot()
    for name in ("csd.handlers_run", "cmi.receives", "cmi.sends"):
        assert name in sim and name in mp, f"{name} missing from a snapshot"
        assert mp[name]["per_pe"] == sim[name]["per_pe"], (
            f"{name} per-PE multiset diverged: sim={sim[name]['per_pe']} "
            f"mp={mp[name]['per_pe']}"
        )
        assert mp[name]["total"] == sim[name]["total"]
    # Every PE ran its laps plus the stop broadcast.
    per_pe = mp["csd.handlers_run"]["per_pe"]
    assert all(per_pe[str(pe)] == LAPS + 1 for pe in range(PES))


# ----------------------------------------------------------------------
# tracing: the merged mp trace is a first-class trace
# ----------------------------------------------------------------------
def _assert_wellformed(tracer):
    """The invariants the sim-trace suite enforces, on a merged trace:
    per-PE monotone timestamps, strictly paired handler begin/end with
    non-negative durations."""
    last = {}
    stacks = {}
    for ev in tracer.events:
        assert ev.time >= last.get(ev.pe, 0.0) - 1e-9, (
            f"pe{ev.pe} time went backwards: {ev.time} after {last[ev.pe]}"
        )
        last[ev.pe] = ev.time
        if ev.kind == "handler_begin":
            stacks.setdefault(ev.pe, []).append(ev.time)
        elif ev.kind == "handler_end":
            assert stacks.get(ev.pe), f"pe{ev.pe}: end without begin"
            begin = stacks[ev.pe].pop()
            assert ev.time >= begin - 1e-9
    assert not any(stacks.values()), f"unclosed handlers: {stacks}"


def test_mp_merged_trace_is_wellformed_and_walkable():
    m = _run_obs_ring("mp", trace=True)
    tracer = m.tracer
    assert isinstance(tracer, MemoryTracer)
    assert m.trace_merge_error is None
    _assert_wellformed(tracer)
    # Exact event accounting: every PE ran LAPS token handlers + 1 stop.
    begins = tracer.by_kind("handler_begin")
    assert len(begins) == PES * (LAPS + 1)
    # The unchanged analysis pipeline accepts it...
    s = summarize(tracer)
    assert s.total_events == len(tracer.events)
    assert sorted(s.profiles) == list(range(PES))
    # ...and so does the critical-path walker, whose span invariant
    # (exec + msg + wait == span, all non-negative) only holds on a
    # causally consistent timeline.
    cp = critical_path(tracer)
    assert cp.segments, "critical path found no executions"
    bd = cp.breakdown()
    assert all(v >= 0 for v in bd.values()), bd
    assert sum(bd.values()) == pytest.approx(cp.span, rel=1e-6, abs=1e-9)
    assert all(seg.duration >= -1e-9 for seg in cp.segments)


def test_mp_jsonl_spools_merge_and_cli_roundtrip(tmp_path):
    target = tmp_path / "run.jsonl"
    _run_obs_ring("mp", trace=f"jsonl:{target}")
    # The merged single-timeline file plus the distributed evidence.
    assert target.exists()
    spools = [spool_path(target, pe) for pe in range(PES)]
    assert all(os.path.exists(p) for p in spools)
    clock = tmp_path / "run.clock.json"
    assert clock.exists()
    offsets = json.loads(clock.read_text())
    assert sorted(offsets) == [str(pe) for pe in range(PES)]
    # Re-merging the spools through the CLI path reproduces the run.
    merged = merge_spools(spools, clock_file=clock)
    _assert_wellformed(merged)
    from repro.tracing.tracer import load_jsonl

    written = load_jsonl(target)
    assert len(merged.events) == len(written.events)
    # Spool loading alone (one PE, own clock) is already well-formed.
    one = load_spool(spools[0])
    assert all(e.pe == 0 for e in one.events)


def test_mp_count_mode_counts_all_pes():
    m = _run_obs_ring("mp", trace="count")
    assert isinstance(m.tracer, CountingTracer)
    assert m.tracer.total("handler_begin") == PES * (LAPS + 1)
    pes_seen = {pe for (pe, _k) in m.tracer.counts}
    assert pes_seen == set(range(PES))


# ----------------------------------------------------------------------
# off means off
# ----------------------------------------------------------------------
def test_off_machine_has_no_tracer_and_rejects_snapshot():
    m = _run_obs_ring("mp")
    assert m.tracer is None
    with pytest.raises(SimulationError, match="without metrics"):
        m.metrics_snapshot()


def test_worker_off_config_builds_no_instrumentation():
    """The guard-audit satellite, dynamic half: a worker machine built
    with observability off has no tracer, no registry, no receive-side
    metric handles — and its runtime binds the *fast* dispatch variant,
    so the hot path costs zero instrumentation (the static half is the
    source audit in tests/tracing/test_guard_audit.py, which covers
    machine/mp.py like every other src file)."""
    import socket

    from repro.core.runtime import ConverseRuntime
    from repro.machine import mp as mp_mod

    a, b = socket.socketpair()
    try:
        link = mp_mod._WorkerLink(a, 0)
        machine = mp_mod._WorkerMachine(0, 2, link, {"queue": "fifo"})
        assert machine.tracer is None
        assert machine.metrics is None
        node = machine.node_obj
        assert node._mx_recvs is None and node._mx_recv_bytes is None
        assert not node._delivery_hooks
        rt = ConverseRuntime(node, machine, queue="fifo")
        assert not rt.tracing and not rt.metering
        # The bound method is the class default, not the instrumented one.
        assert rt.invoke_handler.__func__ is not \
            ConverseRuntime._invoke_handler_instrumented
    finally:
        a.close()
        b.close()


def test_worker_on_config_builds_instrumentation():
    import socket

    from repro.machine import mp as mp_mod
    from repro.tracing.tracer import LockingTracer

    a, b = socket.socketpair()
    try:
        link = mp_mod._WorkerLink(a, 0)
        machine = mp_mod._WorkerMachine(
            0, 4, link, {"queue": "fifo", "trace": ("count",), "metrics": True}
        )
        assert isinstance(machine.tracer, LockingTracer)
        assert machine.metrics is not None
        assert machine.node_obj._mx_recvs is not None
        # Residue-class msg-id allocation: PE 0 of 4 mints 4, 8, 12, ...
        assert machine._msg_id_seq == 0 and machine._msg_id_stride == 4
    finally:
        a.close()
        b.close()


# ----------------------------------------------------------------------
# live health & the flight recorder
# ----------------------------------------------------------------------
def test_health_reports_every_pe():
    m = Machine(2, machine_backend="mp", timeout=MP_TIMEOUT,
                health_interval=0.05)
    try:
        m.launch(w.w_burn, 0.5)
        m.run()
        health = m.health()
        assert sorted(health) == [0, 1]
        # Health frames stream during the run; a 0.5 s burn at a 50 ms
        # cadence guarantees several arrived.
        assert any("handlers" in snap for snap in health.values())
        assert m.flight_recorder(), "flight recorder stayed empty"
    finally:
        m.shutdown()


def test_timeout_error_carries_flight_recorder():
    m = Machine(2, machine_backend="mp", timeout=2.0, health_interval=0.05)
    try:
        m.launch(w.w_hang)
        with pytest.raises(SimulationError) as exc:
            m.run()
    finally:
        m.shutdown()
    msg = str(exc.value)
    assert "timed out" in msg
    assert "flight recorder" in msg
    assert "pe0" in msg and "pe1" in msg


def test_rejects_cross_process_instances():
    from repro.metrics.registry import MetricsRegistry
    from repro.tracing.tracer import MemoryTracer

    with pytest.raises(SimulationError, match="registry instances"):
        Machine(2, machine_backend="mp", metrics=MetricsRegistry())
    with pytest.raises(SimulationError, match="process boundaries"):
        Machine(2, machine_backend="mp", trace=MemoryTracer())
    with pytest.raises(SimulationError, match="tracer spec"):
        Machine(2, machine_backend="mp", trace="counting")
