"""Buffer-ownership and message-header invariants at the CMI boundary.

The ownership protocol (handler buffers are the CMI's unless grabbed;
sync-send returns the buffer to the sender) and the header accounting
(``CmiMsgHeaderSizeBytes``, src_pe stamping, handler index, priorities)
must be byte-identical across machine layers.
"""

from __future__ import annotations

import pytest

from repro.core.message import HEADER_BYTES

from tests.machine.conformance import workers as w

pytestmark = pytest.mark.conformance


def test_unclaimed_handler_buffer_is_recycled(spmd):
    results = spmd(2, w.w_ownership_recycle)
    assert results[1] == {"valid": False, "raises": True}


def test_grabbed_buffer_survives_handler(spmd):
    results = spmd(2, w.w_ownership_grab)
    assert results[1] == {"valid": True, "payload": b"durable"}


def test_sync_send_leaves_sender_buffer_intact(spmd):
    # CmiSyncSend semantics: on return, the sender owns its buffer again
    # and may reuse it; receiver-side consumption (even rebinding the
    # received copy's payload) must never be observable at the sender.
    results = spmd(2, w.w_sender_keeps_buffer, 3)
    assert results[0] == {"payload": b"sender-owned-bytes", "intact": True}
    assert results[1] == 3


def test_header_size_and_fields(spmd):
    results = spmd(2, w.w_header_invariants)
    # Identical across backends: both PEs and the test process agree on
    # the canonical header accounting.
    assert results[0]["header_bytes"] == HEADER_BYTES
    receiver = results[1]
    assert receiver["header_bytes"] == HEADER_BYTES
    assert receiver["src"] == (0, 0)
    assert receiver["handler_ok"] is True
    assert receiver["int_prio"] == 7
    assert receiver["bits_prio"] == "1011"
    # modelled payload sizes survive the wire unchanged
    assert receiver["sizes"] == (len(b"int-prio"), len(b"bits-prio"))
