"""Machine-layer registry and selection semantics.

These tests pin the selection contract itself: default, env override,
explicit argument, unknown-name and unavailable-layer errors, and the
``Machine(machine_backend=...)`` dispatch — mirroring the simulator's
``REPRO_SIM_BACKEND`` switching idiom.
"""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.machine.base import (
    DEFAULT_MACHINE_BACKEND,
    MACHINE_BACKEND_ENV_VAR,
    MACHINE_LAYERS,
    available_machine_backends,
    create_machine,
    machine_backend_available,
    machine_backend_unavailable_reason,
    machine_layer_class,
    resolve_machine_backend,
)
from repro.sim.machine import Machine

pytestmark = pytest.mark.conformance

mp_only = pytest.mark.skipif(
    not machine_backend_available("mp"),
    reason=f"mp layer unavailable: {machine_backend_unavailable_reason('mp')}",
)


def test_sim_is_registered_and_default():
    assert "sim" in MACHINE_LAYERS
    assert DEFAULT_MACHINE_BACKEND == "sim"
    assert machine_backend_available("sim")
    assert "sim" in available_machine_backends()


def test_mp_is_registered():
    assert "mp" in MACHINE_LAYERS


def test_resolve_default(monkeypatch):
    monkeypatch.delenv(MACHINE_BACKEND_ENV_VAR, raising=False)
    assert resolve_machine_backend(None) == "sim"


def test_resolve_env_override(monkeypatch):
    monkeypatch.setenv(MACHINE_BACKEND_ENV_VAR, "sim")
    assert resolve_machine_backend(None) == "sim"


@mp_only
def test_resolve_env_override_mp(monkeypatch):
    monkeypatch.setenv(MACHINE_BACKEND_ENV_VAR, "mp")
    assert resolve_machine_backend(None) == "mp"
    # An explicit argument beats the environment.
    assert resolve_machine_backend("sim") == "sim"


def test_resolve_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown machine backend"):
        resolve_machine_backend("vapor")


def test_resolve_env_unknown_name_raises(monkeypatch):
    monkeypatch.setenv(MACHINE_BACKEND_ENV_VAR, "vapor")
    with pytest.raises(ValueError, match="unknown machine backend"):
        resolve_machine_backend(None)


def test_resolve_rejects_non_string():
    with pytest.raises(ValueError):
        resolve_machine_backend(7)


def test_machine_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown machine backend"):
        Machine(2, machine_backend="vapor")


def test_machine_explicit_sim_is_sim():
    m = Machine(2, machine_backend="sim")
    try:
        assert type(m) is Machine
        assert m.machine_backend_name == "sim"
    finally:
        m.shutdown()


def test_machine_default_is_sim(monkeypatch):
    monkeypatch.delenv(MACHINE_BACKEND_ENV_VAR, raising=False)
    m = Machine(2)
    try:
        assert m.machine_backend_name == "sim"
    finally:
        m.shutdown()


def test_machine_layer_class_loads():
    assert machine_layer_class("sim") is Machine


def test_create_machine_builds_sim():
    m = create_machine(2, machine_backend="sim")
    try:
        assert m.machine_backend_name == "sim"
    finally:
        m.shutdown()


@mp_only
def test_machine_dispatches_to_mp():
    from repro.machine.mp import MpMachine

    # Construction is cheap — worker processes only start at run().
    m = Machine(2, machine_backend="mp")
    try:
        assert type(m) is MpMachine
        assert isinstance(m, Machine) is False
        assert m.machine_backend_name == "mp"
        assert m.num_pes == 2
    finally:
        m.shutdown()  # safe before run()


@mp_only
def test_machine_env_dispatches_to_mp(monkeypatch):
    from repro.machine.mp import MpMachine

    monkeypatch.setenv(MACHINE_BACKEND_ENV_VAR, "mp")
    m = Machine(2)
    try:
        assert type(m) is MpMachine
    finally:
        m.shutdown()


@mp_only
@pytest.mark.parametrize(
    "kwargs",
    [
        {"aggregation": True},
        {"backend": "greenlet"},
    ],
    ids=lambda kw: next(iter(kw)),
)
def test_mp_rejects_simulator_only_features(kwargs):
    # trace=/metrics= and faults=/reliable=/ft= are *not* in this list:
    # the mp layer supports them first-class (per-PE spools and
    # registries; hub-level fault injection, in-worker reliable/ft) —
    # see test_observability.py and tests/faults/.
    with pytest.raises(SimulationError, match="simulator-only"):
        Machine(2, machine_backend="mp", **kwargs)


@mp_only
def test_mp_accepts_simulator_only_features_at_off_defaults():
    m = Machine(
        2, machine_backend="mp",
        trace=False, metrics=False, faults=None, reliable=False,
        aggregation=False, ft=False, backend=None,
    )
    m.shutdown()


@mp_only
def test_mp_validates_fault_arguments():
    # faults= takes a FaultPlan (same message as the simulator layer);
    # ft= still requires the reliable-delivery layer underneath.
    with pytest.raises(SimulationError, match="FaultPlan"):
        Machine(2, machine_backend="mp", faults=object())
    with pytest.raises(SimulationError, match="reliable"):
        Machine(2, machine_backend="mp", ft=True)


@mp_only
def test_mp_constructs_with_faults_reliable_ft():
    from repro.ft.config import FTConfig
    from repro.sim.network import FaultPlan

    m = Machine(
        2, machine_backend="mp",
        faults=FaultPlan(seed=3, drop=0.05), reliable=True, ft=FTConfig(),
    )
    try:
        assert m.fault_plan is not None
        # Socket-scale floors applied to the shipped configs.
        assert m._rel_config.rto >= 0.02
        assert m._ft_config.heartbeat_period >= 0.025
    finally:
        m.shutdown()


@mp_only
def test_mp_rejects_callable_queue():
    # The simulator accepts scheduler-queue factories; the mp layer only
    # takes the named strategies it can ship to a worker process.
    with pytest.raises(SimulationError):
        Machine(2, machine_backend="mp", queue=lambda: None)


def test_unavailable_reason_empty_for_sim():
    assert machine_backend_unavailable_reason("sim") == ""


def test_unavailable_reason_names_unknown():
    assert "unknown" in machine_backend_unavailable_reason("vapor")
