"""SPMD worker mains for the conformance battery.

Module-level functions only: the multiprocess layer ships launch specs
to worker processes by (picklable) reference, so closures over test
state cannot cross the machine boundary — workers communicate results
exclusively through their return values (``machine.results()``),
which works identically on every layer.
"""

from __future__ import annotations

from repro.core import api
from repro.core.errors import BufferOwnershipError
from repro.core.message import BitVector


def _register_stop():
    """Register the conventional stop handler (a remotely-sendable
    ``CsdExitScheduler``) and return its index."""
    return api.CmiRegisterHandler(lambda _msg: api.CsdExitScheduler(), "stop")


# ----------------------------------------------------------------------
# dispatch, delivery, ordering
# ----------------------------------------------------------------------
def w_handler_dispatch():
    """Two handlers per PE; PE 0 targets each one on PE 1 explicitly.
    Proves messages dispatch by handler *index* and nothing leaks
    between handlers."""
    me = api.CmiMyPe()
    hits = {"a": [], "b": []}

    def on_a(msg):
        hits["a"].append(bytes(msg.payload))

    def on_b(msg):
        hits["b"].append(bytes(msg.payload))
        api.CsdExitScheduler()

    h_a = api.CmiRegisterHandler(on_a, "conf.a")
    h_b = api.CmiRegisterHandler(on_b, "conf.b")
    if me == 0:
        api.CmiSyncSend(1, api.CmiNew(h_a, b"for-a"))
        api.CmiSyncSend(1, api.CmiNew(h_a, b"for-a-2"))
        api.CmiSyncSend(1, api.CmiNew(h_b, b"for-b"))
        return None
    api.CsdScheduler(-1)
    # on_b exits after one message; drain anything a left behind.
    api.CsdSchedulePoll()
    return {"a": hits["a"], "b": hits["b"]}


def w_pingpong(rounds, nbytes):
    """The classic round-trip: PE 0 <-> PE 1, ``rounds`` full trips.
    Returns the per-PE message count."""
    me = api.CmiMyPe()
    state = {"count": 0}
    h_stop = _register_stop()

    def on_ping(msg):
        state["count"] += 1
        if me == 1:
            api.CmiSyncSend(0, api.CmiNew(h_ping, msg.payload))
        elif state["count"] >= rounds:
            api.CmiSyncSend(1, api.CmiNew(h_stop, b""))
            api.CsdExitScheduler()
        else:
            api.CmiSyncSend(1, api.CmiNew(h_ping, msg.payload))

    h_ping = api.CmiRegisterHandler(on_ping, "conf.ping")
    if me == 0:
        api.CmiSyncSend(1, api.CmiNew(h_ping, b"x" * nbytes))
    api.CsdScheduler(-1)
    return state["count"]


def w_multi_sender(per_sender):
    """Every PE > 0 fires ``per_sender`` numbered messages at PE 0.

    The MMI guarantees delivery, not ordering ("no ordering guarantee
    between messages of a pair of processors" is the *weakest* reading —
    the contract tested is set-equality of the delivered multiset).
    Senders return what they sent; PE 0 returns what it received.
    """
    me = api.CmiMyPe()
    n = api.CmiNumPes()
    expected = (n - 1) * per_sender
    got = []

    def on_msg(msg):
        got.append(tuple(msg.payload))
        if len(got) >= expected:
            api.CsdExitScheduler()

    h = api.CmiRegisterHandler(on_msg, "conf.sink")
    if me == 0:
        api.CsdScheduler(-1)
        return sorted(got)
    sent = []
    for i in range(per_sender):
        api.CmiSyncSend(0, api.CmiNew(h, (me, i)))
        sent.append((me, i))
    return sorted(sent)


def w_broadcast(include_self):
    """PE 0 broadcasts once; every PE returns how many copies arrived.
    ``CmiSyncBroadcast`` must fan out to exactly the other N-1 PEs,
    ``CmiSyncBroadcastAll`` to all N — and a broadcast is not a barrier,
    so the root continues without waiting."""
    me = api.CmiMyPe()
    got = {"n": 0}

    def on_msg(msg):
        got["n"] += 1
        api.CsdExitScheduler()

    h = api.CmiRegisterHandler(on_msg, "conf.bcast")
    if me == 0:
        msg = api.CmiNew(h, b"fanout")
        if include_self:
            api.CmiSyncBroadcastAll(msg)
            api.CsdScheduler(-1)  # the root's own copy arrives like any other
        else:
            api.CmiSyncBroadcast(msg)
        return got["n"]
    api.CsdScheduler(-1)
    return got["n"]


def w_self_send():
    """A PE sends to itself; the loopback path must behave like any
    other delivery (handler runs from the scheduler, src_pe stamped)."""
    me = api.CmiMyPe()
    seen = {}

    def on_msg(msg):
        seen["src"] = msg.src_pe
        seen["payload"] = bytes(msg.payload)
        api.CsdExitScheduler()

    h = api.CmiRegisterHandler(on_msg, "conf.self")
    api.CmiSyncSend(me, api.CmiNew(h, b"to-myself"))
    api.CsdScheduler(-1)
    return (seen["src"], seen["payload"])


def w_async_send(rounds):
    """CmiAsyncSend round trips.  A reply proves the outbound send
    completed, so by the time each reply arrives ``CmiAsyncMsgSent``
    must be True for the handle that produced it — on every layer,
    without the test assuming anything about how time advances."""
    me = api.CmiMyPe()
    state = {"count": 0, "done_at_reply": True, "handle": None}
    h_stop = _register_stop()

    def _send_async(msg):
        state["handle"] = api.CmiAsyncSend(1, msg)

    def on_ping(msg):
        state["count"] += 1
        if me == 1:
            api.CmiSyncSend(0, api.CmiNew(h_ping, msg.payload))
            return
        if not api.CmiAsyncMsgSent(state["handle"]):
            state["done_at_reply"] = False
        api.CmiReleaseCommHandle(state["handle"])
        if state["count"] >= rounds:
            api.CmiSyncSend(1, api.CmiNew(h_stop, b""))
            api.CsdExitScheduler()
        else:
            _send_async(api.CmiNew(h_ping, msg.payload))

    h_ping = api.CmiRegisterHandler(on_ping, "conf.aping")
    if me == 0:
        _send_async(api.CmiNew(h_ping, b"y" * 16))
    api.CsdScheduler(-1)
    if me == 1:
        return state["count"]
    return {"count": state["count"], "done_at_reply": state["done_at_reply"]}


def w_quiescence_idle(value):
    """No traffic at all: the machine must still detect quiescence with
    every main simply returning."""
    return value + api.CmiMyPe()


def w_quiescence_ring(laps):
    """A token circles the ring ``laps`` times with no explicit
    synchronization; termination is pure quiescence bookkeeping (every
    PE's scheduler exits on a stop broadcast from the token's owner)."""
    me = api.CmiMyPe()
    n = api.CmiNumPes()
    state = {"hops": 0}
    h_stop = _register_stop()

    def on_token(msg):
        state["hops"] += 1
        lap, hops = msg.payload
        hops += 1
        if hops >= laps * n:
            for pe in range(n):
                if pe != me:
                    api.CmiSyncSend(pe, api.CmiNew(h_stop, b""))
            api.CsdExitScheduler()
            return
        api.CmiSyncSend((me + 1) % n, api.CmiNew(h_token, (lap, hops)))

    h_token = api.CmiRegisterHandler(on_token, "conf.token")
    if me == 0:
        api.CmiSyncSend(1 % n, api.CmiNew(h_token, (0, 0)))
    api.CsdScheduler(-1)
    return state["hops"]


def w_printf(tag):
    """Every PE emits one atomic console line."""
    api.CmiPrintf("%s from pe %d of %d\n", tag, api.CmiMyPe(), api.CmiNumPes())
    return api.CmiMyPe()


def w_immediate(count):
    """PE 0 fires immediate messages at PE 1, which counts them in its
    handler while sitting in a plain scheduler loop; a final normal
    message releases PE 1.

    Unlike queued messages (dispatched when the receiver's scheduler
    runs, by which time its main has registered everything), immediate
    messages dispatch *on arrival* — so a portable program must not
    send them until the target PE is known to be ready.  PE 1 therefore
    announces readiness first; racing immediates against registration
    only happens to work on layers with synchronized startup."""
    me = api.CmiMyPe()
    got = {"n": 0}

    def on_imm(_msg):
        got["n"] += 1

    def on_done(_msg):
        api.CsdExitScheduler()

    def on_ready(_msg):
        for _ in range(count):
            api.CmiImmediateSend(1, api.CmiNew(h_imm, b"!"))
        api.CmiSyncSend(1, api.CmiNew(h_done, b""))
        api.CsdExitScheduler()

    h_imm = api.CmiRegisterHandler(on_imm, "conf.imm")
    h_done = api.CmiRegisterHandler(on_done, "conf.imm-done")
    h_ready = api.CmiRegisterHandler(on_ready, "conf.imm-ready")
    if me == 0:
        api.CsdScheduler(-1)  # wait for PE 1's readiness announcement
        return None
    api.CmiSyncSend(0, api.CmiNew(h_ready, b""))
    api.CsdScheduler(-1)
    return got["n"]


# ----------------------------------------------------------------------
# buffer ownership & header invariants
# ----------------------------------------------------------------------
def w_ownership_recycle():
    """A handler that does *not* grab its buffer loses it: after the
    handler returns the CMI recycles the message, and later payload
    access must raise BufferOwnershipError on every layer."""
    me = api.CmiMyPe()
    kept = {}

    def on_msg(msg):
        kept["msg"] = msg  # deliberately not grabbed
        api.CsdExitScheduler()

    h = api.CmiRegisterHandler(on_msg, "conf.own")
    if me == 0:
        api.CmiSyncSend(1, api.CmiNew(h, b"ephemeral"))
        return None
    api.CsdScheduler(-1)
    msg = kept["msg"]
    out = {"valid": msg.valid}
    try:
        _ = msg.payload
        out["raises"] = False
    except BufferOwnershipError:
        out["raises"] = True
    return out


def w_ownership_grab():
    """CmiGrabBuffer transfers ownership: a grabbed buffer survives the
    handler and its payload stays readable."""
    me = api.CmiMyPe()
    kept = {}

    def on_msg(msg):
        kept["msg"] = api.CmiGrabBuffer(msg)
        api.CsdExitScheduler()

    h = api.CmiRegisterHandler(on_msg, "conf.grab")
    if me == 0:
        api.CmiSyncSend(1, api.CmiNew(h, b"durable"))
        return None
    api.CsdScheduler(-1)
    msg = kept["msg"]
    return {"valid": msg.valid, "payload": bytes(msg.payload)}


def w_sender_keeps_buffer(rounds):
    """CmiSyncSend semantics: when the call returns the sender owns its
    buffer again — the receiver's consumption (and even the receiver
    rebinding its copy's payload) must never be observable on the
    sender's message object, which stays reusable for further sends."""
    me = api.CmiMyPe()
    state = {"count": 0}
    h_stop = _register_stop()

    def on_msg(msg):
        state["count"] += 1
        # Receiver-side rebinding: must be invisible to the sender.
        msg._payload = b"clobbered-by-receiver"
        if state["count"] >= rounds:
            api.CmiSyncSend(0, api.CmiNew(h_stop, b""))
            api.CsdExitScheduler()

    h = api.CmiRegisterHandler(on_msg, "conf.keep")
    if me == 0:
        original = b"sender-owned-bytes"
        msg = api.CmiNew(h, original)
        for _ in range(rounds):  # the same buffer, reused every round
            api.CmiSyncSend(1, msg)
        api.CsdScheduler(-1)
        return {"payload": bytes(msg.payload), "intact": msg.payload == original}
    api.CsdScheduler(-1)
    return state["count"]


def w_header_invariants():
    """HEADER_BYTES accounting and header fields must be identical
    across layers: src_pe stamped by the CMI, handler index preserved,
    priorities (int and BitVector) delivered unchanged."""
    me = api.CmiMyPe()
    got = {}

    def on_msg(msg):
        got[len(got)] = {
            "src": msg.src_pe,
            "handler": msg.handler,
            "prio": msg.prio,
            "size": msg.size,
            "payload": bytes(msg.payload),
        }
        if len(got) >= 2:
            api.CsdExitScheduler()

    h = api.CmiRegisterHandler(on_msg, "conf.header")
    header_bytes = api.CmiMsgHeaderSizeBytes()
    if me == 0:
        api.CmiSyncSend(1, api.CmiNew(h, b"int-prio", prio=7))
        api.CmiSyncSend(1, api.CmiNew(h, b"bits-prio", prio=BitVector("1011")))
        return {"header_bytes": header_bytes}
    api.CsdScheduler(-1)
    first, second = got[0], got[1]
    # Arrival order of the two is not part of the contract.
    if first["payload"] != b"int-prio":
        first, second = second, first
    return {
        "header_bytes": header_bytes,
        "src": (first["src"], second["src"]),
        "handler_ok": first["handler"] == h and second["handler"] == h,
        "int_prio": first["prio"],
        "bits_prio": second["prio"].bits,
        "sizes": (first["size"], second["size"]),
    }


def w_ccd_timer():
    """A Ccd timed callback is *pending work*: quiescence must wait for
    it (on any layer), and the callback runs in handler context."""
    me = api.CmiMyPe()
    fired = {"n": 0}

    def cb():
        fired["n"] += 1
        api.CsdExitScheduler()

    if me == 0:
        api.CcdCallFnAfter(0.01, cb)
        api.CsdScheduler(-1)
    return fired["n"]


def w_burn(cpu_seconds):
    """Burn ~cpu_seconds of CPU on every PE (measured-parallelism probe
    for the multiprocess layer)."""
    import time as _time

    start = _time.process_time()
    x = 0
    while _time.process_time() - start < cpu_seconds:
        x += sum(range(1000))
    return api.CmiMyPe()


def w_hang():
    """Never quiesce: a Ccd callback that re-arms itself keeps a timer
    pending forever.  Exists to prove run() timeouts fire and clean up."""

    def rearm():
        api.CcdCallFnAfter(0.05, rearm)

    api.CcdCallFnAfter(0.05, rearm)
    api.CsdScheduler(-1)


def w_raise(victim_pe):
    """Raise in the main program of one PE — the failure must surface
    from run()/results() as an error naming the PE, not hang the job."""
    if api.CmiMyPe() == victim_pe:
        raise RuntimeError("conformance: deliberate worker failure")
    return "ok"


def w_set_handler_retarget():
    """CmiSetHandler on a fresh message must steer dispatch: build a
    message for handler A, retarget to handler B, send — only B runs."""
    me = api.CmiMyPe()
    ran = []

    def on_a(_msg):
        ran.append("a")
        api.CsdExitScheduler()

    def on_b(_msg):
        ran.append("b")
        api.CsdExitScheduler()

    h_a = api.CmiRegisterHandler(on_a, "conf.ra")
    h_b = api.CmiRegisterHandler(on_b, "conf.rb")
    if me == 0:
        msg = api.CmiNew(h_a, b"retarget")
        api.CmiSetHandler(msg, h_b)
        api.CmiSyncSend(1, msg)
        return None
    api.CsdScheduler(-1)
    return ran


def w_cld_seed_burst(seeds_n, grain_s):
    """Cld conformance workload: PE 0 CldEnqueues ``seeds_n`` tagged
    seeds; each seed burns ``grain_s`` of charged time wherever it
    roots, then acks PE 0, which broadcasts a stop once every tag has
    been accounted for.

    Every PE returns ``(sorted tags that ran here, CldGetStats())`` so
    the test can check — identically on every machine layer — that the
    rooted multiset equals the created set (no seed lost, duplicated,
    or stuck in flight) and that ``sum(created) == sum(rooted)``."""
    me = api.CmiMyPe()
    ran = []
    acked = {"n": 0}

    def on_seed(msg):
        ran.append(msg.payload)
        api.CmiCharge(grain_s)
        api.CmiSyncSend(0, api.CmiNew(h_ack, None, size=8))

    def on_ack(_msg):
        acked["n"] += 1
        if acked["n"] >= seeds_n:
            api.CmiSyncBroadcastAll(api.CmiNew(h_stop, None, size=8))

    def on_stop(_msg):
        api.CsdExitScheduler()

    h_seed = api.CmiRegisterHandler(on_seed, "conf.cld.seed")
    h_ack = api.CmiRegisterHandler(on_ack, "conf.cld.ack")
    h_stop = api.CmiRegisterHandler(on_stop, "conf.cld.stop")
    if me == 0:
        for tag in range(seeds_n):
            api.CldEnqueue(api.CmiNew(h_seed, tag, size=32))
    api.CsdScheduler(-1)
    return (sorted(ran), api.CldGetStats())


def w_obs_ring(laps):
    """Deterministic observability workload: a token circles the ring
    ``laps`` full times, then its final holder broadcasts a stop to all
    PEs.  Every PE runs exactly ``laps`` token handlers plus one stop
    handler regardless of machine layer, so traced/metered runs on
    different layers must agree on the handler-invocation multiset."""
    me = api.CmiMyPe()
    n = api.CmiNumPes()
    state = {"tokens": 0}

    def on_token(msg):
        state["tokens"] += 1
        remaining = msg.payload
        if remaining > 0:
            api.CmiSyncSend((me + 1) % n,
                            api.CmiNew(h_token, remaining - 1, size=32))
        else:
            api.CmiSyncBroadcastAll(api.CmiNew(h_stop, None, size=16))

    def on_stop(_msg):
        api.CsdExitScheduler()

    h_token = api.CmiRegisterHandler(on_token, "obs.token")
    h_stop = api.CmiRegisterHandler(on_stop, "obs.stop")
    if me == 0:
        # laps*n hops in total, landing the last token back where the
        # count divides evenly: every PE sees exactly ``laps`` tokens.
        api.CmiSyncSend(1 % n, api.CmiNew(h_token, laps * n - 1, size=32))
    api.CsdScheduler(-1)
    return state["tokens"]
