"""API-level coverage for immediate sends and timer variants."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.message import Message
from repro.sim.machine import Machine
from repro.sim.models import GENERIC


def test_api_immediate_send_path():
    with Machine(2) as m:
        hit = {}

        def busy():
            hid = api.CmiRegisterHandler(
                lambda msg: hit.__setitem__("t", api.CmiTimer()), "h"
            )
            api.CmiCharge(500e-6)

        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            api.CmiImmediateSend(0, Message(hid, None, size=32))

        m.launch_on(0, busy)
        m.launch_on(1, sender)
        m.run()
        assert hit["t"] < 500e-6


def test_wall_and_cpu_timers_via_api():
    with Machine(1) as m:
        out = {}

        def main():
            out["t0"] = (api.CmiTimer(), api.CmiWallTimer(), api.CmiCpuTimer())
            api.CmiCharge(7e-6)
            out["t1"] = (api.CmiTimer(), api.CmiWallTimer(), api.CmiCpuTimer())

        m.launch_on(0, main)
        m.run()
        assert out["t0"] == (0.0, 0.0, 0.0)
        t, w, c = out["t1"]
        assert t == w == c == pytest.approx(7e-6)


def test_immediate_message_traced():
    with Machine(2, trace=True) as m:
        def busy():
            api.CmiRegisterHandler(lambda msg: None, "h")
            api.CmiCharge(200e-6)

        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            api.CmiImmediateSend(0, Message(hid, None, size=16))

        m.launch_on(0, busy)
        m.launch_on(1, sender)
        m.run()
        sends = m.tracer.by_kind("send")
        assert any(e.fields.get("immediate") for e in sends)
        # The immediate delivery also hit the receive hook.
        assert m.tracer.by_kind("receive")


def test_immediate_to_out_of_range_pe_rejected():
    with Machine(2) as m:
        def main():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            from repro.core.errors import MessageError

            try:
                api.CmiImmediateSend(7, Message(hid, None, size=0))
            except MessageError:
                return "range"

        t = m.launch_on(0, main)
        m.run()
        assert t.result == "range"
