"""Unit tests for the MMI core: sends, broadcasts, receives, buffers."""

from __future__ import annotations

import pytest

from tests.helpers import run_on, run_spmd_collect

from repro.core import api
from repro.core.errors import MessageError, NotInTaskletError
from repro.core.message import HEADER_BYTES, Message
from repro.sim.machine import Machine
from repro.sim.models import GENERIC


def test_identity_and_timer():
    def main():
        return api.CmiMyPe(), api.CmiNumPes(), api.CmiTimer()

    results = run_spmd_collect(3, main)
    assert [r[0] for r in results] == [0, 1, 2]
    assert all(r[1] == 3 for r in results)
    assert all(r[2] == 0.0 for r in results)


def test_api_outside_machine_raises():
    with pytest.raises(NotInTaskletError):
        api.CmiMyPe()


def test_msg_header_size():
    def main():
        return api.CmiMsgHeaderSizeBytes()

    assert run_on(1, main) == HEADER_BYTES


def test_set_handler_and_get_handler_function():
    def main():
        fn = lambda m: None  # noqa: E731
        hid = api.CmiRegisterHandler(fn, "x")
        msg = api.CmiNew(0)
        api.CmiSetHandler(msg, hid)
        assert msg.handler == hid
        return api.CmiGetHandlerFunction(msg) is fn

    assert run_on(1, main) is True


def test_set_handler_invalid_rejected():
    def main():
        msg = api.CmiNew(1)
        try:
            api.CmiSetHandler(msg, -2)
        except MessageError:
            return "rejected"

    assert run_on(1, main) == "rejected"


def test_sync_send_timing_includes_converse_extra():
    with Machine(2) as m:
        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            t0 = api.CmiTimer()
            api.CmiSyncSend(1, Message(hid, None, size=64))
            return api.CmiTimer() - t0

        def receiver():
            api.CmiRegisterHandler(lambda msg: None, "h")
            api.CsdScheduler(1)

        t = m.launch_on(0, sender)
        m.launch_on(1, receiver)
        m.run()
        assert t.result == pytest.approx(
            GENERIC.send_overhead + GENERIC.cvs_send_extra
        )


def test_send_out_of_range_pe_rejected():
    def main():
        hid = api.CmiRegisterHandler(lambda m: None, "h")
        try:
            api.CmiSyncSend(9, Message(hid, None, size=0))
        except MessageError as e:
            return "out of range" in str(e)

    assert run_on(2, main) is True


def test_async_send_handle_lifecycle():
    with Machine(2) as m:
        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            h = api.CmiAsyncSend(1, Message(hid, None, size=4096))
            first = api.CmiAsyncMsgSent(h)
            api.CmiCharge(GENERIC.send_overhead * 2)
            second = api.CmiAsyncMsgSent(h)
            api.CmiReleaseCommHandle(h)
            return first, second, h.released

        def receiver():
            api.CmiRegisterHandler(lambda msg: None, "h")
            api.CsdScheduler(1)

        t = m.launch_on(0, sender)
        m.launch_on(1, receiver)
        m.run()
        assert t.result == (False, True, True)


def test_sender_buffer_reusable_after_sync_send():
    """CmiSyncSend semantics: the caller's message object is untouched
    and may be reused immediately."""
    with Machine(2) as m:
        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            msg = Message(hid, b"data", size=4)
            api.CmiSyncSend(1, msg)
            api.CmiSyncSend(1, msg)  # reuse
            return msg.valid

        def receiver():
            api.CmiRegisterHandler(lambda msg: None, "h")
            api.CsdScheduler(2)

        t = m.launch_on(0, sender)
        m.launch_on(1, receiver)
        m.run()
        assert t.result is True


def test_vector_send_concatenates_pieces():
    with Machine(2) as m:
        got = []

        def receiver():
            def h(msg):
                api.CmiGrabBuffer(msg)
                got.append(msg.payload)

            api.CmiRegisterHandler(h, "h")
            api.CsdScheduler(1)

        def sender():
            hid = api.CmiRegisterHandler(lambda m_: None, "h")
            api.CmiVectorSend(0, hid, [b"ab", b"", b"cd", bytearray(b"ef")])

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert got == [b"abcdef"]


def test_vector_send_rejects_non_bytes():
    def main():
        hid = api.CmiRegisterHandler(lambda m: None, "h")
        try:
            api.CmiVectorSend(0, hid, [b"ok", "nope"])
        except MessageError:
            return "rejected"

    assert run_on(2, main) == "rejected"


def test_get_msg_nonblocking_and_ownership():
    with Machine(2) as m:
        def receiver():
            rt = m.runtime(0)
            assert api.CmiGetMsg() is None
            rt.node.wait_until(lambda: rt.has_pending_network)
            msg = api.CmiGetMsg()
            return msg.cmi_owned, bytes(msg.payload)

        def sender():
            hid = api.CmiRegisterHandler(lambda m_: None, "h")
            api.CmiSyncSend(0, Message(hid, b"x", size=1))

        def rx_handler_reg():
            api.CmiRegisterHandler(lambda m_: None, "h")

        t = m.launch_on(0, lambda: (rx_handler_reg(), receiver())[1])
        m.launch_on(1, sender)
        m.run()
        assert t.result == (True, b"x")


def test_get_specific_msg_buffers_others():
    """CmiGetSpecificMsg waits for one handler, side-buffering the rest,
    which are then delivered by the scheduler in arrival order."""
    with Machine(2) as m:
        def receiver():
            log = []
            h_a = api.CmiRegisterHandler(lambda msg: log.append("a"), "a")
            h_b = api.CmiRegisterHandler(lambda msg: log.append("b"), "b")
            msg = api.CmiGetSpecificMsg(h_b)
            log.append(("specific", msg.handler == h_b))
            api.CsdScheduler(2)  # now the two buffered "a" messages
            return log

        def sender():
            h_a = api.CmiRegisterHandler(lambda m_: None, "a")
            h_b = api.CmiRegisterHandler(lambda m_: None, "b")
            api.CmiSyncSend(0, Message(h_a, None, size=0))
            api.CmiSyncSend(0, Message(h_a, None, size=0))
            api.CmiSyncSend(0, Message(h_b, None, size=0))

        t = m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert t.result == [("specific", True), "a", "a"]


@pytest.mark.parametrize("variant,self_gets,others_get", [
    ("sync_broadcast", 0, 1),
    ("sync_broadcast_all", 1, 1),
    ("async_broadcast", 0, 1),
    ("async_broadcast_all", 1, 1),
])
def test_broadcast_variants(variant, self_gets, others_get):
    with Machine(3) as m:
        counts = {pe: 0 for pe in range(3)}

        def main():
            me = api.CmiMyPe()

            def h(msg):
                counts[api.CmiMyPe()] += 1

            hid = api.CmiRegisterHandler(h, "h")
            if me == 0:
                rt = m.runtime(0)
                getattr(rt.cmi, variant)(Message(hid, None, size=8))
                api.CsdScheduler(self_gets)
            else:
                api.CsdScheduler(others_get)

        m.launch(main)
        m.run()
        assert counts[0] == self_gets
        assert counts[1] == counts[2] == others_get


def test_broadcast_all_and_free_poisons_buffer():
    with Machine(2) as m:
        def main():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            if api.CmiMyPe() == 0:
                msg = Message(hid, b"bye", size=3)
                api.CmiSyncBroadcastAllAndFree(msg)
                api.CsdScheduler(1)
                return msg.valid
            api.CsdScheduler(1)

        t = m.launch_on(0, main)
        m.launch_on(1, main)
        m.run()
        assert t.result is False
