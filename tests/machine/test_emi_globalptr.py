"""Unit tests for EMI global pointers and one-sided get/put."""

from __future__ import annotations

import pytest

from tests.helpers import run_on

from repro.core import api
from repro.core.errors import GlobalPointerError
from repro.sim.machine import Machine
from repro.sim.models import GENERIC


def test_create_and_local_deref():
    def main():
        g = api.CmiGptrCreate(8, init=b"abc")
        data = api.CmiGptrDref(g)
        return g.pe, g.size, data

    pe, size, data = run_on(2, main)
    assert (pe, size) == (0, 8)
    assert data == b"abc" + b"\x00" * 5


def test_remote_deref_rejected():
    with Machine(2) as m:
        def owner():
            return api.CmiGptrCreate(4, init=b"wxyz")

        t = m.launch_on(1, owner)
        m.run()
        g = t.result

        def remote():
            try:
                api.CmiGptrDref(g)
            except GlobalPointerError:
                return "remote"

        t2 = m.launch_on(0, remote)
        m.run()
        assert t2.result == "remote"


def test_sync_get_fetches_remote_bytes():
    with Machine(2) as m:
        def owner():
            return api.CmiGptrCreate(16, init=b"0123456789abcdef")

        t = m.launch_on(1, owner)
        m.run()
        g = t.result

        def reader():
            t0 = api.CmiTimer()
            data = api.CmiSyncGet(g, 4, offset=10)
            return data, api.CmiTimer() - t0

        t2 = m.launch_on(0, reader)
        m.run()
        data, elapsed = t2.result
        assert data == b"abcd"
        assert elapsed > 0  # a real round trip in virtual time


def test_sync_put_then_get():
    with Machine(2) as m:
        def owner():
            return api.CmiGptrCreate(8)

        t = m.launch_on(1, owner)
        m.run()
        g = t.result

        def writer():
            api.CmiSyncPut(g, b"HELLO", offset=1)
            return api.CmiSyncGet(g, 8)

        t2 = m.launch_on(0, writer)
        m.run()
        assert t2.result == b"\x00HELLO\x00\x00"


def test_async_get_overlaps_and_completes():
    with Machine(2) as m:
        def owner():
            return api.CmiGptrCreate(4, init=b"data")

        t = m.launch_on(1, owner)
        m.run()
        g = t.result

        def reader():
            h = api.CmiGet(g, 4)
            busy_done = h.done
            api.CmiCharge(1.0)  # plenty of overlap time
            return busy_done, h.done, h.data

        t2 = m.launch_on(0, reader)
        m.run()
        assert t2.result == (False, True, b"data")


def test_async_put_applies_at_arrival_time():
    """The write lands when the data reaches the owner, even while the
    owner computes obliviously (hardware-serviced RMA)."""
    with Machine(2) as m:
        def owner():
            g = api.CmiGptrCreate(4)
            return g

        t = m.launch_on(1, owner)
        m.run()
        g = t.result

        def writer():
            api.CmiPut(g, b"wxyz")
            api.CmiCharge(1.0)

        def oblivious_owner():
            api.CmiCharge(1.0)  # never services anything

        m.launch_on(0, writer)
        m.launch_on(1, oblivious_owner)
        m.run()

        def check():
            return api.CmiGptrDref(g)

        t3 = m.launch_on(1, check)
        m.run()
        assert t3.result == b"wxyz"


def test_data_access_before_done_rejected():
    with Machine(2) as m:
        def main():
            g = api.CmiGptrCreate(4, init=b"abcd")
            h = api.CmiGet(g, 4)  # local, but still has wire time
            try:
                _ = h.data
            except GlobalPointerError:
                return "not-done"

        t = m.launch_on(0, main)
        m.run()
        assert t.result == "not-done"


def test_range_checks():
    def main():
        g = api.CmiGptrCreate(8)
        out = []
        for op in (
            lambda: api.CmiSyncGet(g, 16),
            lambda: api.CmiSyncGet(g, 4, offset=6),
            lambda: api.CmiSyncPut(g, b"123456789"),
        ):
            try:
                op()
            except GlobalPointerError:
                out.append("range")
        try:
            api.CmiGptrCreate(4, init=b"too-long")
        except GlobalPointerError:
            out.append("init")
        return out

    assert run_on(1, main) == ["range", "range", "range", "init"]


def test_put_ordering_is_arrival_order():
    """Two puts from the same PE apply in issue order (FIFO wire)."""
    with Machine(2) as m:
        def owner():
            return api.CmiGptrCreate(4)

        t = m.launch_on(1, owner)
        m.run()
        g = t.result

        def writer():
            api.CmiPut(g, b"AAAA")
            api.CmiPut(g, b"BBBB")
            api.CmiCharge(1.0)

        m.launch_on(0, writer)
        m.run()

        t2 = m.launch_on(1, lambda: api.CmiGptrDref(g))
        m.run()
        assert t2.result == b"BBBB"
