"""Unit tests for EMI processor groups: structure, multicast, reductions."""

from __future__ import annotations

import pytest

from tests.helpers import run_on, run_spmd_collect

from repro.core import api
from repro.core.errors import GroupError
from repro.core.message import Message
from repro.machine.emi_groups import Pgrp, world_group
from repro.sim.machine import Machine


def test_group_structure_accessors():
    def main():
        g = api.CmiPgrpCreate()
        api.CmiAddChildren(g, 0, [1, 2])
        api.CmiAddChildren(g, 1, [3])
        assert api.CmiPgrpRoot(g) == 0
        assert api.CmiNumChildren(g, 0) == 2
        assert api.CmiChildren(g, 0) == [1, 2]
        assert api.CmiParent(g, 3) == 1
        assert api.CmiParent(g, 0) is None
        return g.members()

    assert run_on(4, main) == [0, 1, 2, 3]


def test_add_children_only_by_root():
    with Machine(3) as m:
        def creator():
            g = api.CmiPgrpCreate()
            api.CmiCharge(10e-6)
            return g

        def intruder():
            api.CmiCharge(5e-6)
            g = m.runtime(0).cmi.groups  # just to build interfaces uniformly
            return None

        t = m.launch_on(0, creator)
        m.run()
        g = t.result

        def not_root():
            try:
                api.CmiAddChildren(g, 0, [1])
            except GroupError as e:
                return "only the root" in str(e)

        t2 = m.launch_on(1, not_root)
        m.run()
        assert t2.result is True


def test_duplicate_member_rejected():
    def main():
        g = api.CmiPgrpCreate()
        api.CmiAddChildren(g, 0, [1])
        try:
            api.CmiAddChildren(g, 0, [1])
        except GroupError:
            return "dup"

    assert run_on(2, main) == "dup"


def test_destroyed_group_unusable():
    def main():
        g = api.CmiPgrpCreate()
        api.CmiPgrpDestroy(g)
        try:
            g.members()
        except GroupError:
            return "dead"

    assert run_on(1, main) == "dead"


def test_multicast_reaches_members_only():
    with Machine(4) as m:
        got = {pe: 0 for pe in range(4)}

        def main():
            me = api.CmiMyPe()

            def h(msg):
                got[api.CmiMyPe()] += 1
                api.CsdExitScheduler()

            hid = api.CmiRegisterHandler(h, "mc")
            if me == 0:
                g = api.CmiPgrpCreate()
                api.CmiAddChildren(g, 0, [1, 3])  # PE 2 not a member
                api.CmiAsyncMulticast(g, Message(hid, None, size=8))
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        # PE2's scheduler never got a message; machine went quiescent.
        assert got == {0: 0, 1: 1, 2: 0, 3: 1}


def test_multicast_from_non_member_caller():
    """'Caller need not belong to group.'"""
    with Machine(3) as m:
        got = []

        def main():
            me = api.CmiMyPe()

            def h(msg):
                got.append(api.CmiMyPe())
                api.CsdExitScheduler()

            hid = api.CmiRegisterHandler(h, "mc")
            if me == 0:
                g = api.CmiPgrpCreate()
                api.CmiAddChildren(g, 0, [1])
                api.CmiCharge(1e-6)
                return g, hid
            api.CsdScheduler(-1)

        ts = m.launch(main)
        m.run()
        g, hid = ts[0].result

        def outsider():
            # PE 2 multicasts into a group it does not belong to; the
            # root (PE 0) relays along the tree.
            api.CmiAsyncMulticast(g, Message(hid, None, size=8))

        m.launch_on(2, outsider)
        # PE0 is a member and not the origin: it processes the relayed
        # wrapper and then its own copy (whose handler exits the loop).
        def pe0_recv():
            api.CsdScheduler(-1)

        m.launch_on(0, pe0_recv)
        m.run()
        assert sorted(got) == [0, 1]


def test_reduce_combines_over_tree():
    def main():
        g = world_group(__import__("repro.sim.context", fromlist=["x"])
                        .current_runtime().machine)
        return api.CmiPgrpReduce(g, api.CmiMyPe() + 1, lambda a, b: a + b)

    results = run_spmd_collect(5, main)
    assert results == [15] * 5


def test_reduce_with_noncommutative_merge():
    def main():
        g = world_group(__import__("repro.sim.context", fromlist=["x"])
                        .current_runtime().machine)
        return api.CmiPgrpReduce(g, {api.CmiMyPe()}, lambda a, b: a | b)

    results = run_spmd_collect(4, main)
    assert all(r == {0, 1, 2, 3} for r in results)


def test_sequential_reductions_do_not_mix():
    def main():
        g = world_group(__import__("repro.sim.context", fromlist=["x"])
                        .current_runtime().machine)
        first = api.CmiPgrpReduce(g, 1, lambda a, b: a + b)
        second = api.CmiPgrpReduce(g, api.CmiMyPe(), max)
        return first, second

    results = run_spmd_collect(4, main)
    assert all(r == (4, 3) for r in results)


def test_barrier_synchronizes():
    def main():
        g = world_group(__import__("repro.sim.context", fromlist=["x"])
                        .current_runtime().machine)
        api.CmiCharge(api.CmiMyPe() * 10e-6)  # stagger arrival
        api.CmiPgrpBarrier(g)
        return api.CmiTimer()

    times = run_spmd_collect(4, main)
    # Nobody leaves before the slowest participant arrived.
    assert min(times) >= 30e-6


def test_world_group_binomial_tree_shape():
    with Machine(8) as m:
        g = world_group(m)
        assert g.members() == list(range(8))
        assert g.root == 0
        # Every non-root's parent is n - lowbit(n).
        for n in range(1, 8):
            assert g.parent(n) == n - (n & -n)
        assert world_group(m) is g  # cached
