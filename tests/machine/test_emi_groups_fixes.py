"""Regression tests for the collective-layer fixes: the root-side
reduction-result leak, group-lifecycle hygiene (root-only destroy, world
cache invalidation, per-machine gid determinism), and spanning-tree
multicast from a non-root member (no detour through the root).
"""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import GroupError
from repro.core.message import Message
from repro.machine.emi_groups import world_group
from repro.sim.machine import Machine


# ----------------------------------------------------------------------
# satellite 1: reduction state must not accumulate
# ----------------------------------------------------------------------
def test_repeated_barriers_leave_no_state():
    """N barriers and reductions in a row: every PE's pending-state maps
    must be empty afterwards.  The root used to stash the final result of
    every reduction in ``_results`` without ever popping it."""
    rounds = 25
    with Machine(4) as m:
        def main():
            from repro.sim.context import current_runtime

            g = world_group(current_runtime().machine)
            total = 0
            for i in range(rounds):
                api.CmiPgrpBarrier(g)
                total += api.CmiPgrpReduce(g, 1, lambda a, b: a + b)
            return total

        m.launch(main)
        m.run()
        assert m.results() == [4 * rounds] * 4
        for rt in m.runtimes:
            groups = rt.cmi.groups
            assert groups._results == {}, f"PE {rt.my_pe} leaked results"
            assert groups._contrib == {}, f"PE {rt.my_pe} leaked contribs"


# ----------------------------------------------------------------------
# satellite 2: lifecycle hygiene
# ----------------------------------------------------------------------
def test_destroy_is_root_only():
    with Machine(2) as m:
        def creator():
            g = api.CmiPgrpCreate()
            api.CmiAddChildren(g, 0, [1])
            api.CmiCharge(1e-6)
            return g

        t = m.launch_on(0, creator)
        m.run()
        g = t.result

        def non_root_destroy():
            try:
                api.CmiPgrpDestroy(g)
            except GroupError as e:
                return "only the root" in str(e)

        t2 = m.launch_on(1, non_root_destroy)
        m.run()
        assert t2.result is True
        assert not g.destroyed


def test_destroying_world_group_invalidates_cache():
    with Machine(4) as m:
        first = world_group(m)

        def main():
            api.CmiPgrpDestroy(first)

        m.launch_on(0, main)
        m.run()
        assert first.destroyed
        fresh = world_group(m)
        assert fresh is not first
        assert not fresh.destroyed
        assert fresh.members() == [0, 1, 2, 3]
        # The fresh tree is immediately usable for collectives.
        def barrier():
            api.CmiPgrpBarrier(fresh)
            return "ok"

        m.launch(barrier)
        m.run()
        assert m.results()[-4:] == ["ok"] * 4


def test_gids_are_deterministic_per_machine():
    """Two machines in one process must assign identical gids for the
    identical sequence of group creations (the old process-global counter
    made gids depend on what ran earlier in the process)."""
    def collect_gids():
        gids = []
        with Machine(4) as m:
            gids.append(world_group(m).gid)

            def main():
                g1 = api.CmiPgrpCreate()
                g2 = api.CmiPgrpCreate()
                return g1.gid, g2.gid

            t = m.launch_on(0, main)
            m.run()
            gids.extend(t.result)
        return gids

    first, second = collect_gids(), collect_gids()
    assert first == second
    assert len(set(first)) == len(first)  # distinct within one machine


def test_destroyed_gid_not_resolvable():
    with Machine(2) as m:
        def main():
            g = api.CmiPgrpCreate()
            gid = g.gid
            api.CmiPgrpDestroy(g)
            try:
                m.runtime(0).cmi.groups.lookup(gid)
            except GroupError:
                return "gone"

        t = m.launch_on(0, main)
        m.run()
        assert t.result == "gone"


# ----------------------------------------------------------------------
# satellite 2 of the tentpole wiring: member-origin multicast
# ----------------------------------------------------------------------
def test_multicast_from_non_root_member_skips_root_detour():
    """A non-root tree member multicasts from its own position: traffic
    flows along tree edges only, and no wrapper travels origin->root
    (the old code relayed every non-root multicast through the root)."""
    with Machine(4) as m:
        got = []
        shared = {}

        def main():
            me = api.CmiMyPe()

            def h(msg):
                got.append((api.CmiMyPe(), msg.src_pe))
                api.CsdExitScheduler()

            hid = api.CmiRegisterHandler(h, "mc")
            if me == 0:
                g = api.CmiPgrpCreate()
                api.CmiAddChildren(g, 0, [1, 2])
                api.CmiAddChildren(g, 1, [3])
                shared["g"] = g
            if me == 3:
                # PE 3 is a leaf member (child of 1): it floods from its
                # own tree position instead of detouring via the root.
                api.CmiCharge(5e-6)  # let PE 0 build the group first
                api.CmiAsyncMulticast(shared["g"], Message(hid, None, size=8))
                return  # the origin receives no copy
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        # Every member except the origin got exactly one copy, stamped
        # with the origin's PE.
        assert sorted(got) == [(0, 3), (1, 3), (2, 3)]
        # No wrapper travelled origin -> root: PE 3's only tree edge is
        # its parent, PE 1.
        chans = m.network.stats.per_channel
        assert (3, 0) not in chans
        assert chans.get((3, 1), 0) >= 1


def test_multicast_from_root_unchanged():
    with Machine(4) as m:
        got = []

        def main():
            me = api.CmiMyPe()

            def h(msg):
                got.append(api.CmiMyPe())
                api.CsdExitScheduler()

            hid = api.CmiRegisterHandler(h, "mc")
            if me == 0:
                g = api.CmiPgrpCreate()
                api.CmiAddChildren(g, 0, [1, 2])
                api.CmiAddChildren(g, 1, [3])
                api.CmiAsyncMulticast(g, Message(hid, None, size=8))
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert sorted(got) == [1, 2, 3]


def test_multicast_from_mid_tree_member():
    """Origin in the middle of the tree: copies flow both up (to the
    parent) and down (to children) without duplication."""
    with Machine(7) as m:
        got = []
        shared = {}

        def main():
            me = api.CmiMyPe()

            def h(msg):
                got.append(api.CmiMyPe())
                api.CsdExitScheduler()

            hid = api.CmiRegisterHandler(h, "mc")
            if me == 0:
                g = api.CmiPgrpCreate()
                api.CmiAddChildren(g, 0, [1, 2])
                api.CmiAddChildren(g, 1, [3, 4])
                api.CmiAddChildren(g, 2, [5, 6])
                shared["g"] = g
            if me == 1:
                api.CmiCharge(5e-6)
                api.CmiAsyncMulticast(shared["g"], Message(hid, None, size=8))
                return
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert sorted(got) == [0, 2, 3, 4, 5, 6]
        # Each tree edge carried at most one wrapper in each direction —
        # in particular the origin's children were reached directly, not
        # via the root.
        chans = m.network.stats.per_channel
        assert chans.get((1, 3), 0) >= 1
        assert chans.get((1, 4), 0) >= 1
