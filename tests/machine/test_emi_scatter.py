"""Unit tests for EMI scatter advance-receive registrations."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.message import Message
from repro.machine.emi_scatter import ScatterSpec
from repro.sim.machine import Machine


def test_spec_matching_and_copy():
    dest = bytearray(8)
    spec = ScatterSpec([(0, b"HD")], [(2, 4, dest, 2)])
    assert spec.matches(b"HDxxyyzz")
    assert not spec.matches(b"XXxxyyzz")
    assert not spec.matches(b"H")  # matcher out of range
    spec.apply(b"HDabcdzz")
    assert dest == bytearray(b"\x00\x00abcd\x00\x00")
    assert spec.matched == 1


def test_advance_receive_scatters_without_handler():
    """A pre-posted scatter consumes the matching message; the handler
    named in the message never runs."""
    with Machine(2) as m:
        handler_ran = []
        dest = bytearray(4)

        def receiver():
            hid = api.CmiRegisterHandler(lambda msg: handler_ran.append(1), "h")
            rt = m.runtime(0)
            rt.cmi.scatter.register([(0, b"AB")], [(2, 4, dest, 0)])
            # Drive delivery; the scatter filter eats the message.
            api.CsdScheduler(1)  # will process only the non-matching one

        def sender():
            hid = api.CmiRegisterHandler(lambda m_: None, "h")
            api.CmiSyncSend(0, Message(hid, b"ABwxyz", size=6))
            api.CmiSyncSend(0, Message(hid, b"nomatch", size=7))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert dest == bytearray(b"wxyz")
        assert handler_ran == [1]  # only the non-matching message


def test_notify_variant_queues_empty_message():
    with Machine(2) as m:
        notified = []
        dest = bytearray(2)

        def receiver():
            h_data = api.CmiRegisterHandler(lambda msg: None, "data")

            def on_note(msg):
                notified.append((msg.payload, msg.size, msg.src_pe))
                api.CsdExitScheduler()

            h_note = api.CmiRegisterHandler(on_note, "note")
            rt = m.runtime(0)
            rt.cmi.scatter.register_with_notify(
                [(0, b"Z")], [(1, 2, dest, 0)], h_note
            )
            api.CsdScheduler(-1)

        def sender():
            h_data = api.CmiRegisterHandler(lambda m_: None, "data")
            api.CmiRegisterHandler(lambda m_: None, "note")
            api.CmiSyncSend(0, Message(h_data, b"Zok", size=3))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert dest == bytearray(b"ok")
        assert notified == [(b"", 0, 1)]


def test_once_semantics_and_persistent_spec():
    with Machine(2) as m:
        dest = bytearray(1)
        hits = []

        def receiver():
            hid = api.CmiRegisterHandler(lambda msg: hits.append("handler"), "h")
            rt = m.runtime(0)
            spec = rt.cmi.scatter.register([(0, b"Q")], [(1, 1, dest, 0)],
                                           once=False)
            api.CsdScheduler(1)  # only the final non-matching msg dispatches
            return spec.matched, rt.cmi.scatter.pending

        def sender():
            hid = api.CmiRegisterHandler(lambda m_: None, "h")
            api.CmiSyncSend(0, Message(hid, b"Q1", size=2))
            api.CmiSyncSend(0, Message(hid, b"Q2", size=2))
            api.CmiSyncSend(0, Message(hid, b"stop", size=4))

        t = m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        matched, pending = t.result
        assert matched == 2
        assert pending == 1  # persistent spec still registered
        assert dest == bytearray(b"2")
        assert hits == ["handler"]


def test_cancel_removes_spec():
    with Machine(1) as m:
        def main():
            rt = m.runtime(0)
            spec = rt.cmi.scatter.register([(0, b"A")], [])
            assert rt.cmi.scatter.pending == 1
            rt.cmi.scatter.cancel(spec)
            rt.cmi.scatter.cancel(spec)  # idempotent
            return rt.cmi.scatter.pending

        t = m.launch_on(0, main)
        m.run()
        assert t.result == 0


def test_non_bytes_payloads_pass_through():
    with Machine(2) as m:
        got = []

        def receiver():
            hid = api.CmiRegisterHandler(lambda msg: got.append(msg.payload), "h")
            rt = m.runtime(0)
            rt.cmi.scatter.register([(0, b"A")], [])
            api.CsdScheduler(1)

        def sender():
            hid = api.CmiRegisterHandler(lambda m_: None, "h")
            api.CmiSyncSend(0, Message(hid, ("A", "tuple"), size=8))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert got == [("A", "tuple")]
