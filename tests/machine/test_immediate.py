"""Tests for interrupt-style immediate messages (section-6 future work,
implemented as an extension)."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.message import Message
from repro.sim.machine import Machine
from repro.sim.models import GENERIC


def test_immediate_runs_while_destination_computes():
    """The handler fires at arrival time even though the destination is
    in the middle of a long charged computation."""
    with Machine(2) as m:
        stamps = {}

        def busy():
            hid = api.CmiRegisterHandler(
                lambda msg: stamps.__setitem__("handled", api.CmiTimer()), "h"
            )
            api.CmiCharge(1000e-6)  # a long compute, no scheduler
            stamps["compute_done"] = api.CmiTimer()

        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            api.CmiCharge(10e-6)
            api.CmiImmediateSend(0, Message(hid, None, size=16))

        m.launch_on(0, busy)
        m.launch_on(1, sender)
        m.run()
        # An ordinary message would wait 1000us for a scheduler; the
        # immediate one was serviced mid-computation.
        assert stamps["handled"] < 100e-6
        assert stamps["compute_done"] >= 1000e-6


def test_immediate_bypasses_spm_blocking_receive():
    """Even a PE blocked in CmiGetSpecificMsg services immediates."""
    with Machine(2) as m:
        log = []

        def receiver():
            h_want = api.CmiRegisterHandler(lambda msg: None, "want")
            h_irq = api.CmiRegisterHandler(
                lambda msg: log.append(("irq", api.CmiTimer())), "irq"
            )
            msg = api.CmiGetSpecificMsg(h_want)
            log.append(("unblocked", api.CmiTimer()))

        def sender():
            h_want = api.CmiRegisterHandler(lambda msg: None, "want")
            h_irq = api.CmiRegisterHandler(lambda msg: None, "irq")
            api.CmiImmediateSend(0, Message(h_irq, None, size=0))
            api.CmiCharge(500e-6)
            api.CmiSyncSend(0, Message(h_want, None, size=0))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert log[0][0] == "irq"
        assert log[1][0] == "unblocked"
        assert log[0][1] < log[1][1]


def test_immediate_pays_normal_message_costs():
    with Machine(2) as m:
        stamps = {}

        def receiver():
            hid = api.CmiRegisterHandler(
                lambda msg: stamps.__setitem__("t", api.CmiTimer()), "h"
            )
            api.CmiCharge(1.0)

        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            api.CmiImmediateSend(0, Message(hid, None, size=64))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        # Arrival at one_way minus receive-side costs, plus those costs
        # charged in the ISR before the handler body runs.
        assert stamps["t"] == pytest.approx(GENERIC.one_way(64))


def test_immediate_buffer_ownership_still_enforced():
    with Machine(2) as m:
        kept = []

        def receiver():
            def h(msg):
                kept.append(msg)

            api.CmiRegisterHandler(h, "h")
            api.CmiCharge(1e-3)

        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            api.CmiImmediateSend(0, Message(hid, b"gone", size=4))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert len(kept) == 1 and not kept[0].valid
