"""Merging per-process registry snapshots (repro.metrics.merge_snapshots).

The mp layer's invariant: merging the per-worker snapshots must produce
exactly what one machine-wide registry would have recorded.  These tests
build real registries, split their updates across "processes", and check
the merge against an unsplit reference.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.metrics.registry import (
    MetricsRegistry,
    merge_snapshots,
    save_snapshot,
)


def _worker_registry(pe, handlers, queue_peak):
    """One worker's registry, as the mp layer builds it: each process
    only ever touches its own PE's series."""
    r = MetricsRegistry(locking=True)
    c = r.counter("csd.handlers_run", help="handler invocations dispatched")
    c.inc(pe, handlers)
    g = r.gauge("csd.queue_depth", help="scheduler queue depth")
    g.set(pe, queue_peak)
    g.set(pe, 0)  # drained by run end; max must survive the merge
    h = r.histogram("csd.handler_time", bounds=(1e-6, 1e-3, 1.0), help="t")
    for _ in range(handlers):
        h.observe(pe, 1e-4)
    return r


def test_merge_equals_single_machine_registry():
    workers = [_worker_registry(pe, handlers=pe + 1, queue_peak=10 * (pe + 1))
               for pe in range(3)]
    merged = merge_snapshots([w.snapshot() for w in workers])

    reference = MetricsRegistry()
    c = reference.counter("csd.handlers_run",
                          help="handler invocations dispatched")
    g = reference.gauge("csd.queue_depth", help="scheduler queue depth")
    h = reference.histogram("csd.handler_time", bounds=(1e-6, 1e-3, 1.0),
                            help="t")
    for pe in range(3):
        c.inc(pe, pe + 1)
        g.set(pe, 10 * (pe + 1))
        g.set(pe, 0)
        for _ in range(pe + 1):
            h.observe(pe, 1e-4)

    assert merged == reference.snapshot()


def test_counter_collisions_sum():
    # Two snapshots reporting the same PE (e.g. a re-run worker) add up.
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("n").inc(0, 2)
    b.counter("n").inc(0, 3)
    b.counter("n").inc(1, 5)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["n"]["per_pe"] == {"0": 5, "1": 5}
    assert merged["n"]["total"] == 10


def test_gauge_merge_keeps_maxima():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("q").set(0, 7)
    a.gauge("q").set(0, 1)
    b.gauge("q").set(1, 4)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["q"]["per_pe"] == {"0": 1, "1": 4}
    assert merged["q"]["max_per_pe"] == {"0": 7, "1": 4}
    assert merged["q"]["max"] == 7


def test_histogram_merge_recomputes_aggregates():
    a, b = MetricsRegistry(), MetricsRegistry()
    ha = a.histogram("t", bounds=(1.0, 10.0))
    hb = b.histogram("t", bounds=(1.0, 10.0))
    ha.observe(0, 0.5)
    ha.observe(0, 5.0)
    hb.observe(1, 20.0)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    m = merged["t"]
    assert m["count"] == 3
    assert m["sum"] == pytest.approx(25.5)
    assert m["mean"] == pytest.approx(25.5 / 3)
    assert m["min"] == 0.5 and m["max"] == 20.0
    assert sorted(m["per_pe"]) == ["0", "1"]
    assert m["per_pe"]["0"]["count"] == 2
    assert m["per_pe"]["1"]["count"] == 1


def test_histogram_merge_with_empty_snapshot():
    # A worker that never observed anything must not poison min/max.
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("t", bounds=(1.0,)).observe(0, 2.0)
    b.histogram("t", bounds=(1.0,))  # created, never observed
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["t"]["count"] == 1
    assert merged["t"]["min"] == 2.0 and merged["t"]["max"] == 2.0
    assert "_seen_any" not in merged["t"]


def test_histogram_bounds_mismatch_rejected():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("t", bounds=(1.0,)).observe(0, 0.5)
    b.histogram("t", bounds=(2.0,)).observe(1, 0.5)
    with pytest.raises(ValueError, match="bounds"):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_kind_mismatch_rejected():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x").inc(0)
    b.gauge("x").set(1, 1)
    with pytest.raises(ValueError, match="kind"):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_merge_does_not_mutate_inputs():
    a = MetricsRegistry()
    a.counter("n").inc(0, 1)
    snap_a = a.snapshot()
    before = json.dumps(snap_a, sort_keys=True)
    b = MetricsRegistry()
    b.counter("n").inc(0, 9)
    merge_snapshots([snap_a, b.snapshot()])
    assert json.dumps(snap_a, sort_keys=True) == before


def test_merge_empty_and_single():
    assert merge_snapshots([]) == {}
    a = MetricsRegistry()
    a.counter("n").inc(2, 4)
    assert merge_snapshots([a.snapshot()]) == a.snapshot()


def test_save_snapshot_round_trips(tmp_path):
    a = MetricsRegistry()
    a.counter("n").inc(0, 3)
    path = tmp_path / "m.json"
    save_snapshot(a.snapshot(), path)
    assert json.loads(path.read_text()) == a.snapshot()


def test_locking_registry_is_thread_safe():
    # The mp worker shares one registry between the main scheduler thread
    # and the socket receiver (immediate handlers); locked counters must
    # not lose increments under contention.
    r = MetricsRegistry(locking=True)
    c = r.counter("n")
    N, THREADS = 5000, 4

    def bump():
        for _ in range(N):
            c.inc(0)

    threads = [threading.Thread(target=bump) for _ in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.total == N * THREADS
    # Locked instances snapshot identically to plain ones.
    assert r.snapshot()["n"]["per_pe"] == {"0": N * THREADS}
