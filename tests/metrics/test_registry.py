"""Unit tests for the metrics registry primitives."""

from __future__ import annotations

import json

import pytest

from repro.metrics.registry import (
    DEPTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TIME_BUCKETS,
    make_registry,
    render_metrics_report,
)


def test_counter_per_pe_and_total():
    c = Counter("x")
    c.inc(0)
    c.inc(0, 2.5)
    c.inc(3, 4)
    assert c.value(0) == 3.5
    assert c.value(3) == 4
    assert c.value(1) == 0
    assert c.total == 7.5
    snap = c.snapshot()
    assert snap["kind"] == "counter"
    assert snap["per_pe"] == {"0": 3.5, "3": 4}


def test_gauge_tracks_high_water_mark():
    g = Gauge("depth")
    g.set(0, 3)
    g.set(0, 7)
    g.set(0, 2)
    g.set(1, 5)
    assert g.value(0) == 2       # last set wins
    assert g.max(0) == 7         # but the high-water mark is kept
    assert g.max() == 7
    assert g.max(2) == 0
    snap = g.snapshot()
    assert snap["max_per_pe"] == {"0": 7, "1": 5}


def test_histogram_bucketing_and_exact_moments():
    h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 5.0, 50.0, 500.0):
        h.observe(0, v)
    # bounds are inclusive upper edges; 500 lands in the overflow bucket
    assert h.merged_buckets() == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(556.5)
    assert h.mean == pytest.approx(556.5 / 5)
    snap = h.snapshot()
    assert snap["min"] == 0.5
    assert snap["max"] == 500.0
    assert snap["per_pe"]["0"]["count"] == 5


def test_histogram_merges_across_pes():
    h = Histogram("lat", bounds=(1.0, 2.0))
    h.observe(0, 0.5)
    h.observe(1, 1.5)
    h.observe(2, 9.0)
    assert h.merged_buckets() == [1, 1, 1]
    assert h.count == 3


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("bad", bounds=())


def test_registry_get_or_create_returns_same_handle():
    r = MetricsRegistry()
    a = r.counter("cmi.sends")
    b = r.counter("cmi.sends")
    assert a is b
    assert len(r) == 1
    assert "cmi.sends" in r
    assert r.get("cmi.sends") is a
    assert r.get("nope") is None


def test_registry_kind_mismatch_raises():
    r = MetricsRegistry()
    r.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        r.gauge("x")
    with pytest.raises(ValueError, match="already registered"):
        r.histogram("x")


def test_registry_snapshot_save_report(tmp_path):
    r = MetricsRegistry()
    r.counter("a.count").inc(0, 3)
    r.gauge("b.depth").set(1, 9)
    r.histogram("c.lat", bounds=TIME_BUCKETS).observe(0, 2e-6)
    snap = r.snapshot()
    assert sorted(snap) == ["a.count", "b.depth", "c.lat"]
    path = tmp_path / "m.json"
    r.save(path)
    reloaded = json.loads(path.read_text())
    assert reloaded == snap
    report = r.report()
    assert "a.count" in report and "counter" in report
    assert render_metrics_report(reloaded) == report


def test_render_report_empty():
    assert "no metrics" in render_metrics_report({})


def test_make_registry_contract():
    assert make_registry(None) is None
    assert make_registry(False) is None
    assert isinstance(make_registry(True), MetricsRegistry)
    r = MetricsRegistry()
    assert make_registry(r) is r
    with pytest.raises(ValueError):
        make_registry("yes")
    with pytest.raises(ValueError):
        make_registry(1)


def test_default_bucket_constants_sorted():
    for bounds in (TIME_BUCKETS, DEPTH_BUCKETS):
        assert list(bounds) == sorted(bounds)
