"""End-to-end tests: ``Machine(metrics=...)`` populates the registry.

Each test runs a small workload with metering on and asserts the
subsystem counters/histograms agree with what the workload provably did
— the observability layer must not just be populated, it must be
*right*.
"""

from __future__ import annotations

import pytest

from repro import FaultPlan, Machine, api
from repro.core.errors import SimulationError
from repro.core.message import Message
from repro.metrics.registry import MetricsRegistry
from repro.sim.models import GENERIC


def _pingpong(metrics, rounds: int = 6, **machine_kwargs):
    with Machine(2, model=GENERIC, metrics=metrics, **machine_kwargs) as m:
        def main():
            me = api.CmiMyPe()
            other = 1 - me
            seen = []

            def on_ball(msg):
                n = msg.payload
                seen.append(n)
                if n + 1 < 2 * rounds:
                    api.CmiSyncSend(other, api.CmiNew(h, n + 1, size=32))
                if len(seen) == rounds:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_ball, "mx.ball")
            if me == 0:
                api.CmiSyncSend(1, api.CmiNew(h, 0, size=32))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        return m


def test_metrics_off_by_default():
    with Machine(2) as m:
        assert m.metrics is None
        for rt in m.runtimes:
            assert not rt.metering
        with pytest.raises(SimulationError):
            m.metrics_snapshot()


def test_machine_metrics_true_builds_registry():
    m = _pingpong(True)
    assert isinstance(m.metrics, MetricsRegistry)
    snap = m.metrics_snapshot()
    assert snap["cmi.sends"]["total"] > 0


def test_cmi_and_csd_counts_match_workload():
    rounds = 6
    registry = MetricsRegistry()
    _pingpong(registry, rounds=rounds)
    snap = registry.snapshot()
    # 2*rounds balls total: the kickoff plus 2*rounds-1 relays.
    assert snap["cmi.sends"]["total"] == 2 * rounds
    assert snap["cmi.send_bytes"]["total"] == 2 * rounds * 32
    assert snap["cmi.receives"]["total"] == 2 * rounds
    assert snap["cmi.recv_bytes"]["total"] == 2 * rounds * 32
    assert snap["cmi.msg_bytes"]["count"] == 2 * rounds
    # Every delivered ball ran exactly one handler.
    assert snap["csd.handlers_run"]["total"] == 2 * rounds
    assert snap["csd.handler_time"]["count"] == 2 * rounds
    # Each PE alternates; sends split evenly.
    assert snap["cmi.sends"]["per_pe"] == {"0": rounds, "1": rounds}
    # Network messages are handler-dispatched directly, never queued, so
    # the queue-wait histogram stays empty — need-based accounting.
    assert "csd.queue_wait" not in snap or snap["csd.queue_wait"]["count"] == 0


def test_idle_time_accumulates_when_waiting():
    registry = MetricsRegistry()
    _pingpong(registry, rounds=4)
    snap = registry.snapshot()
    # Both PEs spend virtual time blocked on in-flight messages.
    assert snap["csd.idle_time"]["total"] > 0


def test_broadcast_counted_once_per_call():
    registry = MetricsRegistry()
    with Machine(4, metrics=registry) as m:
        def main():
            got = []

            def on_msg(msg):
                got.append(msg.payload)
                if len(got) == 3:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "mx.bcast")
            if api.CmiMyPe() == 0:
                for i in range(3):
                    api.CmiSyncBroadcast(api.CmiNew(h, i, size=8))
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        m.run()
    snap = registry.snapshot()
    assert snap["cmi.broadcasts"]["total"] == 3
    # CmiSyncBroadcast excludes the caller: 3 messages x 3 destinations.
    assert snap["cmi.sends"]["total"] == 9
    assert snap["cmi.receives"]["total"] == 9


def test_cth_switches_metered():
    registry = MetricsRegistry()
    with Machine(1, metrics=registry) as m:
        def main():
            def worker(_arg):
                for _ in range(3):
                    api.CthYield()

            for t in (api.CthCreate(worker), api.CthCreate(worker)):
                api.CthUseSchedulerStrategy(t)
                api.CthAwaken(t)
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
    snap = registry.snapshot()
    assert snap["cth.threads_created"]["total"] == 2
    # Each thread is resumed at least once per yield round.
    assert snap["cth.switches"]["total"] >= 6
    # Scheduler-strategy yields flow through the Csd queue as resume
    # messages, so queue wait/depth metrics are populated here.
    assert snap["csd.queue_wait"]["count"] >= 6
    assert snap["csd.queue_depth"]["max"] >= 1
    assert snap["csd.queue_depth_dist"]["count"] >= 6


def test_cld_seed_metrics():
    registry = MetricsRegistry()
    with Machine(4, ldb="spray", metrics=registry) as m:
        def main():
            hids = {}

            def work(msg):
                pass

            hids[api.CmiMyPe()] = api.CmiRegisterHandler(work, "mx.seed")
            if api.CmiMyPe() == 0:
                for _ in range(8):
                    api.CldEnqueue(Message(hids[0], None, size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
    snap = registry.snapshot()
    assert snap["cld.seeds_created"]["total"] == 8
    assert snap["cld.seeds_rooted"]["total"] == 8
    # spray round-robins over 4 PEs: 2 seeds rooted on each
    assert snap["cld.seeds_rooted"]["per_pe"] == {str(pe): 2 for pe in range(4)}


def test_reliable_layer_rtt_and_retransmits():
    registry = MetricsRegistry()
    faults = FaultPlan(7, drop=0.2, duplicate=0.1)
    _pingpong(registry, rounds=6, reliable=True, faults=faults)
    snap = registry.snapshot()
    assert "rel.rtt" in snap
    # Karn's rule: only never-retransmitted packets are sampled, so
    # samples <= acked packets, and every sample is a positive latency.
    assert 0 < snap["rel.rtt"]["count"]
    assert snap["rel.rtt"]["min"] > 0
    assert snap["rel.data_sent"]["total"] >= 2 * 6
    # With drop=0.2 over >=12 packets a retransmit is all but certain
    # under this seed (deterministic, so this is a stable assertion).
    assert snap["rel.retransmits"]["total"] > 0


def test_metrics_spec_validation_at_machine():
    with pytest.raises(ValueError):
        Machine(2, metrics="yes")
