"""Unit tests for the Cmm message manager."""

from __future__ import annotations

import pytest

from repro.core.errors import MessageManagerError
from repro.msgmgr.message_manager import CMM_WILDCARD, MessageManager


def test_put_get_exact_tags():
    mm = MessageManager()
    mm.put(b"one", 5)
    mm.put(b"two", 5, 9)
    assert mm.probe(5) == 3
    entry = mm.get(5)
    assert entry.payload == b"one"
    assert entry.tags == (5, None)
    assert mm.get(5) is None          # (5, None) now empty
    assert mm.get(5, 9).payload == b"two"
    assert len(mm) == 0


def test_fifo_within_matching_set():
    mm = MessageManager()
    for i in range(5):
        mm.put(i, 7)
    assert [mm.get(7).payload for _ in range(5)] == [0, 1, 2, 3, 4]


def test_wildcard_tag_retrieves_oldest_overall():
    mm = MessageManager()
    mm.put("a", 1)
    mm.put("b", 2)
    mm.put("c", 1)
    got = [mm.get(CMM_WILDCARD).payload for _ in range(3)]
    assert got == ["a", "b", "c"]


def test_wildcard_on_second_tag_only():
    mm = MessageManager()
    mm.put("x", 4, 100)
    mm.put("y", 4, 200)
    mm.put("z", 5, 100)
    entry = mm.get(4, CMM_WILDCARD)
    assert entry.payload == "x"
    entry = mm.get(CMM_WILDCARD, 100)
    assert entry.payload == "z"


def test_probe_returns_size_or_minus_one():
    mm = MessageManager()
    assert mm.probe(3) == -1
    mm.put(b"12345", 3, size=5)
    assert mm.probe(3) == 5
    assert mm.probe(CMM_WILDCARD) == 5
    assert len(mm) == 1  # probe does not remove


def test_probe_tags_returns_actual_tags():
    mm = MessageManager()
    assert mm.probe_tags(CMM_WILDCARD) is None
    mm.put("v", 8, 44)
    assert mm.probe_tags(CMM_WILDCARD, CMM_WILDCARD) == (8, 44)


def test_get_copy_truncates_bytes():
    mm = MessageManager()
    mm.put(b"abcdefgh", 1)
    payload, size = mm.get_copy(1, max_bytes=4)
    assert payload == b"abcd"
    assert size == 8
    assert mm.get_copy(1) is None


def test_size_defaults():
    mm = MessageManager()
    mm.put(b"abc", 1)
    mm.put("hello", 2)
    mm.put({"obj": 1}, 3)
    assert mm.probe(1) == 3
    assert mm.probe(2) == 5
    assert mm.probe(3) == 0  # non-bytes default


def test_explicit_size_wins():
    mm = MessageManager()
    mm.put(b"abc", 1, size=999)
    assert mm.probe(1) == 999


def test_invalid_tags_rejected():
    mm = MessageManager()
    with pytest.raises(MessageManagerError):
        mm.put("x", "tag")  # type: ignore[arg-type]
    with pytest.raises(MessageManagerError):
        mm.put("x", 1, True)  # type: ignore[arg-type]
    with pytest.raises(MessageManagerError):
        mm.put("x", CMM_WILDCARD)  # wildcard not allowed in put
    with pytest.raises(MessageManagerError):
        mm.probe(3.5)  # type: ignore[arg-type]


def test_tags_present_sorted():
    mm = MessageManager()
    mm.put("a", 5, 1)
    mm.put("b", 3)
    mm.put("c", 5, 0)
    assert mm.tags_present() == [(3, None), (5, 0), (5, 1)]


def test_interleaved_put_get_stress():
    mm = MessageManager()
    expected = []
    for i in range(100):
        mm.put(i, i % 3, i % 2)
        if i % 5 == 4:
            e = mm.get(CMM_WILDCARD, CMM_WILDCARD)
            expected.append(e.payload)
    # Oldest-first retrieval of a mixed store.
    assert expected == [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19]
