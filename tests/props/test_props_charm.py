"""Property-based tests for the Charm runtime: array construction and
broadcast coverage, seed conservation under every balancer, reduction
correctness over random contributions."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import api
from repro.langs.charm import Chare, Charm
from repro.loadbalance.strategies import BALANCERS
from repro.sim.machine import Machine


class Probe(Chare):
    seen = []

    def __init__(self):
        Probe.seen.append(("init", self.thisIndex, self.mype))

    def touch(self, token):
        Probe.seen.append(("touch", self.thisIndex, token))


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), st.integers(1, 12))
def test_array_covers_every_index_exactly_once(num_pes, n):
    Probe.seen = []
    with Machine(num_pes) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                arr = ch.create_array(Probe, n)
                arr.touch("t1")
                ch.start_quiescence(lambda: Charm.get().exit_all())
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
    inits = sorted(i for kind, i, _ in Probe.seen if kind == "init")
    touches = sorted(i for kind, i, _ in Probe.seen if kind == "touch")
    assert inits == list(range(n))
    assert touches == list(range(n))
    # Mapping invariant: element i constructed on PE i % P.
    for kind, i, pe in Probe.seen:
        if kind == "init":
            assert pe == i % num_pes


@settings(max_examples=12, deadline=None)
@given(st.sampled_from(sorted(BALANCERS)), st.integers(1, 4),
       st.integers(0, 12), st.integers(0, 2**31))
def test_seed_chares_conserved_under_every_balancer(ldb, num_pes, n, seed):
    class Unit(Chare):
        count = 0

        def __init__(self):
            Unit.count += 1

    Unit.count = 0
    with Machine(num_pes, ldb=ldb, seed=seed) as m:
        Charm.attach(m)

        def main():
            ch = Charm.get()
            if ch.my_pe == 0:
                for _ in range(n):
                    ch.create(Unit)
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert Unit.count == n
        total = sum(
            sum(1 for c in rt.lang_instances["charm"].local_chares.values()
                if isinstance(c, Unit))
            for rt in m.runtimes
        )
        assert total == n


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 5), st.lists(st.integers(-100, 100), min_size=5,
                                   max_size=5))
def test_contribute_reduces_random_values(num_pes, values):
    with Machine(num_pes) as m:
        Charm.attach(m)
        out = []

        def main():
            ch = Charm.get()
            ch.contribute("k", values[ch.my_pe], lambda a, b: a + b,
                          lambda total: (out.append(total), api.CsdExitAll()))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        assert out == [sum(values[:num_pes])]
