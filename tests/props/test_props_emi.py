"""Property-based tests for the EMI scatter matcher and global-pointer
memory semantics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import api
from repro.machine.emi_scatter import ScatterSpec
from repro.sim.machine import Machine


# ----------------------------------------------------------------------
# scatter matching vs a brute-force oracle
# ----------------------------------------------------------------------

@st.composite
def spec_and_payload(draw):
    payload = draw(st.binary(min_size=0, max_size=32))
    n_match = draw(st.integers(0, 3))
    matchers = []
    for _ in range(n_match):
        off = draw(st.integers(0, 34))
        val = draw(st.binary(min_size=1, max_size=4))
        matchers.append((off, val))
    return matchers, payload


@given(spec_and_payload())
def test_scatter_matches_iff_all_values_present(case):
    matchers, payload = case
    spec = ScatterSpec(matchers, [])
    expected = all(
        0 <= off and off + len(val) <= len(payload)
        and payload[off:off + len(val)] == val
        for off, val in matchers
    )
    assert spec.matches(payload) == expected


@given(st.binary(min_size=4, max_size=40), st.data())
def test_scatter_copy_moves_exact_slices(payload, data):
    n_copies = data.draw(st.integers(1, 3))
    copies = []
    dests = []
    for _ in range(n_copies):
        length = data.draw(st.integers(0, len(payload)))
        src_off = data.draw(st.integers(0, len(payload) - length))
        dest = bytearray(data.draw(st.integers(length, length + 8)))
        dst_off = data.draw(st.integers(0, len(dest) - length))
        copies.append((src_off, length, dest, dst_off))
        dests.append((dest, src_off, length, dst_off))
    spec = ScatterSpec([], copies)
    spec.apply(payload)
    for dest, src_off, length, dst_off in dests:
        assert dest[dst_off:dst_off + length] == payload[src_off:src_off + length]


# ----------------------------------------------------------------------
# global pointers: puts then gets behave like a byte array
# ----------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 24), st.binary(min_size=0, max_size=8)),
                max_size=8))
def test_gptr_put_get_models_bytearray(writes):
    SIZE = 32
    shadow = bytearray(SIZE)

    with Machine(2) as m:
        def owner():
            return api.CmiGptrCreate(SIZE)

        t = m.launch_on(1, owner)
        m.run()
        g = t.result

        def writer():
            for offset, data in writes:
                if offset + len(data) <= SIZE:
                    api.CmiSyncPut(g, data, offset=offset)
            return api.CmiSyncGet(g, SIZE)

        t2 = m.launch_on(0, writer)
        m.run()
        for offset, data in writes:
            if offset + len(data) <= SIZE:
                shadow[offset:offset + len(data)] = data
        assert t2.result == bytes(shadow)


@settings(max_examples=12, deadline=None)
@given(st.integers(2, 6), st.integers(0, 2**31))
def test_large_machine_determinism(num_pes, seed):
    """Whole-machine determinism holds with every subsystem in play."""
    from repro.langs.charm import Chare, Charm

    class Echo(Chare):
        def __init__(self):
            pass

        def ping(self):
            pass

    def once():
        with Machine(num_pes, ldb="random", seed=seed) as m:
            Charm.attach(m)
            log = []

            def main():
                ch = Charm.get()
                if ch.my_pe == 0:
                    for _ in range(4):
                        ch.create(Echo)
                    ch.start_quiescence(lambda: Charm.get().exit_all())
                log.append((api.CmiMyPe(), api.CmiTimer()))
                api.CsdScheduler(-1)

            m.launch(main)
            m.run()
            placement = tuple(
                tuple(sorted(rt.lang_instances["charm"].local_chares))
                for rt in m.runtimes
            )
            return tuple(log), placement, m.now

    assert once() == once()
