"""Model-based property tests of the event engine: arbitrary
schedule/cancel programs against a sorted-list reference."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimEngine

# A program is a list of ops executed before run():
#   ("sched", delay)  — schedule an event at `delay`
#   ("cancel", k)     — cancel the k-th scheduled event (mod count)
programs = st.lists(
    st.one_of(
        st.tuples(st.just("sched"),
                  st.floats(min_value=0, max_value=1e-3, allow_nan=False)),
        st.tuples(st.just("cancel"), st.integers(0, 30)),
    ),
    max_size=40,
)


@given(programs)
def test_engine_fires_uncancelled_events_in_time_then_seq_order(program):
    eng = SimEngine()
    fired = []
    handles = []
    expected = []  # (time, seq) of uncancelled events

    seq = 0
    for op in program:
        if op[0] == "sched":
            seq += 1
            my_seq = seq
            delay = op[1]
            ev = eng.schedule(delay, lambda s=my_seq: fired.append(s))
            handles.append((ev, delay, my_seq))
        elif handles:
            ev, _, _ = handles[op[1] % len(handles)]
            ev.cancel()

    expected = [s for ev, d, s in handles if not ev.cancelled]
    expected.sort(key=lambda s: (dict((x[2], x[1]) for x in handles)[s], s))

    assert eng.run() == "quiescent"
    assert fired == expected
    eng.shutdown()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e-3, allow_nan=False),
                min_size=1, max_size=15),
       st.floats(min_value=0, max_value=1e-3, allow_nan=False))
def test_run_until_is_resumable_without_loss(delays, bound):
    eng = SimEngine()
    fired = []
    for i, d in enumerate(delays):
        eng.schedule(d, lambda i=i: fired.append(i))
    eng.run(until=bound)
    early = list(fired)
    assert all(delays[i] <= bound for i in early)
    eng.run()
    assert sorted(fired) == sorted(range(len(delays)))
    # Nothing fired twice.
    assert len(fired) == len(delays)
    eng.shutdown()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=1e-9, max_value=1e-4, allow_nan=False),
                min_size=1, max_size=10))
def test_tasklet_sleep_chain_totals(durations):
    eng = SimEngine()

    def body():
        for d in durations:
            eng.sleep(d)

    eng.spawn(body)
    eng.run()
    assert eng.now <= sum(durations) * (1 + 1e-12) + 1e-18
    assert eng.now >= sum(durations) * (1 - 1e-12) - 1e-18
    eng.shutdown()
