"""Property-based tests: reliability gives exactly-once, per-sender-FIFO
delivery for *any* fault mix in [0, 0.3] and any seed.

Hypothesis explores the (rates x seed) space; each example is one fully
deterministic simulated run, so shrunk counterexamples replay exactly.
Example counts are small — each example spins up a whole machine.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from tests.faults.harness import hostile_plan, run_pingpong, run_quiescence

rates = st.floats(min_value=0.0, max_value=0.3, allow_nan=False,
                  allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=10, deadline=None)
@given(seed=seeds, drop=rates, duplicate=rates, reorder=rates)
def test_pingpong_exactly_once_any_mix(seed, drop, duplicate, reorder):
    r = run_pingpong(rounds=6,
                     faults=hostile_plan(seed, drop=drop,
                                         duplicate=duplicate,
                                         reorder=reorder),
                     reliable=True)
    assert r["reason"] == "quiescent"
    # exactly-once AND per-sender order: the received lists must equal
    # the expected sequences, not merely contain them
    assert r["recv"] == r["expected"]


@settings(max_examples=8, deadline=None)
@given(seed=seeds, drop=rates, corrupt=rates)
def test_quiescence_exact_tally_any_mix(seed, drop, corrupt):
    r = run_quiescence(num_pes=3, seeds_per_pe=1, ttl=3,
                       faults=hostile_plan(seed, drop=drop,
                                           corrupt=corrupt),
                       reliable=True)
    assert r["reason"] == "quiescent"
    assert r["total_handled"] == r["expected_total"]
    assert r["declared"] == 1
