"""Property-based tests for EMI processor groups: arbitrary tree shapes,
multicast coverage, reduction correctness, console sscanf round-trips."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import api
from repro.core.message import Message
from repro.machine.emi_groups import Pgrp, world_group
from repro.sim.console import sscanf
from repro.sim.machine import Machine


# ----------------------------------------------------------------------
# arbitrary group trees
# ----------------------------------------------------------------------

@st.composite
def tree_shapes(draw):
    """A random parent assignment over n PEs, rooted at 0: node i>0 gets
    a parent drawn from [0, i) — always a valid tree."""
    n = draw(st.integers(2, 10))
    parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    return n, parents


@given(tree_shapes())
def test_pgrp_structure_consistent(shape):
    n, parents = shape
    g = Pgrp(0)
    for child, parent in enumerate(parents, start=1):
        g.add_children(parent, [child])
    assert g.members() == list(range(n))
    for child, parent in enumerate(parents, start=1):
        assert g.parent(child) == parent
        assert child in g.children(parent)
    # Children counts sum to n - 1 (every non-root has one parent).
    assert sum(g.num_children(p) for p in g.members()) == n - 1


@settings(max_examples=15, deadline=None)
@given(tree_shapes())
def test_multicast_covers_exactly_the_members(shape):
    n, parents = shape
    with Machine(n) as m:
        got = []

        def main():
            me = api.CmiMyPe()

            def h(msg):
                got.append(api.CmiMyPe())
                api.CsdExitScheduler()

            hid = api.CmiRegisterHandler(h, "mc")
            if me == 0:
                g = api.CmiPgrpCreate()
                for child, parent in enumerate(parents, start=1):
                    api.CmiAddChildren(g, parent, [child])
                api.CmiAsyncMulticast(g, Message(hid, None, size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        # Everyone but the caller (PE 0, the origin) got exactly one copy.
        assert sorted(got) == list(range(1, n))


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 9), st.lists(st.integers(-100, 100), min_size=9, max_size=9))
def test_world_reduce_equals_fold(num_pes, values):
    def main():
        g = world_group(__import__("repro.sim.context", fromlist=["x"])
                        .current_runtime().machine)
        return api.CmiPgrpReduce(g, values[api.CmiMyPe()], lambda a, b: a + b)

    with Machine(num_pes) as m:
        m.launch(main)
        m.run()
        results = m.results()
    assert all(r == sum(values[:num_pes]) for r in results)


# ----------------------------------------------------------------------
# sscanf round trips
# ----------------------------------------------------------------------

@given(st.lists(st.integers(-10**9, 10**9), min_size=1, max_size=5))
def test_sscanf_roundtrips_ints(xs):
    fmt = " ".join(["%d"] * len(xs))
    text = " ".join(str(x) for x in xs)
    assert sscanf(text, fmt) == xs


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-1e12, max_value=1e12),
                min_size=1, max_size=4))
def test_sscanf_roundtrips_floats(xs):
    fmt = " ".join(["%f"] * len(xs))
    text = " ".join(repr(float(x)) for x in xs)
    got = sscanf(text, fmt)
    assert len(got) == len(xs)
    for a, b in zip(got, xs):
        assert a == float(repr(float(b)))


@given(st.text(alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
               min_size=1, max_size=10),
       st.integers(-999, 999))
def test_sscanf_mixed_string_int(word, number):
    assert sscanf(f"{word} {number}", "%s %d") == [word, number]
