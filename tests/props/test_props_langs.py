"""Property-based tests on the language layers: DP vs NumPy, collectives
vs Python folds, tSM delivery completeness."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import api
from repro.langs.dp import DP
from repro.langs.nx import NX
from repro.langs.tsm import TSM
from repro.sim.machine import Machine

small_floats = st.floats(min_value=-1e6, max_value=1e6,
                         allow_nan=False, allow_infinity=False)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), st.lists(small_floats, min_size=4, max_size=40))
def test_dp_reduce_matches_numpy(num_pes, values):
    arr = np.asarray(values)

    def main():
        dp = DP.get()
        x = dp.from_full(arr)
        return x.reduce()

    with Machine(num_pes) as m:
        DP.attach(m)
        m.launch(main)
        m.run()
        results = m.results()
    assert all(np.isclose(r, arr.sum(), rtol=1e-9) for r in results)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4),
       st.lists(small_floats, min_size=8, max_size=32),
       st.data())
def test_dp_shift_matches_numpy_roll_with_fill(num_pes, values, data):
    arr = np.asarray(values)
    max_off = max(1, len(arr) // num_pes - 1)
    offset = data.draw(st.integers(-max_off, max_off))

    def main():
        dp = DP.get()
        x = dp.from_full(arr)
        return dp.my_pe, x.shift(offset, fill=0.0).gather(0)

    with Machine(num_pes) as m:
        DP.attach(m)
        m.launch(main)
        m.run()
        full = dict(m.results())[0]
    expect = np.zeros_like(arr)
    if offset >= 0:
        if offset < len(arr):
            expect[: len(arr) - offset] = arr[offset:]
    else:
        k = -offset
        if k < len(arr):
            expect[k:] = arr[: len(arr) - k]
    assert np.allclose(full, expect)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 5), st.lists(st.integers(-1000, 1000),
                                   min_size=5, max_size=5))
def test_nx_global_ops_match_python_folds(num_pes, values):
    values = values[:num_pes] if num_pes <= len(values) else values * num_pes

    def main():
        nx = NX.get()
        v = values[nx.mynode() % len(values)]
        return nx.gisum(v), nx.ghigh(v), nx.glow(v)

    with Machine(num_pes) as m:
        NX.attach(m)
        m.launch(main)
        m.run()
        results = m.results()
    contributed = [values[pe % len(values)] for pe in range(num_pes)]
    expect = (sum(contributed), max(contributed), min(contributed))
    assert all(r == expect for r in results)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 100)),
                min_size=1, max_size=20))
def test_tsm_every_message_reaches_exactly_one_receiver(messages):
    """However sends interleave, each tagged message is consumed once:
    per-tag receive counts equal per-tag send counts."""
    received = []

    def main():
        tsm = TSM.get()
        me = tsm.my_pe
        if me == 1:
            def feeder():
                for tag, value in messages:
                    tsm.send(0, tag, value)

            tsm.create(feeder)
            api.CsdScheduler(-1)
            return
        remaining = {"n": len(messages)}

        def consumer(tag):
            def body():
                while True:
                    _, _, v = tsm.receive(tag=tag)
                    received.append((tag, v))
                    remaining["n"] -= 1
                    if remaining["n"] == 0:
                        api.CsdExitAll()
            return body

        for tag in range(4):
            tsm.create(consumer(tag))
        api.CsdScheduler(-1)

    with Machine(2) as m:
        TSM.attach(m)
        m.launch(main)
        m.run()
    assert sorted(received) == sorted(messages)
