"""Property-based tests: message wire format and the Cmm mailbox."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.message import BitVector, Message, estimate_size
from repro.msgmgr.message_manager import CMM_WILDCARD, MessageManager

payloads = st.binary(max_size=256)
handlers = st.integers(min_value=0, max_value=2**31 - 1)
int_prios = st.integers(min_value=-(2**62), max_value=2**62)
bit_prios = st.text(alphabet="01", max_size=16).map(BitVector)
any_prio = st.one_of(st.none(), int_prios, bit_prios)


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------

@given(handlers, payloads, any_prio)
def test_pack_unpack_is_identity(handler, payload, prio):
    msg = Message(handler, payload, prio=prio)
    back = Message.unpack(msg.pack())
    assert back.handler == handler
    assert back.payload == payload
    assert back.size == len(payload)
    assert back.prio == prio


@given(handlers, payloads)
def test_packed_header_is_prefix_stable(handler, payload):
    """Two messages with equal header fields share the exact header
    bytes; payload follows verbatim at the end."""
    a = Message(handler, payload).pack()
    b = Message(handler, b"").pack()
    assert a[: len(b)] == b
    assert a[len(b):] == payload


# ----------------------------------------------------------------------
# estimate_size
# ----------------------------------------------------------------------

nested = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
              st.text(max_size=8), st.binary(max_size=8)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=4), children, max_size=4),
        st.tuples(children, children),
    ),
    max_leaves=12,
)


@given(nested)
def test_estimate_size_total_and_deterministic(value):
    s1 = estimate_size(value)
    s2 = estimate_size(value)
    assert s1 == s2
    assert isinstance(s1, int)
    assert s1 >= 0


@given(st.lists(st.integers(), max_size=10))
def test_estimate_size_monotone_in_container_growth(xs):
    grown = xs + [0]
    assert estimate_size(grown) >= estimate_size(xs)


# ----------------------------------------------------------------------
# Cmm: model-based against a reference implementation
# ----------------------------------------------------------------------

tags = st.integers(min_value=0, max_value=3)
maybe_tag2 = st.one_of(st.none(), tags)


class ReferenceMailbox:
    """Brute-force oracle: a list scanned oldest-first."""

    def __init__(self):
        self.items = []  # (order, tag1, tag2, payload)
        self.order = 0

    def put(self, payload, t1, t2):
        self.order += 1
        self.items.append((self.order, t1, t2, payload))

    def _match(self, t1, t2):
        for entry in self.items:
            _, a, b, _ = entry
            if (t1 is CMM_WILDCARD or a == t1) and (t2 is CMM_WILDCARD or b == t2):
                return entry
        return None

    def get(self, t1, t2):
        entry = self._match(t1, t2)
        if entry is not None:
            self.items.remove(entry)
            return entry[3]
        return None

    def probe(self, t1, t2):
        entry = self._match(t1, t2)
        return -1 if entry is None else len(entry[3])


ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.binary(max_size=6), tags, maybe_tag2),
        st.tuples(st.just("get"),
                  st.one_of(tags, st.just(CMM_WILDCARD)),
                  st.one_of(maybe_tag2, st.just(CMM_WILDCARD))),
        st.tuples(st.just("probe"),
                  st.one_of(tags, st.just(CMM_WILDCARD)),
                  st.one_of(maybe_tag2, st.just(CMM_WILDCARD))),
    ),
    max_size=60,
)


@given(ops)
def test_cmm_agrees_with_reference(operations):
    mm = MessageManager()
    ref = ReferenceMailbox()
    for op in operations:
        if op[0] == "put":
            _, payload, t1, t2 = op
            mm.put(payload, t1, t2)
            ref.put(payload, t1, t2)
        elif op[0] == "get":
            _, t1, t2 = op
            entry = mm.get(t1, t2)
            expected = ref.get(t1, t2)
            assert (entry.payload if entry else None) == expected
        else:
            _, t1, t2 = op
            assert mm.probe(t1, t2) == ref.probe(t1, t2)
    assert len(mm) == len(ref.items)
