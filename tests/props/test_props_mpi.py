"""Property-based tests for the mini-MPI collectives against Python
folds, over random communicator sizes, roots and values."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.langs.mpi import MPI
from repro.sim.machine import Machine

values9 = st.lists(st.integers(-10**6, 10**6), min_size=9, max_size=9)


def _run(num_pes, fn):
    with Machine(num_pes) as m:
        MPI.attach(m)
        m.launch(fn)
        m.run()
        return m.results()


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 6), st.integers(0, 5), values9)
def test_bcast_delivers_roots_value(num_pes, root, values):
    root = root % num_pes

    def main():
        comm = MPI.get().COMM_WORLD
        payload = values if comm.rank == root else None
        return comm.bcast(payload, root=root)

    results = _run(num_pes, main)
    assert all(r == values for r in results)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 6), st.integers(0, 5), values9)
def test_reduce_matches_fold(num_pes, root, values):
    root = root % num_pes

    def main():
        comm = MPI.get().COMM_WORLD
        return comm.reduce(values[comm.rank], lambda a, b: a + b, root=root)

    results = _run(num_pes, main)
    expect = sum(values[:num_pes])
    for rank, r in enumerate(results):
        assert r == (expect if rank == root else None)


@settings(max_examples=12, deadline=None)
@given(st.integers(1, 6), values9)
def test_gather_scatter_inverse(num_pes, values):
    def main():
        comm = MPI.get().COMM_WORLD
        gathered = comm.gather(values[comm.rank], root=0)
        back = comm.scatter(gathered, root=0)
        return back

    results = _run(num_pes, main)
    assert results == values[:num_pes]


@settings(max_examples=12, deadline=None)
@given(st.integers(2, 5), st.data())
def test_alltoall_is_a_transpose(num_pes, data):
    matrix = [
        [data.draw(st.integers(0, 99)) for _ in range(num_pes)]
        for _ in range(num_pes)
    ]

    def main():
        comm = MPI.get().COMM_WORLD
        return comm.alltoall(matrix[comm.rank])

    results = _run(num_pes, main)
    for r in range(num_pes):
        assert results[r] == [matrix[src][r] for src in range(num_pes)]


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 6), st.integers(2, 4))
def test_split_partitions_world(num_pes, colors):
    def main():
        world = MPI.get().COMM_WORLD
        color = world.rank % colors
        sub = world.split(color, key=world.rank)
        members = sub.allreduce({world.rank}, lambda a, b: a | b)
        return color, sub.size, members

    results = _run(num_pes, main)
    for rank, (color, size, members) in enumerate(results):
        expect = {r for r in range(num_pes) if r % colors == color}
        assert members == expect
        assert size == len(expect)
