"""Property-based tests: priority semantics and queue ordering laws."""

from __future__ import annotations

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.message import BitVector, _prio_sort_key
from repro.core.queueing import (
    BitvectorPriorityQueue,
    FifoQueue,
    IntPriorityQueue,
    LifoQueue,
    TwoLevelQueue,
)

bits = st.text(alphabet="01", max_size=12)
int_prios = st.integers(min_value=-(2**31), max_value=2**31)


# ----------------------------------------------------------------------
# BitVector laws
# ----------------------------------------------------------------------

@given(bits, bits)
def test_bitvector_order_matches_fraction_order(a, b):
    x, y = BitVector(a), BitVector(b)
    fx, fy = x.as_fraction(), y.as_fraction()
    if fx < fy:
        assert x < y
    elif fx > fy:
        assert y < x
    else:
        assert x == y


@given(bits, bits, bits)
def test_bitvector_total_order_transitive(a, b, c):
    xs = sorted([BitVector(a), BitVector(b), BitVector(c)])
    assert xs[0] <= xs[1] <= xs[2]
    assert xs[0].as_fraction() <= xs[1].as_fraction() <= xs[2].as_fraction()


@given(bits)
def test_bitvector_extension_laws(a):
    x = BitVector(a)
    assert x.extended("0") == x            # appending 0 keeps the fraction
    assert x.extended("1") > x             # appending 1 strictly grows it
    assert hash(x.extended("0")) == hash(x)


@given(bits, bits)
def test_bitvector_equal_iff_same_hash_bucket(a, b):
    x, y = BitVector(a), BitVector(b)
    if x == y:
        assert hash(x) == hash(y)


# ----------------------------------------------------------------------
# queue ordering laws (model-based against reference implementations)
# ----------------------------------------------------------------------

@given(st.lists(st.integers(), max_size=60))
def test_fifo_is_list_order(items):
    q = FifoQueue()
    for it in items:
        q.push(it)
    assert [q.pop() for _ in items] == items
    assert q.pop() is None


@given(st.lists(st.integers(), max_size=60))
def test_lifo_is_reversed_list_order(items):
    q = LifoQueue()
    for it in items:
        q.push(it)
    assert [q.pop() for _ in items] == list(reversed(items))


@given(st.lists(st.tuples(st.integers(), int_prios), max_size=60))
def test_int_priority_queue_is_stable_sort(items):
    q = IntPriorityQueue()
    for label, prio in items:
        q.push(label, prio)
    got = [q.pop() for _ in items]
    reference = [lab for lab, _ in sorted(items, key=lambda it: it[1])]
    # Stable: equal priorities keep insertion order — which is exactly
    # what sorted() (a stable sort) produces over the priority key.
    assert got == reference


@given(st.lists(st.tuples(st.integers(), bits), max_size=50))
def test_bitvector_queue_is_stable_sort_by_fraction(items):
    q = BitvectorPriorityQueue()
    for label, b in items:
        q.push(label, BitVector(b))
    got = [q.pop() for _ in items]
    reference = [lab for lab, _ in
                 sorted(items, key=lambda it: BitVector(it[1])._key())]
    assert got == reference


@given(st.lists(st.one_of(st.none(), int_prios,
                          bits.map(BitVector)), max_size=50))
def test_two_level_queue_respects_total_key(prios):
    q = TwoLevelQueue()
    for i, p in enumerate(prios):
        q.push(i, p)
    got = [q.pop() for _ in prios]
    reference = [i for i, _ in
                 sorted(enumerate(prios), key=lambda e: _prio_sort_key(e[1]))]
    assert got == reference


@given(st.lists(st.tuples(st.integers(), int_prios), max_size=40),
       st.lists(st.booleans(), max_size=80))
def test_interleaved_push_pop_never_violates_heap_property(items, ops):
    """Popping at arbitrary points always yields the current minimum."""
    q = IntPriorityQueue()
    shadow = []  # (prio, seq, label)
    seq = 0
    it = iter(items)
    for do_pop in ops:
        if do_pop:
            expected = heapq.heappop(shadow)[2] if shadow else None
            assert q.pop() == expected
        else:
            try:
                label, prio = next(it)
            except StopIteration:
                continue
            seq += 1
            q.push(label, prio)
            heapq.heappush(shadow, (prio, seq, label))
    while shadow:
        assert q.pop() == heapq.heappop(shadow)[2]
    assert q.pop() is None
