"""Property-based safety test for quiescence detection: under arbitrary
random message-chain workloads, QD must never fire while application
traffic is still in flight, and must always fire eventually."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import api
from repro.core.message import Message
from repro.core.quiescence import QD
from repro.sim.machine import Machine

# A workload is a list of chains; each chain is (start_pe, hops, grain_us).
chains_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 15),
              st.floats(min_value=0.0, max_value=50.0, allow_nan=False)),
    min_size=0, max_size=6,
)


@settings(max_examples=25, deadline=None)
@given(chains_strategy, st.integers(2, 4))
def test_qd_fires_after_all_traffic_and_exactly_once(chains, num_pes):
    with Machine(num_pes) as m:
        QD.attach(m)
        log = []

        def main():
            me = api.CmiMyPe()

            def hop(msg):
                hops, grain = msg.payload
                log.append(("hop", api.CmiTimer()))
                if grain:
                    api.CmiCharge(grain * 1e-6)
                if hops > 0:
                    nxt = (api.CmiMyPe() + 1) % api.CmiNumPes()
                    api.CmiSyncSend(nxt, Message(hid, (hops - 1, grain), size=8))

            hid = api.CmiRegisterHandler(hop, "chain")
            if me == 0:
                QD.get().start(lambda: (log.append(("quiet", api.CmiTimer())),
                                        api.CsdExitAll()))
                for start_pe, hops, grain in chains:
                    pe = start_pe % api.CmiNumPes()
                    api.CmiSyncSend(pe, Message(hid, (hops, grain), size=8))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()

        quiets = [t for k, t in log if k == "quiet"]
        hops = [t for k, t in log if k == "hop"]
        # Fired exactly once...
        assert len(quiets) == 1
        # ... after every hop of every chain...
        expected_hops = sum(h + 1 for _, h, _ in
                            [(p % num_pes, h, g) for p, h, g in chains])
        assert len(hops) == expected_hops
        if hops:
            assert quiets[0] > max(hops)
        # ... and with balanced application counters at the end.
        qds = [rt.lang_instances["qd"] for rt in m.runtimes]
        sent = sum(rt.node.stats.msgs_sent - q._qd_sent
                   for rt, q in zip(m.runtimes, qds))
        recv = sum(rt.node.stats.msgs_received - q._qd_recv
                   for rt, q in zip(m.runtimes, qds))
        assert sent == recv
