"""Model-based property test of the Csd scheduler: arbitrary interleaved
enqueue/dispatch programs against a pure-Python reference model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import api
from repro.core.message import Message
from repro.sim.machine import Machine

# A program is a list of operations performed by a single main tasklet:
#   ("enq", label, prio)  — CsdEnqueue a message
#   ("run", n)            — CsdScheduler(n) for n already-available items
#   ("until_idle",)       — CsdScheduleUntilIdle()
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("enq"), st.integers(0, 999),
                  st.integers(-5, 5)),
        st.tuples(st.just("run"), st.integers(0, 3)),
        st.tuples(st.just("until_idle")),
    ),
    max_size=30,
)


class _RefQueue:
    """Reference model of the int-priority Csd queue."""

    def __init__(self) -> None:
        self.items = []
        self.seq = 0
        self.log = []

    def enq(self, label, prio):
        self.seq += 1
        self.items.append((prio, self.seq, label))

    def dispatch_one(self) -> bool:
        if not self.items:
            return False
        best = min(self.items)
        self.items.remove(best)
        self.log.append(best[2])
        return True

    def run(self, n):
        for _ in range(n):
            if not self.dispatch_one():
                return

    def until_idle(self):
        while self.dispatch_one():
            pass


@settings(max_examples=40, deadline=None)
@given(ops_strategy)
def test_scheduler_matches_reference_model(program):
    ref = _RefQueue()
    # Interpret the program against the reference first, clamping "run n"
    # to available work (the real scheduler would block otherwise).
    counts_available = []
    pending = 0
    for op in program:
        if op[0] == "enq":
            ref.enq(op[1], op[2])
            pending += 1
        elif op[0] == "run":
            n = min(op[1], pending)
            counts_available.append(n)
            ref.run(n)
            pending -= n
        else:
            ref.until_idle()
            pending = 0

    with Machine(1, queue="int") as m:
        log = []

        def main():
            hid = api.CmiRegisterHandler(
                lambda msg: log.append(msg.payload), "h"
            )
            run_idx = 0
            for op in program:
                if op[0] == "enq":
                    api.CsdEnqueue(Message(hid, op[1], size=0, prio=op[2]))
                elif op[0] == "run":
                    n = counts_available[run_idx]
                    run_idx += 1
                    api.CsdScheduler(n)
                else:
                    api.CsdScheduleUntilIdle()

        m.launch_on(0, main)
        m.run()
        assert log == ref.log
