"""Property-based tests on the simulation substrate: determinism, FIFO
delivery, topology metric axioms, cost-model monotonicity."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import api
from repro.core.message import Message
from repro.sim.machine import Machine
from repro.sim.models import ALL_MODELS, GENERIC
from repro.sim.topology import make_topology

TOPOLOGY_NAMES = ["flat", "mesh2d", "torus3d", "hypercube", "multistage"]


# ----------------------------------------------------------------------
# topology axioms
# ----------------------------------------------------------------------

@given(st.sampled_from(TOPOLOGY_NAMES), st.integers(1, 40),
       st.data())
def test_topology_metric_axioms(name, num, data):
    topo = make_topology(name, num)
    s = data.draw(st.integers(0, num - 1))
    d = data.draw(st.integers(0, num - 1))
    assert topo.hops(s, d) == topo.hops(d, s)
    assert topo.hops(s, s) == 0
    if s != d:
        assert 1 <= topo.hops(s, d) <= 3 * num


# ----------------------------------------------------------------------
# model cost monotonicity
# ----------------------------------------------------------------------

@given(st.sampled_from(sorted(ALL_MODELS)), st.integers(0, 1 << 20),
       st.integers(0, 1 << 20))
def test_wire_time_monotone_in_size(model_name, a, b):
    model = ALL_MODELS[model_name]
    lo, hi = sorted((a, b))
    assert model.wire_time(lo) <= model.wire_time(hi)


@given(st.sampled_from(sorted(ALL_MODELS)), st.integers(0, 1 << 18))
def test_one_way_ordering_native_converse_queued(model_name, size):
    model = ALL_MODELS[model_name]
    nat = model.one_way(size, converse=False)
    conv = model.one_way(size)
    qd = model.one_way(size, queued=True)
    assert nat < conv < qd


# ----------------------------------------------------------------------
# FIFO delivery under arbitrary message-size sequences
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 1 << 17), min_size=1, max_size=15),
       st.sampled_from(sorted(ALL_MODELS)))
def test_channel_fifo_for_any_size_sequence(sizes, model_name):
    model = ALL_MODELS[model_name]
    with Machine(2, model=model) as m:
        got = []

        def receiver():
            hid = api.CmiRegisterHandler(
                lambda msg: got.append(msg.payload), "h"
            )
            api.CsdScheduler(len(sizes))

        def sender():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            for i, size in enumerate(sizes):
                api.CmiSyncSend(0, Message(hid, i, size=size))

        m.launch_on(0, receiver)
        m.launch_on(1, sender)
        m.run()
        assert got == list(range(len(sizes)))


# ----------------------------------------------------------------------
# whole-machine determinism
# ----------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(st.integers(1, 6), st.integers(0, 2**31), st.integers(1, 10))
def test_machine_runs_are_bit_identical(num_pes, seed, nmsgs):
    def once():
        with Machine(num_pes, model=GENERIC, ldb="random", seed=seed) as m:
            log = []

            def main():
                me = api.CmiMyPe()

                def h(msg):
                    log.append((api.CmiMyPe(), msg.payload, api.CmiTimer()))

                hid = api.CmiRegisterHandler(h, "h")
                if me == 0:
                    for i in range(nmsgs):
                        api.CldEnqueue(Message(hid, i, size=8 * (i + 1)))
                api.CsdScheduler(-1)

            m.launch(main)
            m.run()
            return log, m.now

    assert once() == once()


# ----------------------------------------------------------------------
# virtual time never runs backwards
# ----------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e-3,
                          allow_nan=False), max_size=10))
def test_clock_monotone_under_charges(durations):
    with Machine(1) as m:
        stamps = []

        def main():
            for d in durations:
                api.CmiCharge(d)
                stamps.append(api.CmiTimer())

        m.launch_on(0, main)
        m.run()
        assert stamps == sorted(stamps)
        assert m.now >= (sum(durations) - 1e-15)
