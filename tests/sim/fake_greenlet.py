"""A thread-emulated stand-in for the ``greenlet`` module.

The container this repo grows in does not ship the real ``greenlet``
package (it is the optional ``repro[fast]`` extra), but the
:class:`~repro.sim._greenlet_backend.GreenletTasklet` code path still
needs coverage.  This module implements the minimal slice of the greenlet
API the backend uses — ``greenlet.greenlet(run, parent)``, ``switch()``,
``throw()``, ``getcurrent()`` — on top of OS threads with a lock baton,
preserving the semantics that matter:

* ``switch()`` transfers control; the caller blocks until switched back;
* falling off the end of ``run`` returns control to the parent;
* ``throw(exc)`` raises ``exc`` inside the target at its switch point and
  returns to the caller once the target dies.

Install it with :func:`installed` (a context manager) *before* anything
imports ``repro.sim._greenlet_backend``; on exit both the fake module and
the backend module are evicted from ``sys.modules`` so later tests (or a
real greenlet install) see a clean slate.

This is emulation, not acceleration — it exists so availability checks,
backend resolution and the GreenletTasklet baton logic run end-to-end in
environments without the extra.  Real-greenlet behaviour is covered by
the ``importorskip("greenlet")`` tests, which activate wherever the extra
is installed.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from typing import Any, Callable, List, Optional

_tls = threading.local()

#: every thread the fake ever started, so tests can join them before the
#: no-thread-leak fixture counts.
_threads: List[threading.Thread] = []


class greenlet:  # noqa: N801 - mirrors the real module's class name
    """One fake greenlet: a daemon thread parked on a lock baton."""

    def __init__(self, run: Optional[Callable[..., Any]] = None,
                 parent: Optional["greenlet"] = None) -> None:
        self.run = run
        self.parent = parent if parent is not None else getcurrent()
        self.dead = False
        self._started = False
        self._pending_exc: Optional[BaseException] = None
        self._baton = threading.Lock()
        self._baton.acquire()  # parked until someone switches to us
        self._thread: Optional[threading.Thread] = None

    # -- control transfer ------------------------------------------------
    def switch(self) -> None:
        caller = getcurrent()
        if self.dead:
            raise RuntimeError("switch() to a dead fake greenlet")
        self._unpark()
        caller._park()

    def throw(self, exc: Any = None) -> None:
        caller = getcurrent()
        if self.dead:
            return
        if exc is None:
            exc = GreenletExit()
        self._pending_exc = exc() if isinstance(exc, type) else exc
        self._unpark()
        caller._park()

    # -- plumbing --------------------------------------------------------
    def _unpark(self) -> None:
        if not self._started and self.run is not None:
            self._started = True
            self._thread = threading.Thread(
                target=self._bootstrap, name="fake-greenlet", daemon=True
            )
            _threads.append(self._thread)
            self._thread.start()
        else:
            self._baton.release()

    def _park(self) -> None:
        self._baton.acquire()
        exc, self._pending_exc = self._pending_exc, None
        if exc is not None:
            raise exc

    def _bootstrap(self) -> None:
        _tls.current = self
        try:
            exc, self._pending_exc = self._pending_exc, None
            if exc is not None:
                raise exc
            self.run()
        except GreenletExit:
            pass
        finally:
            self.dead = True
            # Death returns control to the parent, as in real greenlet.
            self.parent._unpark()


class _MainGreenlet(greenlet):
    """The implicit greenlet of a thread that never called switch()."""

    def __init__(self) -> None:
        super().__init__(run=None, parent=self)


class GreenletExit(BaseException):
    """Mirrors ``greenlet.GreenletExit`` (unused by the backend, present
    for API faithfulness)."""


def getcurrent() -> greenlet:
    cur = getattr(_tls, "current", None)
    if cur is None:
        cur = _MainGreenlet()
        _tls.current = cur
    return cur


def join_all(timeout: float = 5.0) -> None:
    """Wait for every fake-greenlet thread to exit (call after machine
    shutdown, before asserting on thread counts)."""
    while _threads:
        t = _threads.pop()
        t.join(timeout)


@contextmanager
def installed():
    """Masquerade as the real ``greenlet`` module for the duration.

    Skips (yields ``None``) when the real package is installed — these
    tests then run against the real thing via the normal import path.
    """
    try:
        import greenlet as _real  # noqa: F401
        have_real = _real is not sys.modules[__name__]
    except ImportError:
        have_real = False
    if have_real:
        yield False
        return
    sys.modules["greenlet"] = sys.modules[__name__]
    try:
        yield True
    finally:
        sys.modules.pop("greenlet", None)
        # The backend module captured the fake at import time; evict it so
        # nothing outside this context keeps running on the emulation.
        sys.modules.pop("repro.sim._greenlet_backend", None)
        join_all()
