"""Unit tests for atomic console I/O and sscanf."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import SimulationError
from repro.sim.console import sscanf
from repro.sim.machine import Machine


# ----------------------------------------------------------------------
# sscanf
# ----------------------------------------------------------------------

def test_sscanf_ints_and_floats():
    assert sscanf("12 -3", "%d %d") == [12, -3]
    assert sscanf("3.25e2 hello", "%f %s") == [325.0, "hello"]


def test_sscanf_literal_text_and_percent():
    assert sscanf("x=5 100%", "x=%d %d%%") == [5, 100]


def test_sscanf_char_and_unsigned():
    assert sscanf("a 42", "%c %u") == ["a", 42]


def test_sscanf_mismatch_raises():
    with pytest.raises(SimulationError):
        sscanf("hello", "%d")


def test_sscanf_bad_format_raises():
    with pytest.raises(SimulationError):
        sscanf("x", "%q")
    with pytest.raises(SimulationError):
        sscanf("x", "trailing%")


# ----------------------------------------------------------------------
# console
# ----------------------------------------------------------------------

def test_printf_is_atomic_and_ordered():
    with Machine(4) as m:
        def main():
            api.CmiCharge(api.CmiMyPe() * 1e-6)  # stagger
            api.CmiPrintf("pe %d line\n", api.CmiMyPe())

        m.launch(main)
        m.run()
        lines = m.console.lines("out")
        assert lines == [f"pe {pe} line\n" for pe in range(4)]
        times = [t for t, _, _ in m.console.ordered]
        assert times == sorted(times)


def test_error_goes_to_stderr_stream():
    with Machine(1) as m:
        m.launch_on(0, lambda: api.CmiError("bad %d\n", 7))
        m.run()
        assert m.console.lines("err") == ["bad 7\n"]
        assert m.console.lines("out") == []


def test_blocking_scanf_waits_for_fed_input():
    with Machine(2) as m:
        def reader():
            return api.CmiScanf("%d %s")

        def feeder():
            api.CmiCharge(5e-6)
            m.console.feed("42 hello")

        t = m.launch_on(0, reader)
        m.launch_on(1, feeder)
        m.run()
        assert t.result == [42, "hello"]


def test_scanf_prefed_input():
    with Machine(1) as m:
        m.console.feed("7", "8")
        t = m.launch_on(0, lambda: (api.CmiScanf("%d"), api.CmiScanf("%d")))
        m.run()
        assert t.result == ([7], [8])


def test_scanf_serialized_across_pes():
    """Two PEs reading concurrently each get a whole line."""
    with Machine(2) as m:
        m.console.feed("1", "2")
        results = {}

        def reader():
            results[api.CmiMyPe()] = api.CmiScanf("%d")[0]

        m.launch(reader)
        m.run()
        assert sorted(results.values()) == [1, 2]


def test_async_scanf_delivers_to_handler():
    with Machine(1) as m:
        got = []

        def main():
            def on_line(msg):
                got.append(msg.payload)
                api.CsdExitScheduler()

            hid = api.CmiRegisterHandler(on_line, "scanline")
            api.CmiScanfAsync("%d", hid)
            api.CsdScheduler(-1)

        m.launch_on(0, main)
        m.console.feed("99 bottles")
        m.run()
        assert got == ["99 bottles"]
