"""Coverage for console echo mode and path-backed JSONL tracing."""

from __future__ import annotations

import json

import pytest

from repro.core import api
from repro.core.message import Message
from repro.sim.machine import Machine
from repro.tracing.tracer import JsonlTracer


def test_echo_mode_writes_to_real_stdout(capsys):
    with Machine(2, echo=True) as m:
        def main():
            api.CmiPrintf("echoed %d\n", api.CmiMyPe())
            api.CmiError("problem on %d\n", api.CmiMyPe())

        m.launch(main)
        m.run()
    out, err = capsys.readouterr()
    assert "echoed 0" in out and "echoed 1" in out
    assert "pe0" in out  # the echo prefix carries the PE
    assert "problem on 0" in err


def test_echo_adds_newline_when_missing(capsys):
    with Machine(1, echo=True) as m:
        m.launch_on(0, lambda: api.CmiPrintf("no newline"))
        m.run()
    out, _ = capsys.readouterr()
    assert out.endswith("no newline\n")


def test_jsonl_tracer_to_path(tmp_path):
    trace_file = tmp_path / "run.jsonl"
    with Machine(2, trace=str(trace_file)) as m:
        def main():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            if api.CmiMyPe() == 0:
                api.CmiSyncSend(1, Message(hid, None, size=8))
            else:
                api.CsdScheduler(1)

        m.launch(main)
        m.run()
    # Machine shutdown closed the file; every line parses.
    lines = [json.loads(l) for l in trace_file.read_text().splitlines()]
    assert any(l["kind"] == "send" for l in lines)
    assert any(l["kind"] == "receive" for l in lines)


def test_console_ordered_records_times_nondecreasing():
    with Machine(3) as m:
        def main():
            api.CmiCharge(api.CmiMyPe() * 3e-6)
            api.CmiPrintf("line\n")

        m.launch(main)
        m.run()
        times = [t for t, _, _ in m.console.ordered]
        assert times == sorted(times)
        assert m.console.pending_input == 0
        assert m.console.try_read_line() is None
