"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import gc

import pytest

from repro.core.errors import NotInTaskletError, SimulationError
from repro.sim.engine import SimEngine


def test_events_fire_in_time_order():
    eng = SimEngine()
    log = []
    eng.schedule(3e-6, log.append, "c")
    eng.schedule(1e-6, log.append, "a")
    eng.schedule(2e-6, log.append, "b")
    assert eng.run() == "quiescent"
    assert log == ["a", "b", "c"]
    assert eng.now == pytest.approx(3e-6)


def test_equal_time_events_fire_in_schedule_order():
    eng = SimEngine()
    log = []
    for i in range(10):
        eng.schedule(5e-6, log.append, i)
    eng.run()
    assert log == list(range(10))


def test_zero_delay_event_fires_at_current_time():
    eng = SimEngine()
    log = []
    eng.schedule(0.0, log.append, "now")
    eng.run()
    assert log == ["now"]
    assert eng.now == 0.0


def test_negative_delay_rejected():
    eng = SimEngine()
    with pytest.raises(SimulationError):
        eng.schedule(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    eng = SimEngine()
    log = []
    ev = eng.schedule(1e-6, log.append, "x")
    eng.schedule(1e-6, log.append, "y")
    ev.cancel()
    eng.run()
    assert log == ["y"]


def test_cancel_is_idempotent():
    eng = SimEngine()
    ev = eng.schedule(1e-6, lambda: None)
    ev.cancel()
    ev.cancel()
    assert eng.run() == "quiescent"


def test_cancel_releases_callback_and_args():
    """Regression: a cancelled event must drop its callback/args
    references immediately, not when the dead heap entry is finally
    popped — with retransmission-style timer churn the heap can hold a
    cancelled entry (and, before the fix, its captured message buffer)
    long past its useful life."""
    import weakref

    class Payload:
        pass

    eng = SimEngine()
    payload = Payload()
    ref = weakref.ref(payload)
    ev = eng.schedule(1.0, lambda p: None, payload)
    ev.cancel()
    del payload
    gc.collect()
    assert ref() is None, "cancelled event still pins its argument"
    assert ev.callback is None
    assert ev.args == ()
    assert eng.run() == "quiescent"


def test_run_until_stops_clock_at_bound():
    eng = SimEngine()
    log = []
    eng.schedule(1e-6, log.append, "a")
    eng.schedule(10e-6, log.append, "b")
    assert eng.run(until=5e-6) == "until"
    assert log == ["a"]
    assert eng.now == pytest.approx(5e-6)
    # Resume finishes the rest.
    assert eng.run() == "quiescent"
    assert log == ["a", "b"]


def test_run_max_events():
    eng = SimEngine()
    log = []
    for i in range(5):
        eng.schedule(1e-6 * (i + 1), log.append, i)
    assert eng.run(max_events=2) == "max_events"
    assert log == [0, 1]


def test_events_can_schedule_events():
    eng = SimEngine()
    log = []

    def cascade(n: int) -> None:
        log.append(n)
        if n < 5:
            eng.schedule(1e-6, cascade, n + 1)

    eng.schedule(0.0, cascade, 0)
    eng.run()
    assert log == [0, 1, 2, 3, 4, 5]
    assert eng.now == pytest.approx(5e-6)


def test_schedule_at_absolute_time():
    eng = SimEngine()
    log = []
    eng.schedule_at(4e-6, lambda: log.append(eng.now))
    eng.run()
    assert log == [pytest.approx(4e-6)]


def test_tasklet_sleep_advances_clock():
    eng = SimEngine()
    seen = []

    def body():
        eng.sleep(5e-6)
        seen.append(eng.now)

    eng.spawn(body)
    eng.run()
    eng.shutdown()
    assert seen == [pytest.approx(5e-6)]


def test_sleep_fast_path_matches_slow_path():
    """With interleaved events the slow path runs; the clock outcome must
    be identical either way."""
    eng = SimEngine()
    order = []

    def body():
        eng.sleep(10e-6)      # slow path: an event at 5us intervenes
        order.append(("woke", eng.now))

    eng.spawn(body)
    eng.schedule(5e-6, lambda: order.append(("event", eng.now)))
    eng.run()
    eng.shutdown()
    assert order == [("event", pytest.approx(5e-6)), ("woke", pytest.approx(10e-6))]


def test_suspend_and_make_ready():
    eng = SimEngine()
    log = []

    def body():
        log.append("start")
        eng.suspend()
        log.append("resumed")

    t = eng.spawn(body)
    eng.schedule(2e-6, eng.make_ready, t)
    eng.run()
    eng.shutdown()
    assert log == ["start", "resumed"]


def test_transfer_runs_target_immediately():
    eng = SimEngine()
    log = []

    def b_body():
        log.append("b")

    def a_body():
        log.append("a1")
        eng.transfer(tb)
        log.append("a2")

    tb = eng.spawn(b_body, start=False)
    ta = eng.spawn(a_body)
    # a parks in transfer; b runs and finishes; a is never re-readied by
    # anyone, so we ready it manually afterwards via an event.
    eng.schedule(1e-6, eng.make_ready, ta)
    eng.run()
    eng.shutdown()
    assert log == ["a1", "b", "a2"]


def test_yield_now_round_robins():
    eng = SimEngine()
    log = []

    def worker(name):
        def body():
            for _ in range(3):
                log.append(name)
                eng.yield_now()
        return body

    eng.spawn(worker("x"))
    eng.spawn(worker("y"))
    eng.run()
    eng.shutdown()
    assert log == ["x", "y", "x", "y", "x", "y"]


def test_blocking_primitive_outside_tasklet_raises():
    eng = SimEngine()
    with pytest.raises(NotInTaskletError):
        eng.sleep(1.0)
    with pytest.raises(NotInTaskletError):
        eng.suspend()


def test_tasklet_exception_propagates_to_run():
    eng = SimEngine()

    def boom():
        raise ValueError("kaput")

    eng.spawn(boom)
    with pytest.raises(ValueError, match="kaput"):
        eng.run()
    eng.shutdown()


def test_shutdown_kills_parked_tasklets():
    eng = SimEngine()
    cleaned = []

    def body():
        try:
            eng.suspend()
        finally:
            cleaned.append(True)

    eng.spawn(body)
    eng.run()
    assert not cleaned
    eng.shutdown()
    assert cleaned == [True]
    assert eng.live_tasklets == []


def test_shutdown_of_never_started_tasklet():
    eng = SimEngine()
    eng.spawn(lambda: None, start=False)
    eng.shutdown()
    assert eng.live_tasklets == []


def test_run_not_reentrant_from_tasklet():
    eng = SimEngine()
    errors = []

    def body():
        try:
            eng.run()
        except SimulationError as e:
            errors.append(str(e))

    eng.spawn(body)
    eng.run()
    eng.shutdown()
    assert errors and "reentrant" in errors[0]


def test_pending_events_counts_uncancelled():
    eng = SimEngine()
    ev1 = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    ev1.cancel()
    assert eng.pending_events == 1
    eng.shutdown()


def test_many_tasklets_deterministic():
    """Two identical runs produce identical logs."""

    def one_run():
        eng = SimEngine()
        log = []

        def make(i):
            def body():
                eng.sleep((i % 3) * 1e-6)
                log.append(i)
                eng.yield_now()
                log.append(100 + i)
            return body

        for i in range(12):
            eng.spawn(make(i))
        eng.run()
        eng.shutdown()
        return log

    assert one_run() == one_run()
