"""Regression: cancelled timers must not accumulate in the event heap.

The retransmission layer arms a timer per in-flight packet and cancels
it when the ack arrives; before heap compaction, a long run would grow
the heap without bound (every cancelled entry stayed until its deadline
popped).
"""

from __future__ import annotations

from repro.sim.engine import SimEngine


def test_cancelled_timers_are_compacted():
    eng = SimEngine()
    n = 10_000
    for i in range(n):
        ev = eng.schedule(1.0 + i * 1e-6, lambda: None)
        ev.cancel()
    # the schedule/cancel churn must not leave ~n dead entries behind:
    # compaction keeps the heap below half the churn at all times
    assert eng.heap_size < n // 2
    assert eng.pending_events == 0
    eng.shutdown()


def test_compaction_preserves_live_events():
    eng = SimEngine()
    fired = []
    live = []
    for i in range(2000):
        ev = eng.schedule(1e-3 + i * 1e-6, lambda i=i: fired.append(i))
        if i % 3:
            ev.cancel()
        else:
            live.append(i)
    assert eng.heap_size < 2000  # some compaction happened
    eng.run()
    assert fired == live
    eng.shutdown()


def test_cancel_is_idempotent():
    eng = SimEngine()
    ev = eng.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()  # double-cancel must not corrupt the cancelled count
    assert eng.pending_events == 0
    eng.run()
    eng.shutdown()


def test_small_heaps_are_not_compacted():
    """Below COMPACT_MIN_HEAP the bookkeeping is pure counting — no
    rebuild churn for tiny workloads."""
    eng = SimEngine()
    evs = [eng.schedule(1.0 + i * 1e-6, lambda: None) for i in range(10)]
    for ev in evs:
        ev.cancel()
    assert eng.heap_size == 10  # all still present, lazily skipped
    assert eng.pending_events == 0
    eng.run()
    eng.shutdown()
