"""Inline (delegated) dispatch — ``Machine(inline=True)``.

An outermost idle ``CsdScheduler(-1)`` on an inline-enabled machine
parks its tasklet and lets the delivery path run handlers directly in
engine-callback context (zero context switches per message).  The knob
must be observationally invisible: identical delivery, identical
virtual time and per-PE accounting, identical counted-run semantics —
and suspending primitives must still fail loudly inside handlers.
"""

from __future__ import annotations

from repro import Machine, api
from repro.core.errors import NotInTaskletError
from repro.sim.models import GENERIC


def _pingpong(n, charge=0.0, **machine_kwargs):
    """2-PE ping-pong; returns payload logs + accounting snapshot."""
    log = [[], []]
    with Machine(2, model=GENERIC, **machine_kwargs) as m:
        def main():
            me = api.CmiMyPe()

            def on_msg(msg):
                if charge:
                    api.CmiCharge(charge)
                log[me].append(msg.payload)
                if msg.payload < n:
                    api.CmiSyncSend(1 - me, api.CmiNew(h, msg.payload + 1))
                if msg.payload >= n - 1:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "pp")
            if me == 0:
                api.CmiSyncSend(1, api.CmiNew(h, 1))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        snap = {
            "log": [list(x) for x in log],
            "vt": m.now,
            "recv": [node.stats.msgs_received for node in m.nodes],
            "sent": [node.stats.msgs_sent for node in m.nodes],
            "busy": [round(node.stats.busy_time, 12) for node in m.nodes],
            "wire": m.network.stats.messages,
        }
    return snap


def test_inline_matches_classic_pingpong():
    classic = _pingpong(60, inline=False)
    inline = _pingpong(60, inline=True)
    assert inline == classic


def test_inline_matches_classic_with_charging_handlers():
    """``CmiCharge`` inside a handler advances virtual time in place
    under inline dispatch; the total must equal the classic run's."""
    classic = _pingpong(40, charge=3e-6, inline=False)
    inline = _pingpong(40, charge=3e-6, inline=True)
    assert inline == classic
    assert inline["vt"] > _pingpong(40, inline=True)["vt"]


def test_counted_scheduler_budget_respected_under_inline():
    """``CsdScheduler(n)`` must process exactly ``n`` messages even when
    the drain is delegated to the delivery path."""
    counts = {}
    with Machine(2, model=GENERIC, inline=True) as m:
        def main():
            me = api.CmiMyPe()
            got = [0]

            def on_msg(msg):
                got[0] += 1

            h = api.CmiRegisterHandler(on_msg, "count")
            if me == 0:
                for i in range(5):
                    api.CmiSyncSend(1, api.CmiNew(h, i))
            else:
                counts["first"] = api.CsdScheduler(3)
                counts["after_first"] = got[0]
                counts["second"] = api.CsdScheduler(2)
                counts["after_second"] = got[0]

        m.launch(main)
        m.run()
    assert counts == {"first": 3, "after_first": 3,
                      "second": 2, "after_second": 5}


def test_exit_scheduler_from_inline_handler():
    """``CsdExitScheduler`` called from a handler running inline must
    wake and terminate the parked scheduler loop."""
    got = []
    with Machine(2, model=GENERIC, inline=True) as m:
        def main():
            me = api.CmiMyPe()

            def on_msg(msg):
                got.append(msg.payload)
                api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "exit")
            if me == 0:
                api.CmiSyncSend(1, api.CmiNew(h, "stop"))
            else:
                n = api.CsdScheduler(-1)
                got.append(("loop-returned", n))

        m.launch(main)
        m.run()
    assert got == ["stop", ("loop-returned", 1)]


def test_suspending_primitives_fail_loudly_in_inline_handlers():
    """Handlers run outside any tasklet under inline dispatch, so
    blocking thread ops must raise ``NotInTaskletError`` — not wedge
    the engine."""
    outcome = []
    with Machine(2, model=GENERIC, inline=True) as m:
        def main():
            me = api.CmiMyPe()

            def on_msg(msg):
                try:
                    api.CthSuspend()
                    outcome.append("suspended?!")
                except NotInTaskletError:
                    outcome.append("raised")
                api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_msg, "susp")
            if me == 0:
                api.CmiSyncSend(1, api.CmiNew(h, None))
            else:
                api.CsdScheduler(-1)

        m.launch(main)
        m.run()
    assert outcome == ["raised"]


def test_nonblocking_api_works_in_inline_handlers():
    """The non-suspending Cmi surface (PE identity, timers, sends) must
    resolve its PE context inside inline handlers."""
    seen = {}
    with Machine(3, model=GENERIC, inline=True) as m:
        def main():
            me = api.CmiMyPe()

            def on_msg(msg):
                seen["pe"] = api.CmiMyPe()
                seen["npes"] = api.CmiNumPes()
                seen["timer"] = api.CmiTimer()
                api.CsdExitAll()

            h = api.CmiRegisterHandler(on_msg, "ctx")
            if me == 0:
                api.CmiSyncSend(2, api.CmiNew(h, None))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
    assert seen["pe"] == 2 and seen["npes"] == 3
    assert seen["timer"] >= 0.0


def test_inline_auto_disabled_under_tracing_and_metrics():
    """Tracing and metering hook the tasklet dispatch path, so the
    inline fast path must turn itself off rather than skew them."""
    with Machine(2, inline=True, trace="memory") as m:
        assert all(not rt.inline_dispatch for rt in m.runtimes)
    with Machine(2, inline=True, metrics=True) as m:
        assert all(not rt.inline_dispatch for rt in m.runtimes)
    with Machine(2, inline=True) as m:
        assert all(rt.inline_dispatch for rt in m.runtimes)
    with Machine(2) as m:                     # default: off
        assert all(not rt.inline_dispatch for rt in m.runtimes)


def test_env_knob_enables_inline(monkeypatch):
    monkeypatch.setenv("REPRO_CSD_INLINE", "1")
    with Machine(2) as m:
        assert all(rt.inline_dispatch for rt in m.runtimes)
    monkeypatch.setenv("REPRO_CSD_INLINE", "0")
    with Machine(2) as m:
        assert all(not rt.inline_dispatch for rt in m.runtimes)
