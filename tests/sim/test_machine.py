"""Unit tests for machine assembly, launching, quiescence, teardown."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.errors import SimulationError
from repro.sim.machine import Machine, run_spmd
from repro.sim.models import GENERIC, T3D


def test_machine_builds_runtime_per_pe():
    with Machine(3) as m:
        assert m.num_pes == 3
        for pe in range(3):
            assert m.runtime(pe).node.pe == pe
            assert m.runtime(pe).cld is not None


def test_zero_pes_rejected():
    with pytest.raises(SimulationError):
        Machine(0)


def test_launch_spmd_results_in_pe_order():
    def main():
        return api.CmiMyPe() * 10

    assert run_spmd(4, main) == [0, 10, 20, 30]


def test_launch_on_subset():
    with Machine(4) as m:
        t = m.launch_on(2, lambda: api.CmiMyPe())
        m.run()
        assert t.result == 2


def test_launch_pes_filter():
    with Machine(4) as m:
        ts = m.launch(lambda: api.CmiMyPe(), pes=[1, 3])
        m.run()
        assert [t.result for t in ts] == [1, 3]


def test_results_raise_while_unfinished():
    with Machine(2) as m:
        def stuck():
            api.CsdScheduler(-1)  # never exits

        m.launch_on(0, stuck)
        m.run()
        with pytest.raises(SimulationError, match="not finished"):
            m.results()


def test_quiescence_callback_fires_and_can_extend_run():
    with Machine(2) as m:
        log = []

        def main():
            api.CsdScheduler(1)  # wait for one message
            log.append(("handled-at", api.CmiTimer()))

        def kick():
            # Runs at quiescence: inject one message for PE 0.
            rt = m.runtime(0)
            node = m.node(0)
            hid = rt.handlers.register(lambda msg: None, "late")
            from repro.core.message import Message

            node.engine.schedule(0.0, node.deliver, Message(hid, None, size=0))

        m.launch_on(0, main)
        m.register_quiescence(lambda: log.append("quiescent"))
        m.register_quiescence(kick)
        assert m.run() == "quiescent"
        assert log[0] == "quiescent"
        assert log[1][0] == "handled-at"


def test_shutdown_idempotent_and_blocks_run():
    m = Machine(2)
    m.shutdown()
    m.shutdown()
    with pytest.raises(SimulationError):
        m.run()


def test_machine_model_topology_respected():
    with Machine(8, model=T3D) as m:
        assert type(m.topology).__name__ == "Torus3D"


def test_handler_tables_consistent_after_uniform_setup():
    from repro.core.handlers import HandlerTable

    with Machine(4) as m:
        assert HandlerTable.check_consistent([rt.handlers for rt in m.runtimes])


def test_per_pe_queue_factory():
    from repro.core.queueing import FifoQueue, LifoQueue

    def qfactory(pe):
        return FifoQueue() if pe % 2 == 0 else LifoQueue()

    with Machine(4, queue=qfactory) as m:
        assert isinstance(m.runtime(0).scheduler.queue, FifoQueue)
        assert isinstance(m.runtime(1).scheduler.queue, LifoQueue)


def test_run_until_returns_and_resumes():
    with Machine(2) as m:
        marks = []

        def main():
            api.CmiCharge(10e-6)
            marks.append(api.CmiTimer())

        m.launch_on(0, main)
        assert m.run(until=5e-6) == "until"
        assert marks == []
        assert m.run() == "quiescent"
        assert marks == [pytest.approx(10e-6)]


def test_deterministic_repeat_runs():
    def once():
        with Machine(4, seed=7, ldb="random") as m:
            order = []

            def main():
                api.CmiCharge((api.CmiMyPe() % 2) * 1e-6)
                order.append(api.CmiMyPe())

            m.launch(main)
            m.run()
            return order, m.now

    assert once() == once()
