"""Unit tests for the machine cost models (calibration invariants)."""

from __future__ import annotations

import pytest

from repro.sim.models import (
    ALL_MODELS,
    ATM_HP,
    GENERIC,
    MYRINET_FM,
    PARAGON,
    SP1,
    T3D,
    model_by_name,
)


def test_registry_contains_the_five_machines_plus_generic():
    assert set(ALL_MODELS) == {
        "generic", "atm_hp", "t3d", "myrinet_fm", "sp1", "paragon"
    }
    for name, model in ALL_MODELS.items():
        assert model_by_name(name) is model


def test_unknown_model_rejected():
    with pytest.raises(KeyError):
        model_by_name("cm5")


@pytest.mark.parametrize("model", list(ALL_MODELS.values()), ids=lambda m: m.name)
def test_costs_are_positive_and_monotone(model):
    assert model.send_overhead > 0
    assert model.recv_overhead > 0
    assert model.per_byte > 0
    last = 0.0
    for size in (0, 1, 64, 1024, 65536):
        t = model.one_way(size)
        assert t > last or size == 0
        last = t


@pytest.mark.parametrize("model", list(ALL_MODELS.values()), ids=lambda m: m.name)
def test_converse_overhead_is_small_constant(model):
    """Need-based cost: the Converse additions are a few microseconds,
    independent of message size."""
    for size in (16, 1024, 65536):
        delta = model.one_way(size) - model.one_way(size, converse=False)
        assert delta == pytest.approx(model.cvs_send_extra + model.cvs_dispatch_extra)
        assert delta < 10e-6


def test_myrinet_calibration_matches_paper_quotes():
    """FM: <=128B in ~25us native, ~31us Converse (section 5.1)."""
    assert MYRINET_FM.one_way(128, converse=False) == pytest.approx(25e-6, abs=2e-6)
    assert MYRINET_FM.one_way(128) == pytest.approx(31e-6, abs=2e-6)
    extra = MYRINET_FM.enqueue_cost + MYRINET_FM.dequeue_cost
    assert 9e-6 <= extra <= 15e-6


def test_t3d_copy_threshold_jump():
    """The Figure 5 jump: wire time is discontinuous at 16KB."""
    below = T3D.wire_time(16 * 1024 - 1)
    at = T3D.wire_time(16 * 1024)
    assert at - below > 100e-6
    assert T3D.copy_threshold == 16 * 1024


def test_packetization_counts():
    assert GENERIC.packets(0) == 1
    assert GENERIC.packets(4096) == 1
    assert GENERIC.packets(4097) == 2
    assert GENERIC.packets(3 * 4096) == 3


def test_wire_time_scales_with_hops():
    one = GENERIC.wire_time(100, hops=1)
    three = GENERIC.wire_time(100, hops=3)
    assert three - one == pytest.approx(2 * GENERIC.latency_per_hop)


def test_queued_adds_queue_costs_only():
    for model in ALL_MODELS.values():
        delta = model.one_way(64, queued=True) - model.one_way(64)
        assert delta == pytest.approx(model.enqueue_cost + model.dequeue_cost)


def test_variant_replaces_fields():
    fast = GENERIC.variant(send_overhead=0.0)
    assert fast.send_overhead == 0.0
    assert fast.recv_overhead == GENERIC.recv_overhead
    assert GENERIC.send_overhead > 0  # original untouched (frozen)


def test_era_sanity_ordering():
    """Relative machine speeds follow the era: T3D fastest small-message,
    ATM-connected workstations slowest."""
    smalls = {m.name: m.one_way(16) for m in ALL_MODELS.values()}
    assert smalls["t3d"] < smalls["paragon"] < smalls["myrinet_fm"]
    assert smalls["myrinet_fm"] < smalls["sp1"] < smalls["atm_hp"]
