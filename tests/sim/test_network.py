"""Unit tests for the network: delivery timing, FIFO channels, broadcast,
async sends."""

from __future__ import annotations

import pytest

from repro.sim.machine import Machine
from repro.sim.models import GENERIC


class _Payload:
    def __init__(self, size, label=None):
        self.size = size
        self.label = label


def test_sync_send_timing_matches_model(machine2):
    m = machine2
    times = {}

    def sender():
        node = m.node(0)
        t0 = node.now
        m.network.sync_send(node, 1, 100, _Payload(100))
        times["after_send"] = node.now - t0

    def receiver():
        node = m.node(1)
        node.wait_for_message()
        times["arrival"] = node.now

    m.launch_on(0, sender)
    m.launch_on(1, receiver)
    m.run()
    # Sender blocked for exactly the software send overhead.
    assert times["after_send"] == pytest.approx(GENERIC.send_overhead)
    # Arrival = send overhead + wire time.
    expect = GENERIC.send_overhead + GENERIC.wire_time(100, 1)
    assert times["arrival"] == pytest.approx(expect)


def test_fifo_order_preserved_per_channel(machine2):
    m = machine2
    got = []

    def sender():
        node = m.node(0)
        for i in range(10):
            m.network.sync_send(node, 1, 8, _Payload(8, i))

    def receiver():
        node = m.node(1)
        for _ in range(10):
            got.append(node.wait_for_message().label)

    m.launch_on(0, sender)
    m.launch_on(1, receiver)
    m.run()
    assert got == list(range(10))


def test_fifo_even_when_sizes_would_reorder(machine2):
    """A big (slow) message followed by a tiny one must still arrive
    first: channels are FIFO like every machine the paper ports to."""
    m = machine2
    got = []

    def sender():
        node = m.node(0)
        m.network.sync_send(node, 1, 100_000, _Payload(100_000, "big"))
        m.network.sync_send(node, 1, 1, _Payload(1, "small"))

    def receiver():
        node = m.node(1)
        got.append(node.wait_for_message().label)
        got.append(node.wait_for_message().label)

    m.launch_on(0, sender)
    m.launch_on(1, receiver)
    m.run()
    assert got == ["big", "small"]


def test_async_send_returns_before_completion(machine2):
    m = machine2
    obs = {}

    def sender():
        node = m.node(0)
        t0 = node.now
        h = m.network.async_send(node, 1, 1000, _Payload(1000))
        obs["init_cost"] = node.now - t0
        obs["done_immediately"] = h.done
        node.charge(GENERIC.send_overhead)  # overlap something
        obs["done_later"] = h.done

    def receiver():
        m.node(1).wait_for_message()

    m.launch_on(0, sender)
    m.launch_on(1, receiver)
    m.run()
    assert obs["init_cost"] == pytest.approx(
        GENERIC.send_overhead * m.network.ASYNC_INIT_FRACTION
    )
    assert not obs["done_immediately"]
    assert obs["done_later"]


def test_broadcast_excludes_or_includes_self(machine4):
    m = machine4
    received = {pe: [] for pe in range(4)}

    def receiver(pe):
        def body():
            node = m.node(pe)
            while True:
                p = node.wait_for_message()
                received[pe].append(p.label)
        return body

    def sender():
        node = m.node(0)
        m.network.broadcast(node, 8, lambda dst: _Payload(8, f"x{dst}"),
                            include_self=False)
        m.network.broadcast(node, 8, lambda dst: _Payload(8, f"y{dst}"),
                            include_self=True)

    for pe in range(1, 4):
        m.launch_on(pe, receiver(pe), name=f"rx{pe}")
    m.launch_on(0, receiver(0), name="rx0")
    m.launch_on(0, sender, name="tx")
    m.run()
    assert received[0] == ["y0"]
    for pe in range(1, 4):
        assert received[pe] == [f"x{pe}", f"y{pe}"]


def test_broadcast_cost_scales_with_destinations():
    costs = {}
    for num in (2, 8):
        with Machine(num, model=GENERIC) as m:
            def sender():
                node = m.node(0)
                t0 = node.now
                m.network.broadcast(node, 8, lambda dst: _Payload(8))
                costs[num] = node.now - t0

            m.launch_on(0, sender)
            m.run()
    assert costs[8] > costs[2]
    expected_2 = GENERIC.send_overhead * (1 + 0 * GENERIC.broadcast_factor)
    assert costs[2] == pytest.approx(expected_2)


def test_network_stats_accumulate(machine2):
    m = machine2

    def sender():
        node = m.node(0)
        for _ in range(3):
            m.network.sync_send(node, 1, 50, _Payload(50))

    def receiver():
        node = m.node(1)
        for _ in range(3):
            node.wait_for_message()

    m.launch_on(0, sender)
    m.launch_on(1, receiver)
    m.run()
    assert m.network.stats.messages == 3
    assert m.network.stats.bytes == 150
    assert m.network.stats.per_channel[(0, 1)] == 3


def test_send_to_unknown_pe_rejected(machine2):
    m = machine2
    errors = []

    def sender():
        node = m.node(0)
        try:
            m.network.sync_send(node, 5, 8, _Payload(8))
        except Exception as e:  # noqa: BLE001
            errors.append(type(e).__name__)

    m.launch_on(0, sender)
    m.run()
    assert errors == ["SimulationError"]
