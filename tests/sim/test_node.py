"""Unit tests for the simulated PE (node): inbox, charge, memory."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.sim.machine import Machine
from repro.sim.models import GENERIC


class _P:
    def __init__(self, size=0, label=None):
        self.size = size
        self.label = label


def test_charge_advances_clock_and_accumulates(machine2):
    m = machine2

    def body():
        node = m.node(0)
        node.charge(5e-6)
        node.charge(0.0)
        node.charge(3e-6)
        return node.now

    t = m.launch_on(0, body)
    m.run()
    assert t.result == pytest.approx(8e-6)
    assert m.node(0).stats.busy_time == pytest.approx(8e-6)


def test_charge_negative_rejected(machine2):
    m = machine2

    def body():
        m.node(0).charge(-1.0)

    m.launch_on(0, body)
    with pytest.raises(SimulationError):
        m.run()


def test_charge_from_wrong_pe_rejected(machine2):
    m = machine2

    def body():
        m.node(1).charge(1e-6)  # tasklet runs on PE 0

    m.launch_on(0, body)
    with pytest.raises(SimulationError, match="not on this PE"):
        m.run()


def test_poll_nonblocking(machine2):
    m = machine2

    def body():
        node = m.node(0)
        assert node.poll() is None
        node.deliver(_P(label="direct"))
        got = node.poll()
        return got.label

    t = m.launch_on(0, body)
    m.run()
    assert t.result == "direct"


def test_wait_until_predicate(machine2):
    m = machine2
    log = []

    def waiter():
        node = m.node(0)
        node.wait_until(lambda: len(node.inbox) >= 2)
        log.append([p.label for p in node.inbox])

    def feeder():
        node = m.node(1)
        m.network.sync_send(node, 0, 1, _P(1, "a"))
        node.charge(10e-6)
        m.network.sync_send(node, 0, 1, _P(1, "b"))

    m.launch_on(0, waiter)
    m.launch_on(1, feeder)
    m.run()
    assert log == [["a", "b"]]


def test_wait_for_message_from_wrong_pe_rejected(machine2):
    m = machine2

    def body():
        m.node(1).wait_for_message()

    m.launch_on(0, body)
    with pytest.raises(SimulationError):
        m.run()


def test_node_stats_count_messages(machine2):
    m = machine2

    def sender():
        node = m.node(0)
        m.network.sync_send(node, 1, 42, _P(42))

    def receiver():
        m.node(1).wait_for_message()

    m.launch_on(0, sender)
    m.launch_on(1, receiver)
    m.run()
    assert m.node(1).stats.msgs_received == 1
    assert m.node(1).stats.bytes_received == 42


def test_memory_alloc_read_write(machine2):
    node = machine2.node(0)
    key = node.alloc(16)
    node.mem_write(key, 4, b"abcd")
    assert node.mem_read(key, 4, 4) == b"abcd"
    assert node.mem_read(key, 0, 4) == b"\x00" * 4


def test_memory_bounds_checked(machine2):
    node = machine2.node(0)
    key = node.alloc(8)
    with pytest.raises(SimulationError):
        node.mem_read(key, 4, 8)
    with pytest.raises(SimulationError):
        node.mem_write(key, 7, b"xy")
    with pytest.raises(SimulationError):
        node.alloc(-1)


def test_delivery_hooks_fire(machine2):
    m = machine2
    seen = []
    m.node(0).add_delivery_hook(lambda p: seen.append(p.label))

    def sender():
        node = m.node(1)
        m.network.sync_send(node, 0, 1, _P(1, "hooked"))

    def receiver():
        m.node(0).wait_for_message()

    m.launch_on(1, sender)
    m.launch_on(0, receiver)
    m.run()
    assert seen == ["hooked"]
