"""Switch-backend resolution and cross-backend tasklet semantics.

The resolution tests exercise :mod:`repro.sim.switching` directly.  The
GreenletTasklet tests run against the real ``greenlet`` package when the
``repro[fast]`` extra is installed, and otherwise against
:mod:`tests.sim.fake_greenlet` — a thread-emulated stand-in with the same
control-transfer semantics — so the backend's baton logic is covered in
every environment.
"""

from __future__ import annotations

import os

import pytest

from repro.core.errors import SimulationError
from repro.sim.engine import SimEngine
from repro.sim.machine import Machine
from repro.sim.switching import (
    ENV_VAR,
    BACKENDS,
    GreenletSwitchBackend,
    SwitchBackend,
    ThreadSwitchBackend,
    available_backends,
    best_backend_name,
    resolve_backend,
)
from tests.sim.fake_greenlet import installed as fake_greenlet_installed


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def test_thread_backend_always_available():
    assert "thread" in available_backends()
    assert ThreadSwitchBackend.available()


def test_default_resolution_is_thread(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_backend(None).name == "thread"
    assert resolve_backend("thread").name == "thread"


@pytest.mark.parametrize("alias", ["fast", "auto", "best", "FAST", " auto "])
def test_fast_aliases_resolve_and_never_fail(alias):
    assert resolve_backend(alias).name == best_backend_name()


def test_backend_instance_passes_through():
    backend = ThreadSwitchBackend()
    assert resolve_backend(backend) is backend


def test_unknown_backend_rejected():
    with pytest.raises(SimulationError, match="unknown switch backend"):
        resolve_backend("fibers")


def test_unavailable_backend_names_the_fix():
    if GreenletSwitchBackend.available():
        pytest.skip("greenlet installed; no unavailable backend to test")
    with pytest.raises(SimulationError, match=r"repro\[fast\]"):
        resolve_backend("greenlet")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "thread")
    assert resolve_backend(None).name == "thread"
    monkeypatch.setenv(ENV_VAR, "fast")
    assert resolve_backend(None).name == best_backend_name()
    monkeypatch.setenv(ENV_VAR, "no-such-backend")
    with pytest.raises(SimulationError, match="unknown switch backend"):
        resolve_backend(None)


def test_explicit_argument_beats_env_var(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "no-such-backend")
    assert resolve_backend("thread").name == "thread"


def test_machine_exposes_backend_name():
    with Machine(1, backend="thread") as m:
        assert m.backend_name == "thread"
    with Machine(1, backend="auto") as m:
        assert m.backend_name == best_backend_name()


def test_registry_preference_order():
    """"fast" must prefer greenlet over thread whenever it is present."""
    assert list(BACKENDS) == ["greenlet", "thread"]


def test_custom_backend_is_pluggable():
    """Third implementations slot in without touching the engine: the
    seam is the SwitchBackend factory, nothing else."""
    created = []

    class CountingBackend(SwitchBackend):
        name = "counting"

        def create(self, engine, fn, name="tasklet", node=None):
            from repro.sim.tasklet import Tasklet

            created.append(name)
            return Tasklet(engine, fn, name=name, node=node)

    eng = SimEngine(backend=CountingBackend())
    t = eng.spawn(lambda: 7, name="probe")
    eng.run()
    eng.shutdown()
    assert t.result == 7
    assert created == ["probe"]


# ----------------------------------------------------------------------
# GreenletTasklet semantics (real greenlet, or the thread-emulated fake)
# ----------------------------------------------------------------------
@pytest.fixture
def greenlet_backend():
    """A usable greenlet switch backend: real where installed, otherwise
    the fake module is injected for the duration of the test."""
    with fake_greenlet_installed():
        yield GreenletSwitchBackend()


def test_greenlet_result_captured(greenlet_backend):
    eng = SimEngine(backend=greenlet_backend)
    t = eng.spawn(lambda: 41 + 1)
    eng.run()
    eng.shutdown()
    assert t.finished
    assert t.result == 42
    assert t.error is None


def test_greenlet_error_captured_and_reported(greenlet_backend):
    eng = SimEngine(backend=greenlet_backend)

    def boom():
        raise RuntimeError("x")

    t = eng.spawn(boom)
    with pytest.raises(RuntimeError):
        eng.run()
    eng.shutdown()
    assert t.finished
    assert isinstance(t.error, RuntimeError)


def test_greenlet_park_from_foreign_context_rejected(greenlet_backend):
    eng = SimEngine(backend=greenlet_backend)
    t = eng.spawn(lambda: eng.suspend(), start=False)
    with pytest.raises(SimulationError, match="foreign context"):
        t.park()  # we are the driver, not the tasklet's greenlet
    eng.shutdown()


def test_greenlet_kill_before_start_never_runs_user_code(greenlet_backend):
    eng = SimEngine(backend=greenlet_backend)
    ran = []
    t = eng.spawn(lambda: ran.append(1), start=False)
    t.kill()
    t.join()
    assert t.finished
    assert ran == []


def test_greenlet_finally_blocks_run_on_kill(greenlet_backend):
    eng = SimEngine(backend=greenlet_backend)
    cleanup = []

    def body():
        try:
            eng.suspend()
        finally:
            cleanup.append("cleaned")

    eng.spawn(body)
    eng.run()
    eng.shutdown()
    assert cleanup == ["cleaned"]


def test_greenlet_kill_is_not_catchable_as_exception(greenlet_backend):
    eng = SimEngine(backend=greenlet_backend)
    swallowed = []

    def body():
        try:
            eng.suspend()
        except Exception:  # noqa: BLE001 - the point of the test
            swallowed.append(True)

    t = eng.spawn(body)
    eng.run()
    eng.shutdown()
    assert swallowed == []
    assert t.finished


def test_greenlet_machine_workload_matches_thread(greenlet_backend):
    """One full message-driven workload per backend: identical results."""
    from repro import api
    from repro.sim.models import GENERIC

    def run(backend):
        recv = []
        with Machine(2, model=GENERIC, backend=backend) as m:
            def main():
                me = api.CmiMyPe()

                def on_ball(msg):
                    recv.append((me, msg.payload))
                    if msg.payload < 9:
                        api.CmiSyncSend(1 - me, api.CmiNew(h, msg.payload + 1))
                    else:
                        api.CsdExitScheduler()

                h = api.CmiRegisterHandler(on_ball, "sw.ball")
                if me == 0:
                    api.CmiSyncSend(1, api.CmiNew(h, 0))
                api.CsdScheduler(-1)

            m.launch(main)
            m.run()
        return recv

    assert run(greenlet_backend) == run("thread")
