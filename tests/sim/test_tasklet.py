"""Direct unit tests for the tasklet baton protocol."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import SimulationError
from repro.sim.engine import SimEngine
from repro.sim.tasklet import Tasklet


def test_result_captured():
    eng = SimEngine()
    t = eng.spawn(lambda: 41 + 1)
    eng.run()
    eng.shutdown()
    assert t.finished
    assert t.result == 42
    assert t.error is None


def test_error_captured_and_reported():
    eng = SimEngine()

    def boom():
        raise RuntimeError("x")

    t = eng.spawn(boom)
    with pytest.raises(RuntimeError):
        eng.run()
    eng.shutdown()
    assert t.finished
    assert isinstance(t.error, RuntimeError)


def test_park_from_foreign_thread_rejected():
    eng = SimEngine()
    t = Tasklet(eng, lambda: None)
    with pytest.raises(SimulationError, match="foreign thread"):
        t.park()  # we are the driver thread, not the tasklet's


def test_kill_before_start_never_runs_user_code():
    eng = SimEngine()
    ran = []
    t = eng.spawn(lambda: ran.append(1), start=False)
    t.kill()
    t.join()
    assert t.finished
    assert ran == []


def test_finally_blocks_run_on_kill():
    eng = SimEngine()
    cleanup = []

    def body():
        try:
            eng.suspend()
        finally:
            cleanup.append("cleaned")

    eng.spawn(body)
    eng.run()
    eng.shutdown()
    assert cleanup == ["cleaned"]


def test_kill_is_not_catchable_as_exception():
    """TaskletKilled derives from BaseException: user `except Exception`
    cannot swallow shutdown."""
    eng = SimEngine()
    swallowed = []

    def body():
        try:
            eng.suspend()
        except Exception:  # noqa: BLE001 - the point of the test
            swallowed.append(True)

    t = eng.spawn(body)
    eng.run()
    eng.shutdown()
    assert swallowed == []
    assert t.finished


def test_only_one_tasklet_thread_runnable_at_a_time():
    """The baton discipline: between parking points, no other tasklet
    ever executes — shared state cannot change under a tasklet's feet."""
    eng = SimEngine()
    shared = {}
    undisturbed = []

    def body(i):
        def run():
            for _ in range(5):
                shared["current"] = i
                # Plenty of bytecode for a rogue concurrent thread to
                # sneak into — if one ever ran.
                acc = sum(range(200))
                undisturbed.append(shared["current"] == i and acc == 19900)
                eng.yield_now()
        return run

    for i in range(8):
        eng.spawn(body(i))
    eng.run()
    eng.shutdown()
    assert all(undisturbed)
    assert len(undisturbed) == 40


def test_tasklet_node_binding_and_data_slot():
    eng = SimEngine()
    t = eng.spawn(lambda: None, node="fake-node", start=False)
    t.data = {"anything": True}
    assert t.node == "fake-node"
    assert t.data == {"anything": True}
    eng.shutdown()


def test_thread_count_returns_to_baseline_after_shutdown():
    before = threading.active_count()
    eng = SimEngine()

    def sleeper():
        eng.suspend()

    for _ in range(20):
        eng.spawn(sleeper)
    eng.run()
    eng.shutdown()
    assert threading.active_count() <= before + 1
