"""Unit tests for interconnect topologies."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.sim.topology import (
    FlatTopology,
    Hypercube,
    Mesh2D,
    MultistageTopology,
    Torus3D,
    make_topology,
)

ALL_NAMES = ["flat", "mesh2d", "torus3d", "hypercube", "multistage"]


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("num", [1, 2, 5, 8, 16])
def test_metric_axioms(name, num):
    """hops is a metric-ish function: zero on the diagonal, symmetric,
    positive off-diagonal."""
    topo = make_topology(name, num)
    for s in range(num):
        assert topo.hops(s, s) == 0
        for d in range(num):
            assert topo.hops(s, d) == topo.hops(d, s)
            if s != d:
                assert topo.hops(s, d) >= 1


def test_flat_is_single_hop():
    topo = FlatTopology(7)
    assert all(topo.hops(0, d) == 1 for d in range(1, 7))
    assert topo.diameter == 1


def test_mesh2d_manhattan_distance():
    topo = Mesh2D(9)  # 3x3
    assert topo.cols == 3
    assert topo.hops(0, 8) == 4  # (0,0) -> (2,2)
    assert topo.hops(0, 1) == 1
    assert topo.hops(0, 3) == 1  # one row down
    assert topo.hops(1, 5) == 2


def test_mesh2d_nonsquare():
    topo = Mesh2D(6)  # 2 cols? isqrt(6)=2 -> cols=2, rows=3
    assert topo.rows * topo.cols >= 6
    assert topo.hops(0, 5) == abs(0 - 2) + abs(0 - 1)


def test_torus3d_wraparound():
    topo = Torus3D(27)  # 3x3x3
    assert topo.side == 3
    # (0,0,0) to (0,0,2): distance 1 thanks to the wrap link.
    assert topo.hops(0, 2) == 1
    # (0,0,0) to (1,1,1): 3 hops.
    assert topo.hops(0, 13) == 3
    assert topo.diameter <= 3 * (3 // 2)


def test_hypercube_hamming():
    topo = Hypercube(8)
    assert topo.hops(0b000, 0b111) == 3
    assert topo.hops(0b101, 0b100) == 1
    assert sorted(topo.neighbors(0)) == [1, 2, 4]


def test_hypercube_neighbors_clipped_to_machine():
    topo = Hypercube(6)
    assert sorted(topo.neighbors(0)) == [1, 2, 4]
    assert sorted(topo.neighbors(5)) == [1, 4]  # 5^1=4, 5^2=7(out), 5^4=1


def test_multistage_log_depth():
    topo = MultistageTopology(16)
    assert topo.hops(0, 1) == 4
    assert topo.hops(3, 3) == 0
    assert MultistageTopology(2).hops(0, 1) == 1


def test_out_of_range_pe_rejected():
    topo = make_topology("flat", 4)
    with pytest.raises(SimulationError):
        topo.hops(0, 4)
    with pytest.raises(SimulationError):
        topo.hops(-1, 0)


def test_unknown_topology_rejected():
    with pytest.raises(SimulationError, match="unknown topology"):
        make_topology("hyperloop", 4)


def test_zero_pes_rejected():
    with pytest.raises(SimulationError):
        make_topology("flat", 0)
