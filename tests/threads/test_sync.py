"""Unit tests for Cts locks, condition variables and barriers."""

from __future__ import annotations

import pytest

from tests.helpers import run_on

from repro.core import api
from repro.core.errors import SyncError


def _spawn_scheduled(fn, *args):
    """Create a Csd-integrated thread (the usual language pattern)."""
    t = api.CthCreate(lambda a: fn(*args), None)
    api.CthUseSchedulerStrategy(t)
    api.CthAwaken(t)
    return t


# ----------------------------------------------------------------------
# locks
# ----------------------------------------------------------------------

def test_lock_uncontended():
    def main():
        lock = api.CtsNewLock()
        assert lock.try_lock()
        assert not lock.try_lock()  # second attempt fails (same owner)
        lock.unlock()
        lock.lock()
        lock.unlock()
        return lock.locked

    assert run_on(1, main) is False


def test_lock_mutual_exclusion_among_threads():
    def main():
        lock = api.CtsNewLock()
        log = []

        def worker(name):
            lock.lock()
            log.append((name, "in"))
            api.CthYield()  # try to interleave inside the section
            log.append((name, "out"))
            lock.unlock()

        done = {"n": 0}

        def tracked(name):
            worker(name)
            done["n"] += 1
            if done["n"] == 3:
                api.CsdExitScheduler()

        for name in ("a", "b", "c"):
            _spawn_scheduled(tracked, name)
        api.CsdScheduler(-1)
        return log

    log = run_on(1, main)
    # Sections never interleave: each (x, in) is immediately followed by
    # (x, out).
    for i in range(0, len(log), 2):
        assert log[i][0] == log[i + 1][0]
        assert log[i][1] == "in" and log[i + 1][1] == "out"


def test_lock_fifo_handoff():
    def main():
        lock = api.CtsNewLock()
        order = []

        def worker(name):
            lock.lock()
            order.append(name)
            lock.unlock()
            if len(order) == 3:
                api.CsdExitScheduler()

        def holder():
            lock.lock()
            api.CthYield()  # let the others queue up
            api.CthYield()
            lock.unlock()

        _spawn_scheduled(holder)
        for name in ("first", "second", "third"):
            _spawn_scheduled(worker, name)
        api.CsdScheduler(-1)
        return order, lock.handoffs

    order, handoffs = run_on(1, main)
    assert order == ["first", "second", "third"]
    assert handoffs == 3


def test_unlock_by_non_owner_rejected():
    def main():
        lock = api.CtsNewLock()
        lock.lock()

        caught = []

        def intruder():
            try:
                lock.unlock()
            except SyncError:
                caught.append(True)
            api.CsdExitScheduler()

        _spawn_scheduled(intruder)
        api.CsdScheduler(-1)
        lock.unlock()
        return caught

    assert run_on(1, main) == [True]


def test_relock_by_owner_rejected():
    def main():
        lock = api.CtsNewLock()
        lock.lock()
        try:
            lock.lock()
        except SyncError:
            return "nonrecursive"

    assert run_on(1, main) == "nonrecursive"


def test_lock_init_resets():
    def main():
        lock = api.CtsNewLock()
        lock.lock()
        lock.init()
        return lock.locked

    assert run_on(1, main) is False


# ----------------------------------------------------------------------
# condition variables
# ----------------------------------------------------------------------

def test_condition_signal_releases_one_fifo():
    def main():
        cond = api.CtsNewCondn()
        released = []

        def waiter(name):
            cond.wait()
            released.append(name)
            if len(released) == 2:
                api.CsdExitScheduler()

        def signaller():
            assert cond.waiters == 2
            assert cond.signal() == 1
            assert cond.signal() == 1
            assert cond.signal() == 0

        _spawn_scheduled(waiter, "w1")
        _spawn_scheduled(waiter, "w2")
        _spawn_scheduled(signaller)
        api.CsdScheduler(-1)
        return released

    assert run_on(1, main) == ["w1", "w2"]


def test_condition_broadcast_releases_all():
    def main():
        cond = api.CtsNewCondn()
        released = []

        def waiter(name):
            cond.wait()
            released.append(name)
            if len(released) == 3:
                api.CsdExitScheduler()

        def caster():
            assert cond.broadcast() == 3

        for i in range(3):
            _spawn_scheduled(waiter, i)
        _spawn_scheduled(caster)
        api.CsdScheduler(-1)
        return sorted(released)

    assert run_on(1, main) == [0, 1, 2]


def test_condition_wait_with_lock_reacquires():
    def main():
        lock = api.CtsNewLock()
        cond = api.CtsNewCondn()
        log = []

        def consumer():
            lock.lock()
            cond.wait(lock)   # releases while waiting
            log.append(("consumer-owns", lock.owner is api.CthSelf()))
            lock.unlock()
            api.CsdExitScheduler()

        def producer():
            lock.lock()       # only possible if wait released it
            log.append("producer-in")
            cond.signal()
            lock.unlock()

        _spawn_scheduled(consumer)
        _spawn_scheduled(producer)
        api.CsdScheduler(-1)
        return log

    log = run_on(1, main)
    assert log == ["producer-in", ("consumer-owns", True)]


def test_condition_init_wakes_all_waiters():
    """Per the paper's API, re-initialization awakens all waiters."""
    def main():
        cond = api.CtsNewCondn()
        released = []

        def waiter(i):
            cond.wait()
            released.append(i)
            if len(released) == 2:
                api.CsdExitScheduler()

        def reiniter():
            cond.init()

        _spawn_scheduled(waiter, 0)
        _spawn_scheduled(waiter, 1)
        _spawn_scheduled(reiniter)
        api.CsdScheduler(-1)
        return released

    assert sorted(run_on(1, main)) == [0, 1]


# ----------------------------------------------------------------------
# barriers
# ----------------------------------------------------------------------

def test_barrier_blocks_until_k_arrive():
    def main():
        bar = api.CtsNewBarrier()
        bar.reinit(3)
        log = []

        def worker(i):
            log.append(("before", i))
            bar.at_barrier()
            log.append(("after", i))
            if sum(1 for kind, _ in log if kind == "after") == 3:
                api.CsdExitScheduler()

        for i in range(3):
            _spawn_scheduled(worker, i)
        api.CsdScheduler(-1)
        return log, bar.episodes

    log, episodes = run_on(1, main)
    befores = [e for e in log if e[0] == "before"]
    afters = [e for e in log if e[0] == "after"]
    assert log.index(afters[0]) > log.index(befores[-1])
    assert episodes == 1


def test_barrier_reusable_across_episodes():
    def main():
        bar = api.CtsNewBarrier()
        bar.reinit(2)
        rounds = []

        def worker(i):
            for r in range(3):
                bar.at_barrier()
                rounds.append((r, i))
            if i == 0:
                api.CsdExitScheduler()

        _spawn_scheduled(worker, 0)
        _spawn_scheduled(worker, 1)
        api.CsdScheduler(-1)
        return rounds, bar.episodes

    rounds, episodes = run_on(1, main)
    assert episodes == 3
    # Round r for both workers completes before round r+1 starts.
    positions = {r: [i for i, e in enumerate(rounds) if e[0] == r] for r in range(3)}
    assert max(positions[0]) < min(positions[1]) < max(positions[1]) < min(positions[2])


def test_barrier_uninitialized_rejected():
    def main():
        bar = api.CtsNewBarrier()
        try:
            bar.at_barrier()
        except SyncError:
            return "uninit"

    assert run_on(1, main) == "uninit"


def test_barrier_reinit_validates():
    def main():
        bar = api.CtsNewBarrier()
        try:
            bar.reinit(0)
        except SyncError:
            return "bad"

    assert run_on(1, main) == "bad"
