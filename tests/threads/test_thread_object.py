"""Unit tests for Cth thread objects: the four verbs, strategies,
scheduler integration."""

from __future__ import annotations

import pytest

from tests.helpers import run_on

from repro.core import api
from repro.core.errors import ThreadError
from repro.core.message import Message


def test_create_does_not_run_until_resumed():
    def main():
        log = []
        t = api.CthCreate(lambda arg: log.append(arg), "ran")
        before = list(log)
        api.CthResume(t)
        return before, log

    before, log = run_on(1, main)
    assert before == []
    assert log == ["ran"]


def test_resume_switches_and_returns_on_suspend():
    def main():
        log = []

        def body(arg):
            log.append("t1")
            api.CthSuspend()
            log.append("t2")

        t = api.CthCreate(body, None)
        api.CthResume(t)
        log.append("main1")
        api.CthResume(t)
        log.append("main2")
        return log

    assert run_on(1, main) == ["t1", "main1", "t2", "main2"]


def test_thread_arg_passed():
    def main():
        got = []
        t = api.CthCreate(lambda arg: got.append(arg), {"k": 1})
        api.CthResume(t)
        return got

    assert run_on(1, main) == [{"k": 1}]


def test_self_inside_thread_and_main_pseudothread():
    def main():
        ids = {}

        def body(arg):
            ids["thread"] = api.CthSelf().id

        t = api.CthCreate(body, None)
        ids["declared"] = t.id
        ids["main"] = api.CthSelf().id
        api.CthResume(t)
        assert api.CthSelf().id == ids["main"]  # stable wrapper
        return ids

    ids = run_on(1, main)
    assert ids["thread"] == ids["declared"]
    assert ids["main"] != ids["thread"]


def test_default_suspend_pops_ready_pool_fifo():
    def main():
        log = []

        def body(name):
            log.append(name)

        t1 = api.CthCreate(body, "first")
        t2 = api.CthCreate(body, "second")
        api.CthAwaken(t1)
        api.CthAwaken(t2)
        me = api.CthSelf()

        def driver(arg):
            # suspending from a thread picks pool entries FIFO
            log.append("driver")
            api.CthAwaken(me)
            api.CthSuspend()

        d = api.CthCreate(driver, None)
        api.CthResume(d)
        return log

    # driver suspends -> t1 runs -> finishes -> pool pops t2 -> finishes
    # -> pops main (awakened by driver) -> main continues.
    assert run_on(1, main) == ["driver", "first", "second"]


def test_yield_lets_peers_run():
    def main():
        log = []

        def worker(name):
            for _ in range(2):
                log.append(name)
                api.CthYield()

        a = api.CthCreate(worker, "a")
        b = api.CthCreate(worker, "b")
        api.CthAwaken(a)
        api.CthAwaken(b)
        while not (a.dead and b.dead):
            # Round-robin with the workers until they finish.
            api.CthYield()
        return log

    assert run_on(1, main) == ["a", "b", "a", "b"]


def test_exit_terminates_thread_immediately():
    def main():
        log = []

        def body(arg):
            log.append("before")
            api.CthExit()
            log.append("after")  # must never run

        t = api.CthCreate(body, None)
        api.CthResume(t)
        return log, t.dead

    log, dead = run_on(1, main)
    assert log == ["before"]
    assert dead


def test_exit_from_main_context_rejected():
    def main():
        try:
            api.CthExit()
        except ThreadError:
            return "rejected"

    assert run_on(1, main) == "rejected"


def test_resume_dead_thread_rejected():
    def main():
        t = api.CthCreate(lambda arg: None, None)
        api.CthResume(t)  # runs to completion
        try:
            api.CthResume(t)
        except ThreadError:
            return "dead"

    assert run_on(1, main) == "dead"


def test_suspend_with_nothing_ready_raises():
    def main():
        def body(arg):
            api.CthSuspend()

        t = api.CthCreate(body, None)
        try:
            api.CthResume(t)
            t2 = api.CthCreate(lambda a: api.CthSuspend(), None)
            # resume t again: its resumer is main; suspend falls back to
            # main - so this does NOT raise.  Exhaust the fallback by
            # suspending from main with an empty pool instead:
            api.CthSuspend()
        except ThreadError as e:
            return "empty" if "ready pool empty" in str(e) else str(e)

    assert run_on(1, main) == "empty"


def test_set_strategy_custom_pool():
    """CthSetStrategy: a module controls the order of its own threads —
    here a LIFO pool instead of the default FIFO."""
    def main():
        log = []
        stack = []

        def susp_fn(thr, arg):
            nxt = stack.pop()
            api.CthResume(nxt)

        def awaken_fn(thr, arg):
            stack.append(thr)

        def worker(name):
            log.append(name)

        threads = [api.CthCreate(worker, f"w{i}") for i in range(3)]

        def driver(arg):
            log.append("driver")
            api.CthAwaken(api.CthSelf())  # ourselves into the LIFO too
            api.CthSuspend()

        d = api.CthCreate(driver, None)
        for t in threads + [d]:
            api.CthSetStrategy(t, susp_fn, None, awaken_fn, None)
        for t in threads:
            api.CthAwaken(t)
        api.CthResume(d)
        return log

    # driver awakens itself (stack: w0 w1 w2 driver) then suspends via
    # LIFO: pops itself -> continues -> finishes; its completion falls
    # back to the default pool (empty) and the resumer chain.
    log = run_on(1, main)
    assert log[0] == "driver"


def test_scheduler_strategy_roundtrip():
    """use_scheduler_strategy: awakening enqueues a generalized message;
    the Csd loop resumes the thread; suspending returns to the loop."""
    def main():
        log = []

        def body(arg):
            log.append("step1")
            api.CthSuspend()
            log.append("step2")
            api.CsdExitScheduler()

        t = api.CthCreate(body, None)
        api.CthUseSchedulerStrategy(t)
        api.CthAwaken(t)
        log.append("pre")
        api.CsdScheduler(1)  # one message: the thread's resume entry
        api.CthAwaken(t)
        api.CsdScheduler(-1)
        log.append("post")
        return log

    assert run_on(1, main) == ["pre", "step1", "step2", "post"]


def test_threads_are_generalized_messages():
    """A ready thread literally sits in the scheduler queue as a message
    (paper section 3.1.1, case 2)."""
    def main():
        t = api.CthCreate(lambda a: None, None)
        api.CthUseSchedulerStrategy(t)
        before = api.CsdQueueLength()
        api.CthAwaken(t)
        after = api.CsdQueueLength()
        api.CsdScheduleUntilIdle()
        return before, after, t.dead

    assert run_on(1, main) == (0, 1, True)


def test_thread_cannot_cross_pes():
    from repro.sim.machine import Machine

    with Machine(2) as m:
        def pe0():
            t = api.CthCreate(lambda a: None, None)
            api.CmiCharge(1e-6)
            return t

        t0 = m.launch_on(0, pe0)
        m.run()
        thread = t0.result

        def pe1():
            try:
                api.CthResume(thread)
            except ThreadError as e:
                return "migrate" if "cannot migrate" in str(e) else str(e)

        t1 = m.launch_on(1, pe1)
        m.run()
        assert t1.result == "migrate"


def test_stacksize_recorded():
    def main():
        t = api.CthCreateOfSize(lambda a: None, None, 1 << 16)
        return t.stacksize

    assert run_on(1, main) == 1 << 16
