"""Unit tests for the Projections-lite trace analysis."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.message import Message
from repro.sim.machine import Machine
from repro.tracing.analysis import summarize, timeline
from repro.tracing.tracer import MemoryTracer


def _traced_run(num_sends: int = 3):
    with Machine(2, trace=True) as m:
        def main():
            hid = api.CmiRegisterHandler(lambda msg: api.CmiCharge(2e-6), "h")
            if api.CmiMyPe() == 0:
                for _ in range(num_sends):
                    api.CmiSyncSend(1, Message(hid, None, size=10))
            else:
                api.CsdScheduler(num_sends)

        m.launch(main)
        m.run()
        return m.tracer


def test_summary_counts_match_run():
    tracer = _traced_run(4)
    s = summarize(tracer)
    assert s.profile(0).sends == 4
    assert s.profile(0).bytes_sent == 40
    assert s.profile(1).receives == 4
    assert s.profile(1).handlers == 4
    assert s.total_events == len(tracer.events)
    assert s.busiest_pe() == 1


def test_handler_time_accumulated():
    tracer = _traced_run(3)
    s = summarize(tracer)
    # Each handler charged 2us of compute.
    assert s.profile(1).handler_time == pytest.approx(3 * 2e-6)


def test_span_covers_run():
    tracer = _traced_run(2)
    s = summarize(tracer)
    assert s.span > 0
    assert s.first_time <= s.last_time


def test_empty_trace_summary():
    s = summarize(MemoryTracer())
    assert s.total_events == 0
    assert s.span == 0.0
    assert s.busiest_pe() is None


def test_timeline_filters_and_truncates():
    tracer = _traced_run(3)
    rows = timeline(tracer, pe=1, kinds=("handler_begin",))
    assert len(rows) == 3
    assert all("handler_begin" in r and "pe1" in r for r in rows)
    short = timeline(tracer, limit=2)
    assert len(short) == 3  # 2 rows + truncation notice
    assert "truncated" in short[-1]
