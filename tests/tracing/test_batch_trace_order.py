"""``csd_batch=1`` must reproduce the unbatched scheduler's trace-event
ordering byte-for-byte.

The golden file ``golden_trace_batch1.jsonl`` was captured from the
scheduler *before* batched dispatch existed (one message drained per
loop iteration).  Running the same deterministic workload with
``csd_batch=1`` must serialize to the identical byte sequence: batching
is a pure amortization knob, never a semantic change.

Regenerate the golden (only when the workload itself changes) with:

    PYTHONPATH=src:tests python -m tests.tracing.test_batch_trace_order
"""

from __future__ import annotations

import json
import os

from repro.core import api
from repro.core.message import Message
from repro.sim.machine import Machine

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_trace_batch1.jsonl")


def _workload(**machine_kwargs):
    """A small deterministic mixed workload: pingpong + broadcast +
    priority traffic over 4 PEs, fully traced."""
    rounds = 6

    def main():
        me = api.CmiMyPe()
        n = api.CmiNumPes()

        def on_ping(msg):
            hop = msg.payload
            if hop < rounds:
                api.CmiSyncSend((me + 1) % 2, Message(ping, hop + 1, size=32))
            else:
                api.CsdExitScheduler()

        def on_bcast(msg):
            pass

        def on_prio(msg):
            pass

        ping = api.CmiRegisterHandler(on_ping, "ping")
        bcast = api.CmiRegisterHandler(on_bcast, "bcast")
        prio = api.CmiRegisterHandler(on_prio, "prio")

        if me == 0:
            api.CmiSyncSend(1, Message(ping, 0, size=32))
            api.CsdScheduler(-1)
        elif me == 1:
            api.CsdScheduler(-1)
        elif me == 2:
            for i in range(2):
                api.CmiSyncBroadcast(Message(bcast, i, size=16))
            for i in range(4):
                api.CmiSyncSend(3, Message(prio, i, size=8, prio=4 - i))
            api.CsdScheduler(2 * (n - 1) + 2)
        else:
            api.CsdScheduler(2 + 4)

    with Machine(4, trace=True, **machine_kwargs) as m:
        m.launch(main)
        m.run()
        return ["%d %.9f %s %s" % (
            ev.pe, ev.time, ev.kind,
            json.dumps(ev.fields, sort_keys=True))
            for ev in m.tracer.events]


def test_batch1_matches_golden_trace():
    with open(GOLDEN, "r", encoding="utf-8") as fh:
        golden = fh.read().splitlines()
    lines = _workload(csd_batch=1)
    assert lines == golden


def test_batched_dispatch_same_events_as_batch1():
    """Larger batches may legally reorder *interleavings across PEs*?
    No — the sim engine is deterministic per PE and dispatch order per
    PE is FIFO either way, so the full event multiset must match; we
    additionally require per-PE sequences to be identical."""
    base = _workload(csd_batch=1)
    batched = _workload(csd_batch=16)

    def per_pe(lines):
        out = {}
        for ln in lines:
            out.setdefault(ln.split(" ", 1)[0], []).append(ln)
        return out

    assert per_pe(batched) == per_pe(base)


if __name__ == "__main__":
    with open(GOLDEN, "w", encoding="utf-8") as fh:
        fh.write("\n".join(_workload()) + "\n")
    print("wrote", GOLDEN, "with", len(open(GOLDEN).readlines()), "events")
