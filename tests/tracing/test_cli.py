"""Tests for the ``python -m repro.trace`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.core import api
from repro.metrics.registry import MetricsRegistry
from repro.sim.machine import Machine
from repro.trace.cli import build_parser, main


@pytest.fixture()
def artifacts(tmp_path):
    """A traced + metered pingpong run on disk: (trace.jsonl, metrics.json)."""
    trace_path = tmp_path / "run.jsonl"
    metrics_path = tmp_path / "run.metrics.json"
    registry = MetricsRegistry()
    with Machine(2, trace=f"jsonl:{trace_path}", metrics=registry) as m:
        def main_fn():
            me = api.CmiMyPe()
            seen = []

            def on_ball(msg):
                n = msg.payload
                seen.append(n)
                if n + 1 < 8:
                    api.CmiSyncSend(1 - me, api.CmiNew(h, n + 1, size=16))
                if len(seen) == 4:
                    api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_ball, "cli.ball")
            if me == 0:
                api.CmiSyncSend(1, api.CmiNew(h, 0, size=16))
            api.CsdScheduler(-1)

        m.launch(main_fn)
        m.run()
    registry.save(metrics_path)
    return trace_path, metrics_path


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_summarize(artifacts, capsys):
    trace_path, metrics_path = artifacts
    assert main(["summarize", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out and "cli.ball" in out and "critical path:" in out


def test_summarize_with_metrics_and_no_critpath(artifacts, capsys):
    trace_path, metrics_path = artifacts
    assert main(["summarize", str(trace_path), "--metrics", str(metrics_path),
                 "--no-critpath"]) == 0
    out = capsys.readouterr().out
    assert "cmi.sends" in out
    assert "critical path:" not in out


def test_export_chrome(artifacts, tmp_path, capsys):
    trace_path, _ = artifacts
    out_path = tmp_path / "run.chrome.json"
    assert main(["export", str(trace_path), "--format", "chrome",
                 "-o", str(out_path)]) == 0
    doc = json.loads(out_path.read_text())
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    assert "perfetto" in capsys.readouterr().out


def test_export_default_format_is_chrome(artifacts, tmp_path):
    trace_path, _ = artifacts
    out_path = tmp_path / "d.json"
    assert main(["export", str(trace_path), "-o", str(out_path)]) == 0
    assert json.loads(out_path.read_text())["traceEvents"]


def test_export_chrome_requires_output(artifacts, capsys):
    trace_path, _ = artifacts
    assert main(["export", str(trace_path)]) == 2
    assert "requires -o" in capsys.readouterr().err


def test_export_text_to_stdout_and_file(artifacts, tmp_path, capsys):
    trace_path, _ = artifacts
    assert main(["export", str(trace_path), "--format", "text"]) == 0
    assert "trace:" in capsys.readouterr().out
    out_path = tmp_path / "report.txt"
    assert main(["export", str(trace_path), "--format", "text",
                 "-o", str(out_path)]) == 0
    assert "trace:" in out_path.read_text()


def test_critpath(artifacts, capsys):
    trace_path, _ = artifacts
    assert main(["critpath", str(trace_path), "--limit", "5"]) == 0
    assert "critical path:" in capsys.readouterr().out


def test_metrics(artifacts, capsys):
    _, metrics_path = artifacts
    assert main(["metrics", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "cmi.sends" in out and "csd.handlers_run" in out


def test_demo_writes_validated_artifacts(tmp_path, capsys):
    prefix = tmp_path / "demo"
    assert main(["demo", "-o", str(prefix), "--pes", "2"]) == 0
    out = capsys.readouterr().out
    assert "critical path:" in out
    trace = tmp_path / "demo.jsonl"
    chrome = tmp_path / "demo.chrome.json"
    metrics = tmp_path / "demo.metrics.json"
    assert trace.exists() and chrome.exists() and metrics.exists()
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]
    snap = json.loads(metrics.read_text())
    assert snap["cmi.sends"]["total"] > 0
