"""Critical-path extractor tests against hand-checked fixtures.

The fixtures build a :class:`MemoryTracer` by hand, so every begin/end/
send time below is exact and the expected path can be verified on paper:
the extractor must pick the binding constraint at each hop (message edge
vs same-PE edge) and its exec/msg/wait durations must sum exactly to the
path's span.
"""

from __future__ import annotations

import pytest

from repro.core import api
from repro.sim.machine import Machine
from repro.tracing.critpath import critical_path
from repro.tracing.tracer import MemoryTracer


def _t(events):
    """Build a MemoryTracer from (pe, time, kind, fields) tuples."""
    tracer = MemoryTracer()
    for pe, time, kind, fields in events:
        tracer.record(pe, time, kind, fields)
    return tracer


def test_three_pe_message_chain():
    """Hand-checked fixture: A on PE0 sends to B on PE1 sends to C on
    PE2, every hop released by the message (the PEs were otherwise idle).

    ::

        PE0: A [0,3], send msg1 @2
        PE1: B [5,8] (msg1), send msg2 @6
        PE2: C [9,12] (msg2)

    Expected path (oldest first): exec A clipped to its on-path part
    [0,2], msg1 in flight [2,5], exec B clipped [5,6], msg2 in flight
    [6,9], exec C [9,12].
    """
    tracer = _t([
        (0, 0.0, "handler_begin", {"name": "A"}),
        (0, 2.0, "send", {"dest": 1, "msg": 1}),
        (0, 3.0, "handler_end", {}),
        (1, 5.0, "handler_begin", {"name": "B", "msg": 1}),
        (1, 6.0, "send", {"dest": 2, "msg": 2}),
        (1, 8.0, "handler_end", {}),
        (2, 9.0, "handler_begin", {"name": "C", "msg": 2}),
        (2, 12.0, "handler_end", {}),
    ])
    path = critical_path(tracer)
    assert [(s.kind, s.pe, s.start, s.end) for s in path.segments] == [
        ("exec", 0, 0.0, 2.0),
        ("msg", 1, 2.0, 5.0),
        ("exec", 1, 5.0, 6.0),
        ("msg", 2, 6.0, 9.0),
        ("exec", 2, 9.0, 12.0),
    ]
    assert path.span == 12.0
    assert path.breakdown() == {"exec": 6.0, "msg": 6.0, "wait": 0.0}
    assert path.pes() == [0, 1, 2]
    assert "A" in path.render() and "msg 2" in path.render()


def test_pe_busy_edge_binds_over_early_message():
    """When the trigger message arrived while the PE was still busy, the
    same-PE edge binds and the path stays on that PE.

    ::

        PE0: A [0,1], send msg1 @0.5
        PE1: C0 [0,4] (busy), C [4.5,6] (msg1)

    msg1 was ready at 0.5 but PE1 only freed at 4.0: the wait edge binds,
    so the path is C0 -> wait -> C, never visiting PE0.
    """
    tracer = _t([
        (0, 0.0, "handler_begin", {"name": "A"}),
        (0, 0.5, "send", {"dest": 1, "msg": 1}),
        (0, 1.0, "handler_end", {}),
        (1, 0.0, "handler_begin", {"name": "C0"}),
        (1, 4.0, "handler_end", {}),
        (1, 4.5, "handler_begin", {"name": "C", "msg": 1}),
        (1, 6.0, "handler_end", {}),
    ])
    path = critical_path(tracer)
    assert [(s.kind, s.pe, s.start, s.end) for s in path.segments] == [
        ("exec", 1, 0.0, 4.0),
        ("wait", 1, 4.0, 4.5),
        ("exec", 1, 4.5, 6.0),
    ]
    assert path.span == 6.0
    assert path.total("exec") == 5.5
    assert path.total("wait") == 0.5
    assert path.total("msg") == 0.0
    assert path.pes() == [1]


def test_broadcast_msg_ids_join():
    """A broadcast stamps one correlation id per destination; the path
    follows the one that triggered the final execution, ending at the
    send when it came from outside any handler (an SPM main)."""
    tracer = _t([
        (0, 1.0, "broadcast", {"msg_ids": [5, 6]}),
        (1, 2.0, "handler_begin", {"name": "H", "msg": 6}),
        (1, 3.0, "handler_end", {}),
    ])
    path = critical_path(tracer)
    assert [(s.kind, s.start, s.end) for s in path.segments] == [
        ("msg", 1.0, 2.0),
        ("exec", 2.0, 3.0),
    ]


def test_exec_msg_wait_sum_to_span_invariant():
    """On a real traced run the accounting identity must hold exactly:
    exec + msg + wait along the path == the path's span."""
    with Machine(3, trace=True) as m:
        def main():
            def on_token(msg):
                api.CmiCharge(2e-6)
                n = msg.payload
                if n > 0:
                    api.CmiSyncSend((api.CmiMyPe() + 1) % 3,
                                    api.CmiNew(h, n - 1, size=16))
                else:
                    api.CmiSyncBroadcastAll(api.CmiNew(h_done, None))

            def on_done(_msg):
                api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_token, "cp.token")
            h_done = api.CmiRegisterHandler(on_done, "cp.done")
            if api.CmiMyPe() == 0:
                api.CmiSyncSend(1, api.CmiNew(h, 8, size=16))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        path = critical_path(m.tracer)
    assert path.segments, "critical path should not be empty for a traced run"
    bd = path.breakdown()
    assert bd["exec"] + bd["msg"] + bd["wait"] == pytest.approx(path.span)
    # The token visits every PE; so must the path.
    assert set(path.pes()) == {0, 1, 2}
    # Per-segment times must be contiguous: each segment starts where the
    # previous one ended.
    for prev, cur in zip(path.segments, path.segments[1:]):
        assert cur.start == pytest.approx(prev.end)


def test_empty_trace():
    path = critical_path(MemoryTracer())
    assert path.segments == []
    assert path.span == 0.0
    assert "empty trace" in path.render()
