"""Chrome Trace Event export + text report tests."""

from __future__ import annotations

import json

from repro.core import api
from repro.sim.machine import Machine
from repro.tracing.export import (
    chrome_trace,
    save_chrome_trace,
    text_report,
    validate_chrome_trace,
)
from repro.tracing.tracer import MemoryTracer


def _traced_workload(num_pes: int = 3):
    """Token ring with a Cth phase on PE 0 and a broadcast finish, so the
    trace exercises every exporter code path: handlers, idle spans,
    flows, thread tracks and queue-depth counters."""
    with Machine(num_pes, trace=True) as m:
        def main():
            def on_token(msg):
                api.CmiCharge(2e-6)
                n = msg.payload
                if n > 0:
                    api.CmiSyncSend((api.CmiMyPe() + 1) % api.CmiNumPes(),
                                    api.CmiNew(h, n - 1, size=32))
                else:
                    api.CmiSyncBroadcastAll(api.CmiNew(h_done, None))

            def on_done(_msg):
                api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_token, "xp.token")
            h_done = api.CmiRegisterHandler(on_done, "xp.done")
            if api.CmiMyPe() == 0:
                def worker(_arg):
                    for _ in range(2):
                        api.CmiCharge(1e-6)
                        api.CthYield()

                t = api.CthCreate(worker, None)
                api.CthUseSchedulerStrategy(t)
                api.CthAwaken(t)
                api.CmiSyncSend(1, api.CmiNew(h, 2 * api.CmiNumPes(), size=32))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        return m.tracer


def test_chrome_trace_validates_and_covers_phases():
    tracer = _traced_workload()
    doc = chrome_trace(tracer)
    assert validate_chrome_trace(doc) == []
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"X", "M", "s", "f", "C"} <= phases
    assert doc["otherData"]["pes"] == 3


def test_handler_spans_match_trace():
    tracer = _traced_workload()
    doc = chrome_trace(tracer)
    spans = [e for e in doc["traceEvents"]
             if e["ph"] == "X" and e.get("cat") == "handler"]
    # one complete span per handler_begin/handler_end pair
    assert len(spans) == len(tracer.by_kind("handler_end"))
    assert all(e["dur"] >= 0 for e in spans)
    names = {e["name"] for e in spans}
    assert "xp.token" in names and "xp.done" in names


def test_flow_arrows_are_paired_and_keyed_by_msg_id():
    tracer = _traced_workload()
    doc = chrome_trace(tracer)
    starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
    finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
    # the exporter only emits a start once its finish is known
    assert len(starts) == len(finishes) > 0
    assert sorted(e["id"] for e in starts) == sorted(e["id"] for e in finishes)


def test_thread_tracks_present():
    tracer = _traced_workload()
    doc = chrome_trace(tracer)
    tspans = [e for e in doc["traceEvents"]
              if e["ph"] == "X" and e.get("cat") == "thread"]
    assert tspans and all(e["tid"] != 0 for e in tspans)
    tnames = [e for e in doc["traceEvents"]
              if e["ph"] == "M" and e["name"] == "thread_name" and e["tid"] != 0]
    assert {e["tid"] for e in tnames} == {e["tid"] for e in tspans}


def test_flows_and_counters_can_be_disabled():
    tracer = _traced_workload()
    doc = chrome_trace(tracer, flows=False, counters=False)
    assert validate_chrome_trace(doc) == []
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert "s" not in phases and "f" not in phases and "C" not in phases


def test_save_chrome_trace_round_trips(tmp_path):
    tracer = _traced_workload()
    path = tmp_path / "run.chrome.json"
    doc = save_chrome_trace(tracer, path)
    reloaded = json.loads(path.read_text())
    assert reloaded == doc
    assert validate_chrome_trace(reloaded) == []


def test_validator_catches_malformed_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "Z", "pid": 0}]}) != []
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "pid": 0, "ts": 0.0, "dur": -1}]}
    ) != []
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "ts": 0.0, "dur": 1}]}
    ) != []  # missing pid
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "f", "pid": 0, "ts": 0.0, "id": 9}]}
    ) != []  # finish without start
    assert validate_chrome_trace({"traceEvents": []}) == []


def test_empty_trace_exports_cleanly():
    doc = chrome_trace(MemoryTracer())
    assert doc["traceEvents"] == []
    assert validate_chrome_trace(doc) == []


def test_text_report_sections():
    tracer = _traced_workload()
    report = text_report(tracer)
    assert "trace:" in report
    assert "busy%" in report
    assert "xp.token" in report
    assert "message latency" in report
    assert "critical path:" in report
    # metrics table appended when a snapshot is supplied
    with_metrics = text_report(
        tracer, metrics_snapshot={"cmi.sends": {"kind": "counter", "total": 5,
                                                "per_pe": {"0": 5}}})
    assert "cmi.sends" in with_metrics
    # and the critical path can be suppressed
    assert "critical path:" not in text_report(tracer, critpath=False)
