"""Static audit: every hot-path trace/metric call in src/ is guarded.

The need-based-cost discipline requires that with tracing and metering
off, instrumented hot paths cost one flag test — so every
``trace_event(...)`` call and every metric-handle update
(``.inc(`` / ``.observe(`` / ``.set(`` on an ``_mx_*`` handle) must sit
inside an ``if ...tracing:`` / ``if ...metering:`` guard (or a helper
only ever called under one).  This test walks the source and fails,
naming the file:line, if an unguarded site appears — a tripwire for
future instrumentation.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: a guard line: the flag test protecting the instrumentation below it.
GUARD_RE = re.compile(
    r"\bif\b.*(\btracing\b|\bmetering\b|_mx_\w+\s+is\s+not\s+None"
    r"|_ft_\w+\s+is\s+not\s+None)"
)

#: transparent wrappers: walking out of one of these keeps looking for
#: the guard one level further up.
TRANSPARENT_RE = re.compile(
    r"^\s*(try:|finally:|else:|elif\b|except\b|for\b|while\b|with\b|if\b)"
)

#: helper methods whose *callers* hold the guard; their bodies are the
#: guarded slow path, so a ``def`` line for one of these counts as a
#: guard.  Keep this list short and audited.
GUARDED_HELPERS = (
    "_note_enqueued",     # scheduler: called under `if rt.metering:`
    "_meter_send",        # cmi: called under `if self.runtime.metering:`
    "trace_event",        # the sink itself (guards live at call sites)
)

#: metric-handle update on a cached handle, e.g. `self._mx_sends.inc(`.
METRIC_CALL_RE = re.compile(r"_mx_\w+\.(inc|observe|set)\(")
TRACE_CALL_RE = re.compile(r"\btrace_event\(")


def _indent(line: str) -> int:
    return len(line) - len(line.lstrip())


def _is_guarded(lines: list, idx: int) -> bool:
    """Walk enclosing statements upward from ``lines[idx]`` until a guard
    (or a guarded-helper ``def``) is found; any other enclosing
    non-transparent statement means the call is unguarded."""
    level = _indent(lines[idx])
    for i in range(idx - 1, -1, -1):
        line = lines[i]
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        ind = _indent(line)
        if ind >= level:
            continue
        # the closest enclosing statement at a shallower indent
        if GUARD_RE.search(line):
            return True
        stripped = line.strip()
        if stripped.startswith("def ") and any(
                f"def {h}(" in stripped for h in GUARDED_HELPERS):
            return True
        if TRANSPARENT_RE.match(line):
            level = ind
            continue
        return False
    return False


def _audit(pattern: re.Pattern) -> list:
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "registry.py" and path.parent.name == "metrics":
            continue  # the metric classes themselves, not call sites
        lines = path.read_text().splitlines()
        for idx, line in enumerate(lines):
            if not pattern.search(line):
                continue
            if re.match(r"\s*def\s", line) or line.lstrip().startswith("#"):
                continue
            if not _is_guarded(lines, idx):
                offenders.append(f"{path.relative_to(SRC)}:{idx + 1}: "
                                 f"{line.strip()}")
    return offenders


def test_all_trace_event_calls_guarded():
    offenders = _audit(TRACE_CALL_RE)
    assert not offenders, (
        "unguarded trace_event call sites (wrap in `if ...tracing:`):\n"
        + "\n".join(offenders)
    )


def test_all_metric_updates_guarded():
    offenders = _audit(METRIC_CALL_RE)
    assert not offenders, (
        "unguarded metric updates (wrap in `if ...metering:` or "
        "`if self._mx_x is not None:`):\n" + "\n".join(offenders)
    )


#: use of a fault-tolerance hook on the reliable layer (`_ft_log` /
#: `_ft_giveup`): with ft off both are None, so every call site must
#: hide behind an `is not None` test — the ft analogue of the
#: tracing/metering discipline.
FT_HOOK_RE = re.compile(r"_ft_(log|giveup)\.?\w*\(")
FT_GUARD_INLINE_RE = re.compile(r"_ft_\w+\s+is\s+(not\s+)?None")


def test_all_ft_hook_sites_guarded():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.parent.name == "ft":
            continue  # the ft layer itself owns (and installs) the hooks
        lines = path.read_text().splitlines()
        for idx, line in enumerate(lines):
            if not FT_HOOK_RE.search(line):
                continue
            if line.lstrip().startswith("#"):
                continue
            if FT_GUARD_INLINE_RE.search(line):
                continue  # one-line conditional guard on the same line
            if not _is_guarded(lines, idx):
                offenders.append(f"{path.relative_to(SRC)}:{idx + 1}: "
                                 f"{line.strip()}")
    assert not offenders, (
        "unguarded ft-hook call sites (wrap in `if self._ft_x is not "
        "None:`):\n" + "\n".join(offenders)
    )


def test_audit_detects_unguarded_code():
    """Self-test: the walker must flag a bare call and accept a guarded
    one, so a silent weakening of the audit shows up here."""
    bare = [
        "class C:",
        "    def f(self):",
        "        self.trace_event('x')",
    ]
    assert not _is_guarded(bare, 2)
    guarded = [
        "class C:",
        "    def f(self):",
        "        if self.tracing:",
        "            self.trace_event('x')",
    ]
    assert _is_guarded(guarded, 3)
    nested = [
        "class C:",
        "    def f(self):",
        "        if rt.tracing:",
        "            try:",
        "                pass",
        "            finally:",
        "                rt.trace_event('x')",
    ]
    assert _is_guarded(nested, 6)


# ----------------------------------------------------------------------
# speed-layer extension: the raw-speed fast paths (pooled allocation,
# batched dispatch, the uninstrumented invoke variant) must contain NO
# instrumentation call sites at all — guarded or not.  Instrumented
# runtimes bind the slow-path variants instead, so a trace/metric call
# appearing in one of these bodies would be dead weight on every
# message of every untraced run.
# ----------------------------------------------------------------------
import inspect


def _body_calls(obj) -> list:
    """Instrumentation call sites in ``obj``'s source (file:line tags)."""
    src = inspect.getsource(obj)
    hits = []
    for off, line in enumerate(src.splitlines()):
        if METRIC_CALL_RE.search(line) or TRACE_CALL_RE.search(line) \
                or re.search(r"\b_ft_\w+\s*\.", line):
            hits.append(f"{obj.__qualname__}+{off}: {line.strip()}")
    return hits


def test_fast_paths_are_instrumentation_free():
    from repro.core.pool import MessagePool
    from repro.core.runtime import ConverseRuntime
    from repro.core.scheduler import CsdScheduler

    offenders = []
    for obj in (
        ConverseRuntime.invoke_handler,            # fast variant (class-level)
        ConverseRuntime.deliver_from_network,
        MessagePool,                       # the whole free list
        CsdScheduler._dispatch_batch,
        CsdScheduler.run_until_idle,
        CsdScheduler.poll,
        CsdScheduler._drain_delegated,     # inline-dispatch drain
    ):
        offenders += _body_calls(obj)
    assert not offenders, "\n".join(offenders)


def test_instrumented_variant_still_guards_every_site():
    """The slow-path twin keeps its calls, each under a flag guard (the
    file-level audit above covers this too; this pins the pairing)."""
    from repro.core.runtime import ConverseRuntime

    src = inspect.getsource(ConverseRuntime._invoke_handler_instrumented)
    assert TRACE_CALL_RE.search(src) and METRIC_CALL_RE.search(src)
    lines = src.splitlines()
    for idx, line in enumerate(lines):
        if TRACE_CALL_RE.search(line) or METRIC_CALL_RE.search(line):
            assert _is_guarded(lines, idx), f"unguarded: {line.strip()}"


# ----------------------------------------------------------------------
# mp-hub extension: fault injection and crash/respawn ride the hub's
# routing path via a *bound-at-construction* router (`_route`), the same
# bind-the-variant discipline as the instrumented/fast runtime twins.
# With faults off, the per-frame path is `_forward` — it must contain no
# fault branch, no delayed-frame bookkeeping, and no allocation beyond
# the frame itself.
# ----------------------------------------------------------------------


def test_mp_fault_free_forward_has_no_fault_hooks():
    from repro.machine.mp import MpMachine

    src = inspect.getsource(MpMachine._forward)
    for marker in ("fault", "decide", "_delayed", "Timer", "corrupt",
                   "_down"):
        assert marker not in src, (
            f"fault-machinery reference {marker!r} leaked into the "
            f"fault-free per-frame router:\n{src}"
        )
    assert not _body_calls(MpMachine._forward)
    # The faulty twin exists and is where that machinery lives.
    faulty = inspect.getsource(MpMachine._forward_faulty)
    assert "decide" in faulty and "_delayed" in faulty


def test_mp_route_binding_picks_variant_at_construction():
    import pytest

    from repro.machine.base import (
        machine_backend_available,
        machine_backend_unavailable_reason,
    )

    if not machine_backend_available("mp"):
        pytest.skip("mp layer unavailable: "
                    + machine_backend_unavailable_reason("mp"))

    from repro.machine.mp import MpMachine
    from repro.sim.machine import Machine
    from repro.sim.network import FaultPlan

    m = Machine(2, machine_backend="mp")
    try:
        assert m._route.__func__ is MpMachine._forward
    finally:
        m.shutdown()

    m = Machine(2, machine_backend="mp", faults=FaultPlan(seed=0, drop=0.1),
                reliable=True)
    try:
        assert m._route.__func__ is MpMachine._forward_faulty
    finally:
        m.shutdown()
