"""Unit tests for the per-PE spool merge layer (repro.tracing.merge).

These run entirely on hand-built tracers and temp files — no mp
processes — so every clock/causality edge case is exercised
deterministically.
"""

from __future__ import annotations

import json

import pytest

from repro.tracing.events import SchemaDeclaration, TraceEvent
from repro.tracing.merge import (
    _send_times,
    load_clock_file,
    load_spool,
    merge_spools,
    merge_tracers,
    save_clock_file,
    spool_path,
    write_jsonl,
)
from repro.tracing.tracer import MemoryTracer, load_jsonl


def _tracer(pe, *events):
    """Build a single-PE MemoryTracer from (time, kind, fields) tuples."""
    t = MemoryTracer()
    for time, kind, fields in events:
        t.record(pe, time, kind, fields)
    return t


# -- spool_path convention ---------------------------------------------


def test_spool_path_convention(tmp_path):
    assert spool_path("run.jsonl", 0) == "run.pe0.jsonl"
    assert spool_path("run.jsonl", 12) == "run.pe12.jsonl"
    assert spool_path("noext", 1) == "noext.pe1.jsonl"
    assert spool_path(tmp_path / "a.jsonl", 2) == str(tmp_path / "a.pe2.jsonl")


# -- clock sidecar ------------------------------------------------------


def test_clock_file_round_trip(tmp_path):
    path = tmp_path / "run.clock.json"
    offsets = {0: 0.0, 1: -3.25, 2: 1e-4}
    save_clock_file(path, offsets)
    assert load_clock_file(path) == offsets
    # On-disk form is plain string-keyed JSON (greppable, diffable).
    raw = json.loads(path.read_text())
    assert sorted(raw) == ["0", "1", "2"]


# -- offsets and rebase -------------------------------------------------


def test_offsets_shift_onto_one_timeline():
    a = _tracer(0, (10.0, "idle_begin", {}))
    b = _tracer(1, (2.0, "idle_begin", {}))
    merged = merge_tracers([a, b], offsets={1: 8.5}, rebase=False)
    times = {e.pe: e.time for e in merged.events}
    assert times == {0: 10.0, 1: 10.5}


def test_rebase_shifts_earliest_event_to_zero():
    a = _tracer(0, (100.0, "send", {"msg": 1}), (101.0, "idle_begin", {}))
    merged = merge_tracers([a])
    assert merged.events[0].time == 0.0
    assert merged.events[1].time == pytest.approx(1.0)
    raw = merge_tracers([a], rebase=False)
    assert raw.events[0].time == 100.0


def test_stable_sort_preserves_per_pe_order_on_ties():
    a = _tracer(0, (1.0, "handler_begin", {}), (1.0, "handler_end", {}))
    b = _tracer(1, (1.0, "handler_begin", {}), (1.0, "handler_end", {}))
    merged = merge_tracers([a, b], rebase=False)
    for pe in (0, 1):
        kinds = [e.kind for e in merged.events if e.pe == pe]
        assert kinds == ["handler_begin", "handler_end"]


# -- causal clamping ----------------------------------------------------


def test_causal_clamp_moves_receive_after_send():
    # Clock error makes PE 1 see the message 2ms before PE 0 sent it.
    sender = _tracer(0, (1.000, "send", {"msg": 7, "dst": 1}))
    receiver = _tracer(1, (0.998, "receive", {"msg": 7, "src": 0}))
    merged = merge_tracers([sender, receiver], rebase=False)
    recv = next(e for e in merged.events if e.kind == "receive")
    send = next(e for e in merged.events if e.kind == "send")
    assert recv.time >= send.time  # latency clamped to >= 0


def test_causal_clamp_drags_pe_stream_monotone():
    # The clamped receive must pull the *later* same-PE events with it,
    # or its handler_begin/end pair would invert.
    sender = _tracer(0, (5.0, "send", {"msg": 3, "dst": 1}))
    receiver = _tracer(
        1,
        (4.0, "receive", {"msg": 3, "src": 0}),
        (4.1, "handler_begin", {"msg": 3}),
        (4.2, "handler_end", {}),
    )
    merged = merge_tracers([sender, receiver], rebase=False)
    pe1 = [e for e in merged.events if e.pe == 1]
    assert [e.kind for e in pe1] == ["receive", "handler_begin", "handler_end"]
    assert all(pe1[i].time <= pe1[i + 1].time for i in range(len(pe1) - 1))
    assert pe1[0].time >= 5.0


def test_causal_clamp_ignores_same_pe_and_respects_no_causal():
    # A local (same-PE) msg reference is never clamped — one monotonic
    # clock is already trustworthy.
    local = _tracer(
        0, (2.0, "send", {"msg": 1, "dst": 0}),
        (1.0, "receive", {"msg": 1, "src": 0}),
    )
    merged = merge_tracers([local], causal=False, rebase=False)
    assert [e.time for e in merged.events] == [1.0, 2.0]


def test_send_times_covers_broadcast_forms():
    events = [
        TraceEvent(0, 1.0, "send", {"msg": 10}),
        TraceEvent(1, 2.0, "broadcast", {"msg_ids": (11, 12)}),
        TraceEvent(2, 3.0, "broadcast", {"msg": {0: 13, 1: 14}}),
    ]
    sends = _send_times(events)
    assert sends[10] == (1.0, 0)
    assert sends[11] == sends[12] == (2.0, 1)
    assert sends[13] == sends[14] == (3.0, 2)


def test_schema_dedup_across_pes():
    schema = SchemaDeclaration("converse", "send", (("dst", "int"),))
    a, b = MemoryTracer(), MemoryTracer()
    a.declare_schema(schema)
    b.declare_schema(schema)
    b.declare_schema(SchemaDeclaration("converse", "receive", ()))
    merged = merge_tracers([a, b])
    assert len(merged.schemas) == 2


# -- spool files --------------------------------------------------------


def _write_spool(path, tracer):
    write_jsonl(tracer, path)
    return path


def test_load_spool_tolerates_torn_tail(tmp_path):
    path = _write_spool(
        tmp_path / "t.pe0.jsonl",
        _tracer(0, (1.0, "send", {"msg": 1}), (2.0, "idle_begin", {})),
    )
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"pe": 0, "time": 3.0, "kind": "id')  # killed mid-write
    tracer = load_spool(path)
    assert [e.kind for e in tracer.events] == ["send", "idle_begin"]
    with pytest.raises(ValueError, match="bad trace line"):
        load_spool(path, strict=True)


def test_load_spool_rejects_mid_file_corruption(tmp_path):
    path = tmp_path / "t.pe0.jsonl"
    path.write_text('garbage\n{"pe": 0, "time": 1.0, "kind": "send"}\n')
    with pytest.raises(ValueError, match="bad trace line"):
        load_spool(path)


def test_merge_spools_with_clock_file_round_trips(tmp_path):
    base = tmp_path / "run.jsonl"
    _write_spool(spool_path(base, 0),
                 _tracer(0, (1.0, "send", {"msg": 5, "dst": 1})))
    _write_spool(spool_path(base, 1),
                 _tracer(1, (0.5, "receive", {"msg": 5, "src": 0})))
    clock = tmp_path / "run.clock.json"
    save_clock_file(clock, {0: 0.0, 1: 0.2})
    merged = merge_spools([spool_path(base, 0), spool_path(base, 1)],
                          clock_file=clock)
    recv = next(e for e in merged.events if e.kind == "receive")
    send = next(e for e in merged.events if e.kind == "send")
    assert recv.time >= send.time  # offset applied, then clamped causal
    # write_jsonl output is a normal trace file: load_jsonl reads it.
    out = tmp_path / "merged.jsonl"
    count = write_jsonl(merged, out)
    reloaded = load_jsonl(out)
    assert count == len(reloaded.events) == 2
    assert [(e.pe, e.kind) for e in reloaded.events] == \
        [(e.pe, e.kind) for e in merged.events]
