"""Tracer lifecycle and JSONL round-trip tests (satellites 1-3).

Covers: strict ``make_tracer`` specs, the tracer context-manager
protocol, the machine closing tracers at teardown, and ``load_jsonl``
reconstructing a :class:`MemoryTracer` (including ``__schema__`` lines)
whose analysis summary matches the live in-memory run.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core import api
from repro.sim.machine import Machine
from repro.tracing.analysis import summarize
from repro.tracing.events import SchemaDeclaration
from repro.tracing.tracer import (
    JsonlTracer,
    MemoryTracer,
    Tracer,
    load_jsonl,
    make_tracer,
)


def _ring(trace, num_pes: int = 3, rounds: int = 2):
    """A little token ring; deterministic, touches every PE."""
    with Machine(num_pes, trace=trace) as m:
        def main():
            def on_token(msg):
                n = msg.payload
                if n > 0:
                    api.CmiSyncSend((api.CmiMyPe() + 1) % api.CmiNumPes(),
                                    api.CmiNew(h, n - 1, size=24))
                else:
                    api.CmiSyncBroadcastAll(api.CmiNew(h_done, None))

            def on_done(_msg):
                api.CsdExitScheduler()

            h = api.CmiRegisterHandler(on_token, "rt.token")
            h_done = api.CmiRegisterHandler(on_done, "rt.done")
            if api.CmiMyPe() == 0:
                api.CmiSyncSend(1, api.CmiNew(h, rounds * api.CmiNumPes(), size=24))
            api.CsdScheduler(-1)

        m.launch(main)
        m.run()
        return m


# ----------------------------------------------------------------------
# make_tracer strictness (satellite 2)
# ----------------------------------------------------------------------
def test_make_tracer_jsonl_prefix(tmp_path):
    path = tmp_path / "run.trace"
    t = make_tracer(f"jsonl:{path}")
    assert isinstance(t, JsonlTracer)
    t.close()
    assert path.exists()


def test_make_tracer_bare_jsonl_suffix(tmp_path):
    t = make_tracer(str(tmp_path / "run.jsonl"))
    assert isinstance(t, JsonlTracer)
    t.close()


@pytest.mark.parametrize("typo", ["counting", "mem", "json", "trace", "on"])
def test_make_tracer_rejects_unknown_strings(typo):
    """A typo must fail loudly, not silently create a file named after it."""
    with pytest.raises(ValueError, match="unknown tracer spec"):
        make_tracer(typo)


def test_make_tracer_rejects_unknown_objects():
    with pytest.raises(ValueError):
        make_tracer(42)


def test_machine_rejects_bad_trace_spec():
    with pytest.raises(ValueError):
        Machine(2, trace="counting")


# ----------------------------------------------------------------------
# context manager + machine-side close (satellite 1)
# ----------------------------------------------------------------------
def test_tracer_is_context_manager(tmp_path):
    path = tmp_path / "cm.jsonl"
    with JsonlTracer(str(path)) as t:
        t.record(0, 0.0, "send", {"dest": 1})
        assert isinstance(t, Tracer)
    # closed on exit: the line is flushed and the handle released
    assert json.loads(path.read_text())["kind"] == "send"
    with pytest.raises(ValueError):
        t.record(0, 1.0, "send", {})  # write to closed file


def test_context_manager_closes_on_exception(tmp_path):
    path = tmp_path / "boom.jsonl"
    with pytest.raises(RuntimeError):
        with JsonlTracer(str(path)) as t:
            t.record(0, 0.0, "send", {})
            raise RuntimeError("boom")
    assert path.read_text().strip()  # flushed despite the raise


def test_machine_closes_tracer_on_teardown(tmp_path):
    """Machine teardown closes the tracer it was handed, so a
    ``Machine(trace="jsonl:...")`` run leaves a complete file behind
    without the caller ever touching the tracer object."""
    path = tmp_path / "auto.jsonl"
    m = _ring(f"jsonl:{path}")
    assert m.tracer._fh.closed
    events = [json.loads(l) for l in path.read_text().splitlines()]
    assert any(e["kind"] == "send" for e in events)


# ----------------------------------------------------------------------
# load_jsonl round trip (satellite 3)
# ----------------------------------------------------------------------
def test_load_jsonl_summary_matches_memory_run(tmp_path):
    """The same deterministic workload traced to memory and to disk must
    summarize identically after reload — events, profiles and span."""
    mem = _ring(MemoryTracer()).tracer
    path = tmp_path / "ring.jsonl"
    _ring(f"jsonl:{path}")
    reloaded = load_jsonl(path)

    assert len(reloaded.events) == len(mem.events)
    assert [(e.pe, e.time, e.kind) for e in reloaded.events] == \
           [(e.pe, e.time, e.kind) for e in mem.events]

    a, b = summarize(mem), summarize(reloaded)
    assert a.total_events == b.total_events
    assert a.span == b.span
    assert a.busiest_pe() == b.busiest_pe()
    for pe in range(3):
        pa, pb = a.profile(pe), b.profile(pe)
        assert (pa.sends, pa.receives, pa.handlers, pa.bytes_sent) == \
               (pb.sends, pb.receives, pb.handlers, pb.bytes_sent)
        assert pa.handler_time == pytest.approx(pb.handler_time)


def test_load_jsonl_restores_schema_lines(tmp_path):
    path = tmp_path / "schema.jsonl"
    with JsonlTracer(str(path)) as t:
        t.declare_schema(SchemaDeclaration("charm", "entry",
                                           (("method", "str"), ("ms", "float"))))
        t.record(1, 2.5e-6, "user", {"event": "entry", "method": "run"})
    reloaded = load_jsonl(path)
    assert len(reloaded.schemas) == 1
    s = reloaded.schemas[0]
    assert (s.language, s.event_name) == ("charm", "entry")
    assert s.fields == (("method", "str"), ("ms", "float"))
    assert len(reloaded.events) == 1
    ev = reloaded.events[0]
    assert (ev.pe, ev.time, ev.kind) == (1, 2.5e-6, "user")
    assert ev.fields == {"event": "entry", "method": "run"}


def test_load_jsonl_accepts_file_objects():
    buf = io.StringIO('{"pe": 0, "time": 1.0, "kind": "send", "dest": 2}\n\n')
    t = load_jsonl(buf)
    assert len(t.events) == 1
    assert t.events[0].fields == {"dest": 2}


def test_load_jsonl_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json at all\n")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_jsonl(bad)
    missing = tmp_path / "missing.jsonl"
    missing.write_text('{"pe": 0, "time": 1.0}\n')
    with pytest.raises(ValueError, match="missing pe/time/kind"):
        load_jsonl(missing)
