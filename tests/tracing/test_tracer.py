"""Unit tests for the trace format and sinks."""

from __future__ import annotations

import io
import json

import pytest

from repro.core import api
from repro.core.message import Message
from repro.sim.machine import Machine
from repro.tracing.events import STANDARD_KINDS, SchemaDeclaration, TraceEvent
from repro.tracing.tracer import (
    CountingTracer,
    JsonlTracer,
    MemoryTracer,
    make_tracer,
)


def test_standard_kinds_cover_paper_requirements():
    """Section 3.3.2: message send, receive and processing events, plus
    object/thread creation, must be recordable."""
    for kind in ("send", "receive", "handler_begin", "handler_end",
                 "object_create", "thread_create"):
        assert kind in STANDARD_KINDS


def test_trace_event_dataclass():
    ev = TraceEvent(2, 1e-6, "send", {"dest": 1})
    assert ev.standard
    assert ev.as_dict() == {"pe": 2, "time": 1e-6, "kind": "send", "dest": 1}
    assert not TraceEvent(0, 0.0, "weird-lang-thing").standard


def test_schema_declaration_validation():
    schema = SchemaDeclaration("charm", "entry", (("method", "str"), ("ms", "float")))
    assert schema.validate({"method": "run", "ms": 1.5})
    assert schema.validate({"method": "run", "ms": 2, "extra": "ok"})
    assert not schema.validate({"method": "run"})
    assert not schema.validate({"method": 3, "ms": 1.5})


def test_make_tracer_variants():
    assert make_tracer(False) is None
    assert make_tracer(None) is None
    assert isinstance(make_tracer(True), MemoryTracer)
    assert isinstance(make_tracer("memory"), MemoryTracer)
    assert isinstance(make_tracer("count"), CountingTracer)
    mt = MemoryTracer()
    assert make_tracer(mt) is mt
    jt = make_tracer(io.StringIO())
    assert isinstance(jt, JsonlTracer)


def test_memory_tracer_records_machine_run():
    with Machine(2, trace=True) as m:
        def main():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            if api.CmiMyPe() == 0:
                api.CmiSyncSend(1, Message(hid, None, size=16))
            else:
                api.CsdScheduler(1)

        m.launch(main)
        m.run()
        tracer = m.tracer
        sends = tracer.by_kind("send")
        receives = tracer.by_kind("receive")
        begins = tracer.by_kind("handler_begin")
        ends = tracer.by_kind("handler_end")
        assert len(sends) == 1 and sends[0].pe == 0
        assert sends[0].fields["size"] == 16
        assert len(receives) == 1 and receives[0].pe == 1
        assert len(begins) == len(ends) == 1
        assert begins[0].time <= ends[0].time
        assert tracer.by_pe(0) and tracer.by_pe(1)


def test_counting_tracer_counts_only():
    with Machine(2, trace="count") as m:
        def main():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            if api.CmiMyPe() == 0:
                for _ in range(5):
                    api.CmiSyncSend(1, Message(hid, None, size=0))
            else:
                api.CsdScheduler(5)

        m.launch(main)
        m.run()
        assert m.tracer.total("send") == 5
        assert m.tracer.total("handler_begin") == 5
        assert m.tracer.total() > 10


def test_jsonl_tracer_emits_parseable_lines():
    buf = io.StringIO()
    with Machine(2, trace=JsonlTracer(buf)) as m:
        def main():
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            if api.CmiMyPe() == 0:
                api.CmiSyncSend(1, Message(hid, None, size=4))
            else:
                api.CsdScheduler(1)

        m.launch(main)
        m.run()
    lines = [json.loads(l) for l in buf.getvalue().splitlines()]
    assert any(l["kind"] == "send" for l in lines)
    assert all({"pe", "time", "kind"} <= set(l) for l in lines)


def test_jsonl_schema_declaration_line():
    buf = io.StringIO()
    t = JsonlTracer(buf)
    t.declare_schema(SchemaDeclaration("pvm", "recv", (("tag", "int"),)))
    line = json.loads(buf.getvalue())
    assert line["kind"] == "__schema__"
    assert line["language"] == "pvm"
    assert t.schemas[0].event_name == "recv"


def test_thread_and_enqueue_events_traced():
    with Machine(1, trace=True) as m:
        def main():
            t = api.CthCreate(lambda a: None, None)
            api.CthResume(t)
            hid = api.CmiRegisterHandler(lambda msg: None, "h")
            api.CsdEnqueue(Message(hid, None, size=0))
            api.CsdScheduleUntilIdle()

        m.launch_on(0, main)
        m.run()
        kinds = {e.kind for e in m.tracer.events}
        assert {"thread_create", "thread_resume", "enqueue", "dequeue"} <= kinds
